"""``repro federate`` — prove and audit a K-provider federation round."""

from __future__ import annotations

import argparse

from ..framework import CommandResult, register


@register
class FederateCommand:
    name = "federate"
    help = "prove a K-provider federation join and audit it"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--providers", type=int, default=3,
                            help="number of provider domains "
                                 "(default: 3)")
        parser.add_argument("--flows", type=int, default=60,
                            help="flows crossing the whole chain "
                                 "(default: 60)")
        parser.add_argument("--seed", type=int, default=7,
                            help="traffic generator seed")
        parser.add_argument("--windows", type=int, default=1,
                            help="commitment windows per provider "
                                 "(default: 1)")
        parser.add_argument("--boundary-loss", type=float,
                            default=0.01,
                            help="loss rate on inter-domain links "
                                 "(default: 0.01)")
        parser.add_argument("--tolerance-ppm", type=int, default=0,
                            help="allowed boundary gap, parts per "
                                 "million (default: 0)")
        parser.add_argument("--sla-loss-ppm", type=int,
                            default=50_000,
                            help="per-provider SLA loss ceiling, ppm "
                                 "(default: 50000)")
        parser.add_argument("--tamper-provider", type=int,
                            default=None, metavar="INDEX",
                            help="after the join, republish a bogus "
                                 "root for provider INDEX (Byzantine "
                                 "demo; the auditor must flag it)")

    def run(self, args: argparse.Namespace) -> CommandResult:
        """Build the scenario, prove the join, audit from receipts.

        The auditor sees only public material — receipts, bulletins and
        the root board.  With ``--tamper-provider`` the named provider
        equivocates on the board after proving; the audit must flag
        exactly that provider and no other.
        """
        from ...errors import ReproError
        from ...federation import (
            FederationAuditor,
            FederationJoinProver,
            build_federation_scenario,
        )
        from ...hashing import Digest
        try:
            scenario = build_federation_scenario(
                num_providers=args.providers,
                num_flows=args.flows,
                seed=args.seed,
                boundary_loss=args.boundary_loss,
                num_windows=args.windows,
            )
            with FederationJoinProver(
                    tolerance_ppm=args.tolerance_ppm,
                    sla_loss_ppm=args.sla_loss_ppm) as prover:
                join = prover.prove_join(scenario)
        except ReproError as exc:
            return CommandResult.failure(f"federation join failed: {exc}")
        print(f"proved join over {len(join.providers)} providers "
              f"({join.total_cycles:,} cycles)")

        tampered = None
        if args.tamper_provider is not None:
            if not 0 <= args.tamper_provider < len(join.providers):
                return CommandResult.failure(
                    f"--tamper-provider out of range "
                    f"(0..{len(join.providers) - 1})")
            tampered = join.providers[args.tamper_provider]
            round_index = scenario.board.latest(tampered)[0]
            scenario.board.publish(tampered, round_index,
                                   Digest(bytes(32)), replace=True)
            print(f"tampered: republished a bogus root for "
                  f"{tampered!r}")

        try:
            report = FederationAuditor().audit(
                scenario.public_views(), scenario.board, join)
        except ReproError as exc:
            return CommandResult.failure(f"audit failed: {exc}")
        print(report)

        if tampered is not None:
            if report.flagged != (tampered,):
                return CommandResult.failure(
                    f"auditor flagged {report.flagged!r}, expected "
                    f"exactly ({tampered!r},)")
            print(f"auditor correctly flagged {tampered!r}")
            return CommandResult.ok(flagged=list(report.flagged))
        if not report.consistent:
            return CommandResult.failure(
                "federation round is not consistent",
                flagged=list(report.flagged))
        return CommandResult.ok(
            providers=list(join.providers),
            loss_ppm=report.path["loss_ppm"],
            sla_ok=report.sla_ok,
        )
