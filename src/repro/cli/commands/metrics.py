"""``repro metrics`` — dump an observability snapshot as JSON."""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from ..framework import CommandResult, register


@register
class MetricsCommand:
    name = "metrics"
    help = "dump an observability snapshot (JSON)"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--connect", metavar="HOST:PORT",
                            default=None,
                            help="fetch from a running `repro serve "
                                 "--metrics` instance")
        parser.add_argument("--out", type=pathlib.Path, default=None,
                            help="write the snapshot here instead of "
                                 "stdout")

    def run(self, args: argparse.Namespace) -> CommandResult:
        """Dump an observability snapshot as JSON.

        With ``--connect``, fetches the snapshot from a running
        ``repro serve --metrics`` instance; otherwise dumps this
        process's own (usually empty unless ``REPRO_OBS`` is set).
        """
        from ...obs import runtime as obs_runtime
        if args.connect is not None:
            from ...net import ServiceClient
            with ServiceClient(args.connect) as client:
                snapshot = client.fetch_metrics()
        else:
            snapshot = obs_runtime.metrics_snapshot()
        text = json.dumps(snapshot, indent=2, sort_keys=True)
        if args.out is not None:
            args.out.write_text(text + "\n")
            print(f"metrics snapshot -> {args.out}")
        else:
            print(text)
        if not snapshot.get("enabled", False):
            print("note: observability is disabled on the target; "
                  "start it with `repro serve --metrics` (or "
                  "REPRO_OBS=1)",
                  file=sys.stderr)
        return CommandResult.ok(enabled=snapshot.get("enabled", False))
