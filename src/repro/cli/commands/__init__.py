"""Command modules; import order is ``repro --help`` display order.

Importing this package registers every built-in scenario with
:data:`repro.cli.framework.REGISTRY`.  A new scenario is one new
module here with a ``@register``-decorated class — no central parser
to edit (``federate`` landed exactly that way).
"""

from . import (  # noqa: F401  (imported for registration side effect)
    simulate,
    aggregate,
    query,
    serve,
    worker,
    metrics,
    verify,
    bundle,
    tamper,
    info,
    federate,
)
