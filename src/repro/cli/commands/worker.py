"""``repro worker`` — proving worker daemon (repro.cluster)."""

from __future__ import annotations

import argparse
import pathlib

from ...storage import SqliteLogStore
from ..framework import CommandResult, register


@register
class WorkerCommand:
    name = "worker"
    help = "run a proving worker daemon (repro.cluster)"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--host", default="127.0.0.1")
        parser.add_argument("--port", type=int, default=0,
                            help="TCP port (0 picks an ephemeral one; "
                                 "the bound port is printed on "
                                 "startup)")
        parser.add_argument("--backend", default="thread",
                            choices=["serial", "thread", "process"],
                            help="the worker's local proving pool "
                                 "backend")
        parser.add_argument("--workers", type=int, default=None,
                            metavar="N",
                            help="local pool width (default: backend "
                                 "default)")
        parser.add_argument("--db", type=pathlib.Path, default=None,
                            help="optional store whose checkpoint KV "
                                 "backs a persistent receipt-cache "
                                 "tier")
        parser.add_argument("--idle-timeout", type=float, default=30.0)
        parser.add_argument("--metrics", action="store_true",
                            help="enable the repro.obs registry "
                                 "(repro_cluster_worker_* counters)")

    def run(self, args: argparse.Namespace) -> CommandResult:
        """Run a proving worker daemon for a remote-backend pool.

        Workers are untrusted by construction — the dispatcher
        re-verifies every receipt before adoption — so they need no
        bulletin, no chain state, and no shared filesystem.  An
        optional ``--db`` points at a store whose checkpoint KV becomes
        a persistent receipt-cache tier shared between restarts (and,
        if several workers point at the same file, between workers).
        """
        from ...cluster import WorkerServer
        from ...faults import FaultInjector
        if args.metrics:
            from ...obs import runtime as obs_runtime
            obs_runtime.enable()
        store = None
        if args.db is not None:
            store = SqliteLogStore(str(args.db))
        server = WorkerServer(
            args.host, args.port,
            backend=args.backend,
            max_workers=args.workers,
            store=store,
            injector=FaultInjector.from_env(),
            idle_timeout=args.idle_timeout)
        try:
            self._serve(server, store, args)
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            if store is not None:
                store.close()
        return CommandResult.ok()

    def _serve(self, server, store, args: argparse.Namespace) -> None:
        """Run the accept loop until interrupted (tests stub this)."""
        import asyncio

        async def run() -> None:
            await server.start()
            print(f"worker listening on {server.host}:{server.port} "
                  f"(backend={args.backend}"
                  + (", persistent cache" if store is not None else "")
                  + (", metrics on" if args.metrics else "") + ")",
                  flush=True)
            await server.serve_forever()

        asyncio.run(run())
