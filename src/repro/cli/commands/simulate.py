"""``repro simulate`` — generate and commit telemetry."""

from __future__ import annotations

import argparse

from ...commitments import BulletinBoard
from ...netflow import NetFlowSimulator, SimClock, SimulatorConfig
from ...netflow.generator import TrafficConfig
from ...storage import SqliteLogStore
from ..framework import CommandResult, register
from ..options import add_bulletin, add_db
from ..persistence import save_bulletin


@register
class SimulateCommand:
    name = "simulate"
    help = "generate + commit telemetry"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_db(parser)
        add_bulletin(parser)
        parser.add_argument("--records", type=int, default=400)
        parser.add_argument("--routers", type=int, default=4)
        parser.add_argument("--window-ms", type=int, default=5_000)
        parser.add_argument("--flows-per-tick", type=int, default=10)
        parser.add_argument("--seed", type=int, default=7)

    def run(self, args: argparse.Namespace) -> CommandResult:
        store = SqliteLogStore(str(args.db))
        bulletin = BulletinBoard()
        simulator = NetFlowSimulator(
            store, bulletin, SimClock(),
            SimulatorConfig(num_routers=args.routers,
                            commit_interval_ms=args.window_ms,
                            flows_per_tick=args.flows_per_tick,
                            traffic=TrafficConfig(seed=args.seed)))
        simulator.run_until_records(args.records)
        simulator.flush()
        save_bulletin(bulletin, args.bulletin)
        store.close()
        print(f"simulated {simulator.records_generated} records into "
              f"{args.db}; {len(bulletin)} commitments -> "
              f"{args.bulletin}")
        return CommandResult.ok(
            records=simulator.records_generated,
            commitments=len(bulletin))
