"""``repro aggregate`` — prove aggregation rounds."""

from __future__ import annotations

import argparse
import pathlib

from ...zkvm.costmodel import CostModel
from ..framework import CommandResult, register
from ..options import add_bulletin, add_db
from ..persistence import rebuild_service, save_receipts


@register
class AggregateCommand:
    name = "aggregate"
    help = "prove aggregation rounds"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_db(parser)
        add_bulletin(parser)
        parser.add_argument("--receipts", type=pathlib.Path,
                            required=True,
                            help="directory for round receipts")
        parser.add_argument("--strategy",
                            choices=["update", "rebuild"],
                            default="update")

    def run(self, args: argparse.Namespace) -> CommandResult:
        service = rebuild_service(args.db, args.bulletin, None,
                                  strategy=args.strategy)
        results = service.aggregate_all_committed()
        if not results:
            print("nothing to aggregate (no committed windows)")
            return CommandResult.failure(
                "nothing to aggregate (no committed windows)")
        save_receipts(service.chain.receipts(), args.receipts)
        model = CostModel()
        for result in results:
            modeled = model.prove_seconds(result.info.stats) / 60
            print(f"round {result.round}: {result.record_count} "
                  f"records -> {len(result.new_state)} flows, root "
                  f"{result.new_root.short()}…, modeled prove "
                  f"{modeled:.1f} min")
        print(f"{len(results)} receipts -> {args.receipts}")
        service.store.close()
        return CommandResult.ok(rounds=len(results))
