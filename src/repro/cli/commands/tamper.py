"""``repro tamper`` — inject post-commitment tampering (adversarial
demos; subsequent aggregation of the tampered window must fail)."""

from __future__ import annotations

import argparse

from ...storage import SqliteLogStore
from ..framework import CommandResult, register
from ..options import add_db


@register
class TamperCommand:
    name = "tamper"
    help = "inject post-commitment tampering"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_db(parser)
        parser.add_argument("--router", required=True)
        parser.add_argument("--window", type=int, required=True)
        parser.add_argument("--seq", type=int, default=0)
        parser.add_argument("--kind", default="modify-field",
                            choices=["modify-field", "corrupt-bytes",
                                     "truncate", "reorder"])

    def run(self, args: argparse.Namespace) -> CommandResult:
        from ...core import tamper as tamper_mod
        store = SqliteLogStore(str(args.db))
        actions = {
            "modify-field": lambda: tamper_mod.modify_record_field(
                store, args.router, args.window, args.seq,
                packets=987_654_321),
            "corrupt-bytes": lambda: tamper_mod.corrupt_record_bytes(
                store, args.router, args.window, args.seq),
            "truncate": lambda: tamper_mod.truncate_window(
                store, args.router, args.window, keep=1),
            "reorder": lambda: tamper_mod.reorder_window(
                store, args.router, args.window),
        }
        actions[args.kind]()
        store.close()
        print(f"tampered ({args.kind}) router {args.router} window "
              f"{args.window}; subsequent aggregation of that window "
              f"will fail")
        return CommandResult.ok(kind=args.kind)
