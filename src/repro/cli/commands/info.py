"""``repro info`` — inspect the log store."""

from __future__ import annotations

import argparse

from ...storage import SqliteLogStore
from ..framework import CommandResult, register
from ..options import add_db


@register
class InfoCommand:
    name = "info"
    help = "inspect the log store"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_db(parser)

    def run(self, args: argparse.Namespace) -> CommandResult:
        store = SqliteLogStore(str(args.db))
        total = 0
        for router_id in store.router_ids():
            windows = store.window_indices(router_id)
            counts = [store.window_count(router_id, w)
                      for w in windows]
            total += sum(counts)
            print(f"{router_id}: windows {windows} "
                  f"({sum(counts)} records)")
        print(f"total: {total} records")
        store.close()
        return CommandResult.ok(records=total)
