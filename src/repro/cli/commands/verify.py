"""Client-side verification commands: chain, bundle, query receipt."""

from __future__ import annotations

import argparse
import pathlib

from ...core.verifier_client import VerifierClient
from ...errors import ReproError
from ...zkvm import Receipt
from ..framework import CommandResult, register
from ..options import add_bulletin
from ..persistence import load_bulletin, load_receipts


@register
class VerifyCommand:
    name = "verify"
    help = "client-side chain verification"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_bulletin(parser)
        parser.add_argument("--receipts", type=pathlib.Path,
                            required=True)

    def run(self, args: argparse.Namespace) -> CommandResult:
        bulletin = load_bulletin(args.bulletin)
        receipts = load_receipts(args.receipts)
        verifier = VerifierClient(bulletin)
        try:
            verified = verifier.verify_chain(receipts)
        except ReproError as exc:
            print(f"VERIFICATION FAILED: {exc}")
            return CommandResult.failure(str(exc))
        for link in verified:
            print(f"round {link.round}: OK — {link.entries} records "
                  f"over windows {sorted(set(link.windows))}, root "
                  f"{link.new_root.short()}…")
        print(f"chain of {len(verified)} rounds verified")
        return CommandResult.ok(rounds=len(verified))


@register
class VerifyBundleCommand:
    name = "verify-bundle"
    help = "standalone audit-bundle verification"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--bundle", type=pathlib.Path,
                            required=True)

    def run(self, args: argparse.Namespace) -> CommandResult:
        from ...core.audit import AuditBundle, verify_bundle
        try:
            bundle = AuditBundle.from_json_bytes(
                args.bundle.read_bytes())
            report = verify_bundle(bundle)
        except ReproError as exc:
            print(f"BUNDLE VERIFICATION FAILED: {exc}")
            return CommandResult.failure(str(exc))
        print(report.summary())
        return CommandResult.ok()


@register
class VerifyQueryCommand:
    name = "verify-query"
    help = "client-side query-receipt verification"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_bulletin(parser)
        parser.add_argument("--receipts", type=pathlib.Path,
                            required=True)
        parser.add_argument("--query-receipt", type=pathlib.Path,
                            required=True)

    def run(self, args: argparse.Namespace) -> CommandResult:
        bulletin = load_bulletin(args.bulletin)
        receipts = load_receipts(args.receipts)
        query_receipt = Receipt.from_json_bytes(
            args.query_receipt.read_bytes())
        verifier = VerifierClient(bulletin)
        try:
            chain = verifier.verify_chain(receipts)
            journal = query_receipt.journal.decode_one()
            # Reconstruct the response the provider shipped.
            from ...core.query_proof import QueryResponse
            response = QueryResponse(
                sql=journal["query"],
                labels=tuple(journal["labels"]),
                values=tuple(journal["values"]),
                matched=journal["matched"],
                scanned=journal["scanned"],
                round=journal["round"],
                root=journal["root"],
                receipt=query_receipt,
                group_by=journal.get("group_by"),
                groups=tuple((key, tuple(values)) for key, values in
                             journal.get("groups", [])),
            )
            verified = verifier.verify_query(response,
                                             chain[journal["round"]])
        except (ReproError, IndexError, KeyError) as exc:
            print(f"QUERY VERIFICATION FAILED: {exc}")
            return CommandResult.failure(str(exc))
        print(f"query: {verified.sql}")
        for label, value in zip(verified.labels, verified.values):
            print(f"  {label} = {value}")
        for key, values in verified.groups:
            print(f"  [{key}] "
                  + ", ".join(f"{label}={value}" for label, value
                              in zip(verified.labels, values)))
        print(f"  VERIFIED against round {verified.round} "
              f"(root {verified.root.short()}…)")
        return CommandResult.ok(round=verified.round)
