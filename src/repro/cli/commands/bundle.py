"""``repro bundle`` — export a portable audit bundle."""

from __future__ import annotations

import argparse
import pathlib

from ..framework import CommandResult, register
from ..options import add_bulletin, add_db
from ..persistence import rebuild_service


@register
class BundleCommand:
    name = "bundle"
    help = "export a portable audit bundle"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_db(parser)
        add_bulletin(parser)
        parser.add_argument("--receipts", type=pathlib.Path,
                            required=True)
        parser.add_argument("--out", type=pathlib.Path, required=True)
        parser.add_argument("--query", action="append",
                            help="include a proven query (repeatable)")

    def run(self, args: argparse.Namespace) -> CommandResult:
        from ...core.audit import AuditBundle
        service = rebuild_service(args.db, args.bulletin, args.receipts)
        responses = []
        for sql in args.query or []:
            responses.append(service.answer_query(sql))
        bundle = AuditBundle.from_service(
            service, responses,
            metadata={"tool": "repro-cli",
                      "queries": args.query or []})
        args.out.write_bytes(bundle.to_json_bytes())
        print(f"audit bundle: {len(bundle.chain)} rounds, "
              f"{len(bundle.commitments)} commitments, "
              f"{len(bundle.query_receipts)} query receipts -> "
              f"{args.out}")
        service.store.close()
        return CommandResult.ok(rounds=len(bundle.chain),
                                queries=len(bundle.query_receipts))
