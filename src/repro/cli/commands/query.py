"""``repro query`` — prove and verify a SQL query, local or remote."""

from __future__ import annotations

import argparse
import pathlib

from ...core.verifier_client import VerifierClient
from ...errors import ReproError
from ..framework import CommandResult, register
from ..options import add_bulletin, add_db
from ..persistence import rebuild_service


def print_verified_query(args: argparse.Namespace, response,
                         verified) -> None:
    print(f"query: {args.sql}")
    for label, value in zip(verified.labels, verified.values):
        print(f"  {label} = {value}")
    for key, values in verified.groups:
        print(f"  [{key}] "
              + ", ".join(f"{label}={value}" for label, value
                          in zip(verified.labels, values)))
    print(f"  matched {verified.matched}/{verified.scanned} flows; "
          f"round {verified.round}, root {verified.root.short()}…")
    if args.out is not None:
        args.out.write_bytes(response.receipt.to_json_bytes())
        print(f"  query receipt -> {args.out}")


@register
class QueryCommand:
    name = "query"
    help = "prove + verify a SQL query"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_db(parser, required=False)
        add_bulletin(parser, required=False)
        parser.add_argument("--receipts", type=pathlib.Path,
                            default=None)
        parser.add_argument("--connect", metavar="HOST:PORT",
                            default=None,
                            help="query a running `repro serve` "
                                 "instance instead of local files")
        parser.add_argument("--out", type=pathlib.Path, default=None,
                            help="write the query receipt JSON here")
        parser.add_argument("--tenant", default=None,
                            help="tenant id sent with --connect "
                                 "queries; servers running the "
                                 "multi-tenant query service "
                                 "rate-limit and fair-queue per "
                                 "tenant")
        parser.add_argument("--query-partitions", type=int,
                            default=None, metavar="K",
                            help="split the query proof into up to K "
                                 "slot-range partitions proven in "
                                 "parallel (REPRO_QUERY_PARTITIONS "
                                 "tunes an engine-backed service the "
                                 "same way)")
        parser.add_argument("sql",
                            help="e.g. 'SELECT COUNT(*) FROM clogs'")

    def run(self, args: argparse.Namespace) -> CommandResult:
        if args.connect is not None:
            return self._run_remote(args)
        if args.db is None or args.bulletin is None \
                or args.receipts is None:
            raise ReproError(
                "query needs either --connect HOST:PORT or all of "
                "--db/--bulletin/--receipts")
        service = rebuild_service(args.db, args.bulletin, args.receipts,
                                  query_partitions=args.query_partitions)
        response = service.answer_query(args.sql)
        verifier = VerifierClient(service.bulletin)
        chain = verifier.verify_chain(service.chain.receipts())
        verified = verifier.verify_query(response, chain[-1])
        print_verified_query(args, response, verified)
        service.store.close()
        return CommandResult.ok(matched=verified.matched,
                                scanned=verified.scanned)

    def _run_remote(self, args: argparse.Namespace) -> CommandResult:
        """Issue the query over the wire; verify from fetched material."""
        from ...net import QueryClient
        with QueryClient(args.connect) as client:
            response, verified = client.verified_query(
                args.sql, tenant=args.tenant)
        print_verified_query(args, response, verified)
        return CommandResult.ok(matched=verified.matched,
                                scanned=verified.scanned)
