"""``repro serve`` — serve the prover over TCP (repro.net)."""

from __future__ import annotations

import argparse
import pathlib

from ..framework import CommandResult, register
from ..options import add_bulletin, add_db
from ..persistence import rebuild_service


@register
class ServeCommand:
    name = "serve"
    help = "serve the prover over TCP (repro.net)"

    def configure(self, parser: argparse.ArgumentParser) -> None:
        add_db(parser)
        add_bulletin(parser)
        parser.add_argument("--receipts", type=pathlib.Path,
                            default=None,
                            help="replay recorded rounds from this "
                                 "directory")
        parser.add_argument("--host", default="127.0.0.1")
        parser.add_argument("--port", type=int, default=7423,
                            help="TCP port (0 picks an ephemeral one)")
        parser.add_argument("--request-timeout", type=float,
                            default=60.0)
        parser.add_argument("--idle-timeout", type=float, default=30.0)
        parser.add_argument("--metrics", action="store_true",
                            help="enable the repro.obs registry/tracer; "
                                 "the `metrics` wire endpoint then "
                                 "serves live counters")
        parser.add_argument("--auto-checkpoint", action="store_true",
                            help="write a verified checkpoint into the "
                                 "store after every proven round")
        parser.add_argument("--restore", action="store_true",
                            help="resume from the store's latest "
                                 "checkpoint (verified before "
                                 "acceptance) instead of replaying "
                                 "receipts")
        parser.add_argument("--prove-workers", type=int, default=None,
                            metavar="N",
                            help="prove through the repro.engine pool "
                                 "with N workers (process backend "
                                 "unless --pool-backend says "
                                 "otherwise); receipts are reused via "
                                 "the content-addressed cache")
        parser.add_argument("--pool-backend", default=None,
                            choices=["serial", "thread", "process",
                                     "remote"],
                            help="proving pool backend (implies the "
                                 "engine even without --prove-workers)")
        parser.add_argument("--prove-nodes", default=None,
                            metavar="HOST:PORT,HOST:PORT",
                            help="dispatch proving to these `repro "
                                 "worker` daemons (implies "
                                 "--pool-backend=remote; "
                                 "REPRO_PROVE_NODES does the same)")
        parser.add_argument("--query-partitions", type=int,
                            default=None, metavar="K",
                            help="answer queries as up to K partial "
                                 "proofs merged through the engine "
                                 "when the planner models that faster "
                                 "(implies the engine)")
        parser.add_argument("--stream", action="store_true",
                            help="streaming composition: prove "
                                 "per-batch deltas as windows commit "
                                 "and fold them recursively, so each "
                                 "round boundary pays O(delta) instead "
                                 "of O(window) (implies the engine; "
                                 "REPRO_STREAM=1 does the same on an "
                                 "engine-backed service)")
        parser.add_argument("--max-inflight", type=int, default=None,
                            help="enable the multi-tenant query "
                                 "service with a bounded admission "
                                 "queue of this many in-flight queries "
                                 "(typed admission-rejected errors "
                                 "past the bound)")
        parser.add_argument("--tenant-rate", type=float, default=None,
                            help="per-tenant query admission rate "
                                 "(tokens/sec; implies the "
                                 "multi-tenant query service)")
        parser.add_argument("--tenant-burst", type=float, default=None,
                            help="per-tenant token-bucket burst "
                                 "capacity (default: one second of "
                                 "--tenant-rate)")
        parser.add_argument("--batch-window", type=float,
                            default=0.005,
                            help="seconds the query service waits to "
                                 "batch compatible queries into one "
                                 "shared scan")
        parser.add_argument("--qserve-batch", action="store_true",
                            help="batch compatible queries through the "
                                 "proving engine (also via "
                                 "REPRO_QSERVE_BATCH=1; needs an "
                                 "engine, e.g. --query-partitions)")
        parser.add_argument("--stream-crossover", action="store_true",
                            help="with --stream, let the planner's "
                                 "cost model fall back to the "
                                 "monolithic guest for rounds it "
                                 "prices cheaper (tiny or single-batch "
                                 "rounds)")

    def run(self, args: argparse.Namespace) -> CommandResult:
        from ...net import ProverServer
        if args.metrics:
            from ...obs import runtime as obs_runtime
            obs_runtime.enable()
        prove_nodes = None
        if args.prove_nodes:
            from ...cluster import parse_nodes
            prove_nodes = parse_nodes(args.prove_nodes)
        service = rebuild_service(
            args.db, args.bulletin, args.receipts,
            auto_checkpoint=args.auto_checkpoint,
            restore=args.restore,
            pool_backend=args.pool_backend,
            prove_workers=args.prove_workers,
            prove_nodes=prove_nodes,
            query_partitions=args.query_partitions,
            stream=args.stream or None,
            stream_crossover=args.stream_crossover)
        qserve = None
        if args.max_inflight is not None \
                or args.tenant_rate is not None or args.qserve_batch:
            from ...qserve import QueryService
            qserve = QueryService(
                service,
                max_inflight=(args.max_inflight
                              if args.max_inflight is not None
                              else 64),
                tenant_rate=args.tenant_rate,
                tenant_burst=args.tenant_burst,
                batch_window=args.batch_window,
                batch=args.qserve_batch or None)
        server = ProverServer(
            service, host=args.host, port=args.port,
            qserve=qserve,
            request_timeout=args.request_timeout,
            idle_timeout=args.idle_timeout)
        try:
            self._serve(server, service, args)
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            service.close()
            service.store.close()
        return CommandResult.ok(rounds=len(service.chain))

    def _serve(self, server, service, args: argparse.Namespace) -> None:
        """Run the accept loop until interrupted (tests stub this)."""
        import asyncio

        async def run() -> None:
            await server.start()
            print(f"prover server listening on {server.host}:"
                  f"{server.port} ({len(service.chain)} rounds "
                  f"restored, {len(service.bulletin)} commitments"
                  + (", metrics on" if args.metrics else "") + ")",
                  flush=True)
            await server.serve_forever()

        asyncio.run(run())
