"""Shared argparse option helpers used by several commands."""

from __future__ import annotations

import argparse
import pathlib


def add_db(parser: argparse.ArgumentParser,
           required: bool = True) -> None:
    parser.add_argument("--db", type=pathlib.Path, required=required,
                        help="sqlite log store path")


def add_bulletin(parser: argparse.ArgumentParser,
                 required: bool = True) -> None:
    parser.add_argument("--bulletin", type=pathlib.Path,
                        required=required,
                        help="bulletin-board JSON path")
