"""Command-pattern scaffolding for the CLI.

``cli.py`` used to be one ~700-line module of ``cmd_*`` functions wired
into a single ``build_parser``; every new scenario (serve, worker,
qserve, streaming) grew it further, and ROADMAP item 4 (federation)
would have again.  This package replaces that with a small framework:

* :class:`CommandResult` — frozen outcome record (exit code, message,
  read-only data mapping) so scenarios can be driven programmatically,
  not just through ``sys.exit`` codes;
* :class:`Command` — the protocol a scenario implements: ``name``,
  ``help``, ``configure(parser)``, ``run(args)``;
* :class:`CommandRegistry` — ordered name → command map; registration
  order is presentation order in ``repro --help``;
* :class:`CommandInvoker` — builds the argparse tree from the registry
  and executes commands through pre/post :class:`CommandHook`\\ s.

New scenarios register with the :func:`register` decorator from their
own module under ``repro/cli/commands/`` and appear in the parser, the
help text, and the smoke-test sweep automatically.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Iterable, Mapping, Protocol, runtime_checkable

from ..errors import ConfigurationError, ReproError

_EMPTY_DATA: Mapping[str, Any] = MappingProxyType({})


@dataclass(frozen=True)
class CommandResult:
    """Outcome of one command execution.

    ``data`` is a read-only mapping of scenario-specific outputs (record
    counts, paths written, …) for callers driving the CLI in-process;
    human-readable output goes to stdout inside ``run`` as before.
    """

    success: bool
    exit_code: int = 0
    message: str = ""
    data: Mapping[str, Any] = field(
        default_factory=lambda: _EMPTY_DATA)

    @classmethod
    def ok(cls, message: str = "", **data: Any) -> "CommandResult":
        return cls(success=True, exit_code=0, message=message,
                   data=MappingProxyType(dict(data)))

    @classmethod
    def failure(cls, message: str = "", exit_code: int = 1,
                **data: Any) -> "CommandResult":
        return cls(success=False, exit_code=exit_code, message=message,
                   data=MappingProxyType(dict(data)))


@runtime_checkable
class Command(Protocol):
    """A CLI scenario: argparse surface plus execution."""

    name: str
    help: str

    def configure(self, parser: argparse.ArgumentParser) -> None:
        """Add this command's arguments to its subparser."""
        ...

    def run(self, args: argparse.Namespace) -> CommandResult:
        """Execute with parsed arguments."""
        ...


@runtime_checkable
class CommandHook(Protocol):
    """Pre/post observer around every invocation."""

    def before(self, command: Command,
               args: argparse.Namespace) -> None:
        ...

    def after(self, command: Command, args: argparse.Namespace,
              result: CommandResult) -> None:
        ...


class CommandRegistry:
    """Ordered name → :class:`Command` map."""

    def __init__(self) -> None:
        self._commands: dict[str, Command] = {}

    def register(self, command: Command) -> Command:
        name = command.name
        existing = self._commands.get(name)
        if existing is not None and existing is not command:
            raise ConfigurationError(
                f"CLI command {name!r} is already registered by "
                f"{type(existing).__name__}")
        self._commands[name] = command
        return command

    def get(self, name: str) -> Command:
        try:
            return self._commands[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown CLI command {name!r}; registered: "
                f"{sorted(self._commands)}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._commands)

    def commands(self) -> tuple[Command, ...]:
        return tuple(self._commands.values())


# The process-global registry every command module registers into.
REGISTRY = CommandRegistry()


def register(command: Command | type) -> Command | type:
    """Class or instance decorator adding a command to :data:`REGISTRY`.

    Returns its argument unchanged so ``@register`` on a class leaves
    the module-level name bound to the class (tests subclass and
    monkeypatch it); the registry holds one instance either way.
    """
    instance = command() if isinstance(command, type) else command
    REGISTRY.register(instance)
    return command


class CommandInvoker:
    """Builds the parser from a registry and runs commands through hooks."""

    def __init__(self, registry: CommandRegistry = REGISTRY,
                 hooks: Iterable[CommandHook] = ()) -> None:
        self._registry = registry
        self._hooks: list[CommandHook] = list(hooks)

    @property
    def registry(self) -> CommandRegistry:
        return self._registry

    def add_hook(self, hook: CommandHook) -> None:
        self._hooks.append(hook)

    def build_parser(self) -> argparse.ArgumentParser:
        parser = argparse.ArgumentParser(
            prog="repro",
            description="verifiable network telemetry (HotNets '25 "
                        "reproduction)")
        sub = parser.add_subparsers(dest="command", required=True)
        for command in self._registry.commands():
            subparser = sub.add_parser(command.name, help=command.help)
            command.configure(subparser)
            subparser.set_defaults(_command=command)
        return parser

    def invoke(self, command: Command,
               args: argparse.Namespace) -> CommandResult:
        """Run one command through the pre/post hooks.

        ``before`` hooks run in registration order, ``after`` hooks in
        reverse.  Exceptions propagate to the caller (``main`` maps
        :class:`~repro.errors.ReproError` to exit code 2); ``after``
        hooks only observe completed runs.
        """
        for hook in self._hooks:
            hook.before(command, args)
        result = command.run(args)
        for hook in reversed(self._hooks):
            hook.after(command, args, result)
        return result

    def main(self, argv: list[str] | None = None) -> int:
        args = self.build_parser().parse_args(argv)
        command: Command = args._command
        try:
            result = self.invoke(command, args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return result.exit_code


_DEFAULT_INVOKER: CommandInvoker | None = None


def default_invoker() -> CommandInvoker:
    """The shared invoker over :data:`REGISTRY` (built lazily)."""
    global _DEFAULT_INVOKER
    if _DEFAULT_INVOKER is None:
        _DEFAULT_INVOKER = CommandInvoker(REGISTRY)
    return _DEFAULT_INVOKER
