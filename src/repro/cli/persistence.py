"""File-backed persistence shared by the CLI commands.

The CLI persists everything as plain files so each stage can run in a
separate process (or on a separate machine, as the paper's off-path
aggregation intends):

* the shared log store is a sqlite database (``--db``),
* the bulletin board is a JSON file of published commitments,
* receipts are JSON files in a directory (one per round).
"""

from __future__ import annotations

import json
import pathlib

from ..commitments import BulletinBoard, Commitment
from ..core.prover_service import ProverService
from ..errors import ReproError
from ..hashing import Digest
from ..storage import SqliteLogStore
from ..zkvm import Receipt


def save_bulletin(bulletin: BulletinBoard, path: pathlib.Path) -> None:
    entries = [{
        "router_id": c.router_id,
        "window_index": c.window_index,
        "digest": c.digest.hex(),
        "record_count": c.record_count,
        "published_at_ms": c.published_at_ms,
    } for c in bulletin]
    path.write_text(json.dumps({"commitments": entries}, indent=2))


def load_bulletin(path: pathlib.Path) -> BulletinBoard:
    bulletin = BulletinBoard()
    data = json.loads(path.read_text())
    for entry in data["commitments"]:
        bulletin.publish(Commitment(
            router_id=entry["router_id"],
            window_index=entry["window_index"],
            digest=Digest.from_hex(entry["digest"]),
            record_count=entry["record_count"],
            published_at_ms=entry["published_at_ms"],
        ))
    return bulletin


def save_receipts(receipts: list[Receipt], directory: pathlib.Path
                  ) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    for round_index, receipt in enumerate(receipts):
        (directory / f"round-{round_index:04d}.json").write_bytes(
            receipt.to_json_bytes())


def load_receipts(directory: pathlib.Path) -> list[Receipt]:
    receipts = []
    for path in sorted(directory.glob("round-*.json")):
        receipts.append(Receipt.from_json_bytes(path.read_bytes()))
    if not receipts:
        raise ReproError(f"no receipts found under {directory}")
    return receipts


def rebuild_service(db: pathlib.Path, bulletin_path: pathlib.Path,
                    receipts_dir: pathlib.Path | None,
                    strategy: str = "update",
                    auto_checkpoint: bool = False,
                    restore: bool = False,
                    pool_backend: str | None = None,
                    prove_workers: int | None = None,
                    prove_nodes: tuple[str, ...] | None = None,
                    query_partitions: int | None = None,
                    stream: bool | None = None,
                    stream_crossover: bool = False
                    ) -> ProverService:
    """A prover service over the persisted store/bulletin.

    With ``restore=True``, load the latest verified checkpoint from the
    store (fast recovery — no re-proving).  Otherwise, if a receipt
    directory is given, replay the recorded rounds to restore state
    (from-genesis re-aggregation, the slow path ``bench_recovery.py``
    measures).
    """
    store = SqliteLogStore(str(db))
    bulletin = load_bulletin(bulletin_path)
    service = ProverService(store, bulletin, strategy=strategy,
                            auto_checkpoint=auto_checkpoint,
                            pool_backend=pool_backend,
                            prove_workers=prove_workers,
                            prove_nodes=prove_nodes,
                            query_partitions=query_partitions,
                            stream=stream,
                            stream_crossover=stream_crossover)
    if restore:
        if service.restore():
            return service
        print("no checkpoint found; falling back to receipt replay"
              if receipts_dir is not None else
              "no checkpoint found; starting from genesis")
    if receipts_dir is not None and receipts_dir.exists():
        recorded = load_receipts(receipts_dir)
        for receipt in recorded:
            header = next(receipt.journal.values())
            windows = sorted({w["w"] for w in header["windows"]})
            service.aggregate_windows(windows)
        restored_roots = [link.new_root for link in service.chain]
        recorded_roots = [next(r.journal.values())["new_root"]
                          for r in recorded]
        if restored_roots != recorded_roots:
            raise ReproError(
                "replayed rounds do not reproduce the recorded roots — "
                "the store changed since the receipts were produced")
    return service
