"""The work-queue scheduler: partition-and-merge without barriers.

§7 proposes partitioning a round's windows and proving the partitions
in parallel.  The naive schedule barriers per round: all partitions,
then the merge, then the next round may start.  With a pool of workers
that wastes capacity twice — idle workers while a round's last
partition finishes, and an idle pool between rounds.

:meth:`ProvingEngine.prove_rounds` instead enqueues the partition jobs
of **every** pending round up front.  A per-round countdown submits
that round's merge job the moment its own partitions are done, so merge
proofs interleave with other rounds' partition proofs and the pool
stays saturated.  Round failures are isolated: a failed partition
poisons only its round's outcome (the merge is never submitted), which
is what lets the daemon quarantine one window while the rest of the
queue proves on.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..zkvm import ExecutorEnvBuilder, ProverOpts
from ..zkvm.costmodel import CostModel
from ..zkvm.recursion import resolve_all
from .cache import ReceiptCache
from .jobs import JobResult, ProofJob
from .pool import PooledProver, ProverPool, resolve_pool_config

# The partition/merge guests and result type live in repro.core, which
# imports this package — resolve lazily at call time.


@dataclass
class RoundOutcome:
    """One round's result-or-error from a multi-round schedule."""

    index: int
    result: Any | None = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def partition_windows(windows: list[Any],
                      num_partitions: int | None) -> list[list[Any]]:
    """Router-aligned partitioning (a window commitment is checked
    whole, so a router's windows never split across partitions)."""
    if not windows:
        raise ConfigurationError("no windows to aggregate")
    if num_partitions is not None and num_partitions < 1:
        raise ConfigurationError("num_partitions must be >= 1")
    by_router: dict[str, list[Any]] = {}
    for window in sorted(windows, key=lambda w: (w.router_id,
                                                 w.window_index)):
        by_router.setdefault(window.router_id, []).append(window)
    groups = list(by_router.values())
    count = min(num_partitions or len(groups), len(groups))
    partitions: list[list[Any]] = [[] for _ in range(count)]
    for index, group in enumerate(groups):
        partitions[index % count].extend(group)
    return partitions


class ProvingEngine:
    """A pool + cache + scheduler, owning the parallel prove pipeline."""

    def __init__(self, policy: Any = None,
                 prover_opts: ProverOpts | None = None,
                 backend: str | None = None,
                 max_workers: int | None = None,
                 cache: ReceiptCache | None = None,
                 store: Any = None,
                 injector: Any | None = None,
                 nodes: Any = None,
                 cluster_opts: Any = None) -> None:
        from ..core.policy import DEFAULT_POLICY
        self.policy = policy or DEFAULT_POLICY
        self.opts = prover_opts or ProverOpts.succinct()
        if nodes and backend is None:
            backend = "remote"
        backend, workers = resolve_pool_config(
            self.opts, backend=backend, max_workers=max_workers)
        if cache is None:
            cache = ReceiptCache(store=store)
        self.cache = cache
        self.pool = ProverPool(backend=backend, max_workers=workers,
                               cache=cache, injector=injector,
                               nodes=nodes, cluster_opts=cluster_opts)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ProvingEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        self.pool.shutdown()

    def prover(self, opts: ProverOpts | None = None) -> PooledProver:
        """A sequential-prover stand-in routed through this engine."""
        return PooledProver(self.pool, opts or self.opts)

    def snapshot(self) -> dict[str, Any]:
        return self.pool.snapshot()

    # -- scheduling ----------------------------------------------------------

    def prove_round(self, windows: list[Any],
                    num_partitions: int | None = None) -> Any:
        """Prove one partition-and-merge round; raises on failure."""
        outcome = self.prove_rounds([windows], num_partitions)[0]
        if outcome.error is not None:
            raise outcome.error
        return outcome.result

    def prove_rounds(self, rounds: list[list[Any]],
                     num_partitions: int | None = None
                     ) -> list[RoundOutcome]:
        """Prove several independent rounds through one work queue.

        Every round's partition jobs are submitted immediately; each
        round's merge job is submitted from a completion callback as
        soon as *its* partitions are done — no cross-round barrier.
        Returns one :class:`RoundOutcome` per input round, in order.
        """
        from ..core.guest_programs import partition_guest
        start = time.perf_counter()
        schedules = []
        for index, windows in enumerate(rounds):
            partitions = partition_windows(windows, num_partitions)
            obs.registry().counter(obs_names.PARALLEL_PARTITIONS).inc(
                len(partitions))
            schedules.append(_RoundSchedule(index, partitions))
        # Enqueue every round's partition jobs before waiting on any —
        # this is the work queue: partitions of round k+1 prove while
        # round k merges.
        for schedule in schedules:
            futures = []
            for pindex, partition in enumerate(schedule.partitions):
                job = ProofJob.from_parts(
                    partition_guest,
                    _partition_env(self.policy, pindex, partition),
                    self.opts)
                futures.append(self.pool.submit(job))
            schedule.arm(futures, self._submit_merge)
        outcomes = [self._collect(schedule) for schedule in schedules]
        elapsed = time.perf_counter() - start
        registry = obs.registry()
        registry.histogram(obs_names.ENGINE_ROUND_REAL_SECONDS).observe(
            elapsed / max(len(schedules), 1))
        model = CostModel()
        for outcome in outcomes:
            if outcome.ok:
                registry.histogram(
                    obs_names.ENGINE_ROUND_MODELED_SECONDS).observe(
                    outcome.result.modeled_seconds(model))
        return outcomes

    def submit_fanout(self, jobs: list[ProofJob],
                      build_merge: Any) -> "_RoundSchedule":
        """Submit sibling jobs whose merge folds their results.

        The generic form of the partition-and-merge schedule: every job
        in ``jobs`` enters the work queue immediately, and
        ``build_merge(results)`` — called from a completion callback
        the moment the last sibling finishes — returns the merge
        :class:`ProofJob`, which is submitted without a barrier.  The
        caller drives collection through the returned schedule:
        ``partition_futures`` (one per job, in order), ``merge_ready``
        (set once the merge is submitted, or once a sibling failure
        poisons the fan-out), and ``merge_future`` (``None`` iff
        poisoned).  Partitioned query proving routes through here so
        query jobs share the pool, cache, and fault sites with
        aggregation rounds.
        """
        if not jobs:
            raise ConfigurationError("fan-out needs at least one job")

        def submit(schedule: "_RoundSchedule",
                   results: list[JobResult]) -> None:
            schedule.merge_future = self.pool.submit(build_merge(results))
            schedule.merge_ready.set()

        schedule = _RoundSchedule(0, [[job] for job in jobs])
        schedule.arm([self.pool.submit(job) for job in jobs], submit)
        return schedule

    def submit_fanout_multi(self, jobs: list[ProofJob],
                            build_merges: Any) -> "_RoundSchedule":
        """:meth:`submit_fanout` with a fanned-back-out merge stage.

        ``build_merges(results)`` returns a **list** of merge
        :class:`ProofJob` s — one per downstream consumer — all
        submitted together the moment the last sibling finishes.  This
        is batched query proving's shape: one partition scan shared by
        N queries, then N independent merge proofs so every query still
        gets its own receipt.  The caller collects through
        ``schedule.merge_futures`` (in ``build_merges`` output order);
        ``merge_ready`` is set once they are submitted, or once a
        sibling failure poisons the fan-out (``merge_futures`` stays
        empty and ``merge_future`` is ``None`` — unless ``build_merges``
        itself raised, in which case ``merge_future`` carries the
        parked exception).
        """
        if not jobs:
            raise ConfigurationError("fan-out needs at least one job")

        def submit(schedule: "_RoundSchedule",
                   results: list[JobResult]) -> None:
            merge_jobs = build_merges(results)
            if not merge_jobs:
                raise ConfigurationError(
                    "multi-merge fan-out built no merge jobs")
            schedule.merge_futures = [self.pool.submit(job)
                                      for job in merge_jobs]
            schedule.merge_future = schedule.merge_futures[0]
            schedule.merge_ready.set()

        schedule = _RoundSchedule(0, [[job] for job in jobs])
        schedule.arm([self.pool.submit(job) for job in jobs], submit)
        return schedule

    # -- internals -----------------------------------------------------------

    def _submit_merge(self, schedule: "_RoundSchedule",
                      partition_results: list[JobResult]) -> None:
        """Completion callback: this round's partitions are all proven."""
        from ..core.aggregation import make_receipt_binding
        from ..core.guest_programs import merge_guest
        builder = ExecutorEnvBuilder()
        builder.write({
            "round": 0,
            "policy": self.policy.to_wire(),
            "num_partitions": len(partition_results),
        })
        for result in partition_results:
            builder.write(make_receipt_binding(result.receipt))
        job = ProofJob.from_parts(merge_guest, builder.build(),
                                  self.opts)
        schedule.merge_future = self.pool.submit(job)
        schedule.merge_ready.set()

    def _collect(self, schedule: "_RoundSchedule") -> RoundOutcome:
        """Wait out one round, emitting the host-side span tree."""
        from ..core.parallel import ParallelAggregationResult
        try:
            with obs.tracer().span(
                    obs_names.SPAN_PARALLEL_ROUND,
                    partitions=len(schedule.partitions)):
                partition_results = []
                for pindex, future in enumerate(
                        schedule.partition_futures):
                    with obs.tracer().span(
                            obs_names.SPAN_PARALLEL_PARTITION,
                            partition=pindex,
                            routers=len(schedule.partitions[pindex])
                            ) as span:
                        result = future.result()
                        span.add_cycles(result.stats.total_cycles)
                        span.set("cached", result.cached)
                    partition_results.append(result)
                schedule.merge_ready.wait()
                with obs.tracer().span(
                        obs_names.SPAN_PARALLEL_MERGE,
                        partitions=len(partition_results)) as span:
                    merge_result = schedule.merge_future.result()
                    span.add_cycles(merge_result.stats.total_cycles)
                    receipt = resolve_all(
                        merge_result.receipt,
                        [r.receipt for r in partition_results])
        except Exception as exc:
            return RoundOutcome(index=schedule.index, error=exc)
        header = next(receipt.journal.values())
        return RoundOutcome(
            index=schedule.index,
            result=ParallelAggregationResult(
                receipt=receipt,
                partition_infos=tuple(partition_results),
                merge_info=merge_result,
                new_root=header["new_root"],
                size=header["size"],
            ))


class _RoundSchedule:
    """Countdown latch from partition futures to the merge submission."""

    def __init__(self, index: int, partitions: list[list[Any]]) -> None:
        self.index = index
        self.partitions = partitions
        self.partition_futures: list[Future] = []
        self.merge_future: Future | None = None
        self.merge_futures: list[Future] = []
        self.merge_ready = threading.Event()
        self._lock = threading.Lock()
        self._remaining = 0
        self._failed = False

    def arm(self, futures: list[Future],
            submit_merge: Any) -> None:
        self.partition_futures = futures
        self._remaining = len(futures)
        self._submit_merge = submit_merge
        for future in futures:
            future.add_done_callback(self._partition_done)

    def _partition_done(self, future: Future) -> None:
        with self._lock:
            self._remaining -= 1
            if future.exception() is not None:
                self._failed = True
            ready = self._remaining == 0
            failed = self._failed
        if not ready:
            return
        if failed:
            # No merge for a poisoned round; unblock the collector so
            # it can surface the partition error.
            self.merge_ready.set()
            return
        try:
            self._submit_merge(
                self, [f.result() for f in self.partition_futures])
        except Exception as exc:
            # Anything thrown before submit() hands back a future
            # (receipt-binding/encoding bugs) runs on an executor
            # callback thread where a raise would vanish — park the
            # exception on a pre-failed merge future so _collect
            # surfaces it as the round's error.
            failed: Future = Future()
            failed.set_exception(exc)
            self.merge_future = failed
            self.merge_ready.set()


def _partition_env(policy: Any, index: int,
                   windows: list[Any]) -> Any:
    builder = ExecutorEnvBuilder()
    builder.write({
        "partition": index,
        "policy": policy.to_wire(),
        "num_routers": len(windows),
    })
    for window in windows:
        builder.write({
            "router_id": window.router_id,
            "window_index": window.window_index,
            "commitment": window.commitment,
            "blobs": list(window.blobs),
        })
    return builder.build()
