"""The prover pool: one submit API over serial/thread/process/remote
backends.

``submit()`` returns a :class:`concurrent.futures.Future` resolving to
a :class:`~repro.engine.jobs.JobResult`.  The pool consults the
:class:`~repro.engine.cache.ReceiptCache` before dispatching (a hit
never touches a worker), fires the ``engine.worker`` fault site at
dispatch, and — for the process backend — ships jobs and results as
canonical wire blobs and merges each worker's metrics snapshot back
into the host registry.

A crashed worker process breaks a ``ProcessPoolExecutor`` permanently;
the pool translates that into a :class:`~repro.errors.ProofError` on
the affected futures and **recreates the executor**, so one dead worker
quarantines one round instead of stalling the deployment.

The ``remote`` backend replaces the executor with a
:class:`~repro.cluster.ClusterDispatcher` fanning jobs out to worker
daemons (``repro worker``) listed in ``nodes=`` / ``REPRO_PROVE_NODES``
— same futures, same cache-before-dispatch, same fault site; the
cluster package adds leases, stealing, re-verification, quarantine and
local-fallback degradation behind the same ``submit()``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from ..errors import ConfigurationError, PoolShutdown, ProofError
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..serialization import decode
from ..zkvm.prover import ProverOpts
from .cache import ReceiptCache
from .jobs import JobResult, ProofJob, encode_job, execute_job, run_job_wire

BACKENDS = ("serial", "thread", "process", "remote")

#: Environment knobs (the CLI flags' deployment-wide defaults).
ENV_WORKERS = "REPRO_PROVE_WORKERS"
ENV_BACKEND = "REPRO_PROVE_BACKEND"
ENV_NODES = "REPRO_PROVE_NODES"


def _worker_ignore_sigint() -> None:
    # Ctrl-C is delivered to the whole foreground process group; the
    # parent owns shutdown, so workers must not die mid-recv with a
    # KeyboardInterrupt traceback of their own.
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)


def env_workers() -> int | None:
    raw = (os.environ.get(ENV_WORKERS) or "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_WORKERS} must be an integer, got {raw!r}") from None
    return value if value > 0 else None


def env_backend() -> str | None:
    raw = (os.environ.get(ENV_BACKEND) or "").strip().lower()
    return raw or None


def env_nodes() -> tuple[str, ...] | None:
    """``REPRO_PROVE_NODES=host:port,host:port`` — the cluster list."""
    raw = (os.environ.get(ENV_NODES) or "").strip()
    if not raw:
        return None
    from ..cluster.nodes import parse_nodes
    return parse_nodes(raw)


def resolve_pool_config(opts: ProverOpts | None = None,
                        backend: str | None = None,
                        max_workers: int | None = None,
                        default_backend: str = "thread"
                        ) -> tuple[str, int | None]:
    """Resolve (backend, workers): explicit args > opts > env > default.

    Setting ``REPRO_PROVE_WORKERS=N`` alone selects the process backend
    with ``N`` workers — the one-variable switch the CI matrix leg uses
    to push the whole suite through real multi-process proving.
    """
    workers = max_workers
    if workers is None and opts is not None:
        workers = opts.prove_workers
    from_env = workers is None
    if workers is None:
        workers = env_workers()
    chosen = backend
    if chosen is None and opts is not None:
        chosen = opts.pool_backend
    if chosen is None:
        chosen = env_backend()
    if chosen is None and env_nodes():
        # A configured node list is an explicit cluster opt-in: fan
        # out remotely unless something chose a backend outright.
        chosen = "remote"
    if chosen is None:
        chosen = "process" if (from_env and workers) else default_backend
    if chosen not in BACKENDS:
        raise ConfigurationError(
            f"unknown pool backend {chosen!r}; expected one of "
            f"{BACKENDS}")
    return chosen, workers


class ProverPool:
    """Submit :class:`ProofJob` s; receive futures of results."""

    def __init__(self, backend: str = "thread",
                 max_workers: int | None = None,
                 cache: ReceiptCache | None = None,
                 injector: Any | None = None,
                 nodes: Any = None,
                 cluster_opts: Any = None) -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown pool backend {backend!r}; expected one of "
                f"{BACKENDS}")
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.backend = backend
        self.nodes: tuple[str, ...] | None = None
        self.cluster_opts = cluster_opts
        if backend == "remote":
            resolved = tuple(nodes) if nodes else env_nodes()
            if not resolved:
                raise ConfigurationError(
                    "the remote backend needs worker nodes: pass "
                    f"nodes=[...] or set {ENV_NODES}=host:port,...")
            self.nodes = resolved
        self.max_workers = max_workers or os.cpu_count() or 1
        if backend == "serial":
            self.max_workers = 1
        if backend == "remote" and max_workers is None:
            self.max_workers = max(1, len(self.nodes))
        self.cache = cache
        if injector is None:
            from ..faults.injector import NULL_INJECTOR
            injector = NULL_INJECTOR
        self.injector = injector
        self._executor: ThreadPoolExecutor | ProcessPoolExecutor | None \
            = None
        self._cluster: Any = None  # lazy ClusterDispatcher (remote)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._jobs_done = 0
        self._jobs_failed = 0
        self._jobs_cached = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ProverPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
            cluster, self._cluster = self._cluster, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=wait)
        if cluster is not None:
            cluster.shutdown(wait=wait)

    # -- submission ----------------------------------------------------------

    def submit(self, job: ProofJob) -> "Future[JobResult]":
        """Queue one job; cache hits resolve immediately."""
        with self._lock:
            if self._closed:
                raise PoolShutdown("prover pool is shut down")
        registry = obs.registry()
        registry.gauge(obs_names.ENGINE_WORKERS).set(self.max_workers)
        outer: Future[JobResult] = Future()
        key = None
        if self.cache is not None:
            from ..core.guest_programs import resolve_guest
            key = job.cache_key(resolve_guest(job.guest_id).image_id)
            hit = self.cache.get(key)
            if hit is not None:
                with self._lock:
                    self._jobs_cached += 1
                registry.counter(obs_names.ENGINE_JOBS,
                                 ("guest", "outcome")).inc(
                    guest=job.guest_id, outcome="cached")
                outer.set_result(hit)
                return outer
        try:
            from ..faults import plan as fault_sites
            self.injector.fire(fault_sites.ENGINE_WORKER)
        except Exception as exc:  # injected faults use real classes
            registry.counter(obs_names.ENGINE_JOBS,
                             ("guest", "outcome")).inc(
                guest=job.guest_id, outcome="error")
            with self._lock:
                self._jobs_failed += 1
            outer.set_exception(exc)
            return outer
        start = time.perf_counter()
        self._track_dispatch()
        if self.backend == "serial":
            try:
                result = execute_job(job)
            except Exception as exc:
                self._settle(outer, job, key, start, error=exc)
            else:
                self._settle(outer, job, key, start, result=result)
            return outer
        try:
            inner = self._dispatch(job)
        except Exception as exc:
            self._settle(outer, job, key, start,
                         error=self._translate(exc))
            return outer
        inner.add_done_callback(
            lambda f: self._on_inner_done(outer, job, key, start, f))
        return outer

    def map_wait(self, jobs: list[ProofJob]) -> list[JobResult]:
        """Submit all jobs, wait for all; raises the first failure."""
        futures = [self.submit(job) for job in jobs]
        return [future.result() for future in futures]

    # -- status --------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            out = {
                "backend": self.backend,
                "max_workers": self.max_workers,
                "in_flight": self._in_flight,
                "jobs_done": self._jobs_done,
                "jobs_failed": self._jobs_failed,
                "jobs_cached": self._jobs_cached,
            }
            cluster = self._cluster
        out["cache"] = self.cache.stats() if self.cache is not None \
            else None
        if self.backend == "remote":
            out["cluster"] = cluster.snapshot() if cluster is not None \
                else {"nodes": [], "degraded": False, "leases": 0}
        return out

    # -- internals -----------------------------------------------------------

    def _dispatch(self, job: ProofJob) -> "Future[Any]":
        if self.backend == "remote":
            return self._ensure_cluster().dispatch(job)
        executor = self._ensure_executor()
        if self.backend == "thread":
            return executor.submit(execute_job, job)
        payload = encode_job(job, capture_obs=obs.is_enabled())
        return executor.submit(run_job_wire, payload)

    def _ensure_executor(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise PoolShutdown("prover pool is shut down")
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def _ensure_cluster(self) -> Any:
        with self._lock:
            if self._closed:
                raise PoolShutdown("prover pool is shut down")
            if self._cluster is None:
                from ..cluster import ClusterDispatcher
                self._cluster = ClusterDispatcher(
                    self.nodes, opts=self.cluster_opts,
                    injector=self.injector
                    if self.injector is not None
                    and getattr(self.injector, "enabled", False)
                    else None)
            return self._cluster

    def _make_executor(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        if self.backend == "thread":
            return ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-prover")
        import multiprocessing
        # Never fork: the serve path builds this pool in a process that
        # already runs the asyncio server and supervision threads, and
        # forking a multi-threaded parent can deadlock children on locks
        # held mid-operation by other threads (it is also deprecated on
        # Python 3.12+).  Workers start from a clean process instead —
        # jobs cross as wire blobs and guests re-resolve by name, so no
        # inherited state is needed (see ProofJob.guest_module).
        for method in ("forkserver", "spawn"):
            try:
                context = multiprocessing.get_context(method)
                break
            except ValueError:  # pragma: no cover - platform-specific
                continue
        else:  # pragma: no cover - every platform has spawn
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(max_workers=self.max_workers,
                                   mp_context=context,
                                   initializer=_worker_ignore_sigint)

    def _translate(self, exc: Exception) -> Exception:
        if isinstance(exc, BrokenProcessPool):
            with self._lock:
                # Drop the poisoned executor; the next submit builds a
                # fresh one instead of failing forever.
                executor, self._executor = self._executor, None
            if executor is not None:
                # Reap its queue-management thread and process handles
                # (wait=False: the workers are already dead); outside
                # the lock — shutdown joins internals.
                executor.shutdown(wait=False)
            return ProofError(f"prover worker process died: {exc}")
        return exc

    def _on_inner_done(self, outer: "Future[JobResult]", job: ProofJob,
                       key: Any, start: float,
                       inner: "Future[Any]") -> None:
        try:
            raw = inner.result()
        except Exception as exc:
            self._settle(outer, job, key, start,
                         error=self._translate(exc))
            return
        try:
            if self.backend == "process":
                result = JobResult.from_wire(decode(raw))
                if result.obs_snapshot is not None \
                        and obs.is_enabled():
                    obs.registry().merge_snapshot(result.obs_snapshot)
            else:
                result = raw
        except Exception as exc:
            self._settle(outer, job, key, start, error=exc)
            return
        self._settle(outer, job, key, start, result=result)

    def _settle(self, outer: "Future[JobResult]", job: ProofJob,
                key: Any, start: float,
                result: JobResult | None = None,
                error: Exception | None = None) -> None:
        self._track_finish(error is None)
        registry = obs.registry()
        registry.counter(obs_names.ENGINE_JOBS, ("guest", "outcome")).inc(
            guest=job.guest_id, outcome="ok" if error is None else "error")
        registry.histogram(obs_names.ENGINE_JOB_SECONDS,
                           ("guest",)).observe(
            time.perf_counter() - start, guest=job.guest_id)
        if error is not None:
            outer.set_exception(error)
            return
        if self.cache is not None and key is not None:
            self.cache.put(key, result)
        outer.set_result(result)

    def _track_dispatch(self) -> None:
        with self._lock:
            self._in_flight += 1
            in_flight = self._in_flight
        registry = obs.registry()
        registry.gauge(obs_names.ENGINE_QUEUE_DEPTH).set(in_flight)
        registry.gauge(obs_names.ENGINE_WORKERS_BUSY).set(
            min(in_flight, self.max_workers))

    def _track_finish(self, ok: bool) -> None:
        with self._lock:
            self._in_flight -= 1
            if ok:
                self._jobs_done += 1
            else:
                self._jobs_failed += 1
            in_flight = self._in_flight
        registry = obs.registry()
        registry.gauge(obs_names.ENGINE_QUEUE_DEPTH).set(in_flight)
        registry.gauge(obs_names.ENGINE_WORKERS_BUSY).set(
            min(in_flight, self.max_workers))


class PooledProver:
    """A :class:`~repro.zkvm.prover.Prover` look-alike over a pool.

    Drop-in for the ``prover`` injection points in
    :class:`~repro.core.aggregation.Aggregator`,
    :class:`~repro.core.rebuild.RebuildAggregator` and
    :class:`~repro.core.query_proof.QueryProver` — sequential call
    sites gain the cache and the fault site without restructuring.
    """

    def __init__(self, pool: ProverPool,
                 opts: ProverOpts | None = None) -> None:
        self.pool = pool
        self.opts = opts or ProverOpts()

    def prove(self, program: Any, env_input: Any) -> JobResult:
        job = ProofJob.from_parts(program, env_input, self.opts)
        with obs.tracer().span(obs_names.SPAN_ENGINE_JOB,
                               guest=job.guest_id,
                               backend=self.pool.backend) as span:
            result = self.pool.submit(job).result()
            span.add_cycles(result.stats.total_cycles)
            span.set("cached", result.cached)
        return result
