"""Content-addressed receipt cache: two tiers, one key.

Proving is deterministic — identical ``(guest image, env commitment,
opts digest)`` always yields a byte-identical receipt — so a receipt is
pure content: safe to replay forever, from any tier, on any backend.

* **Memory tier**: a bounded LRU of :class:`~repro.engine.jobs.
  JobResult` objects (zero-copy replay within one process).
* **Persistent tier**: the :class:`~repro.storage.backend.LogStore`
  checkpoint KV, so identical partition proofs survive daemon restarts.
  Backends without checkpoint support degrade to memory-only silently
  (one warning); a flaky persistent tier must never fail a prove.

Nothing in a cached receipt is trusted blindly by downstream code: the
merge guest re-verifies every partition claim in-guest, and the host
``resolve`` path re-verifies assumption receipts, so a corrupted
persistent entry fails exactly like a tampered receipt.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from typing import Any

from ..errors import ReproError, StorageError
from ..hashing import Digest
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..serialization import decode, encode
from ..storage.backend import LogStore
from .jobs import JobResult

logger = logging.getLogger(__name__)

#: Checkpoint-KV name prefix for the persistent tier.
CACHE_NAMESPACE = "receipt-cache"


class ReceiptCache:
    """LRU memory tier over an optional persistent checkpoint-KV tier."""

    def __init__(self, store: LogStore | None = None,
                 memory_entries: int = 256,
                 namespace: str = CACHE_NAMESPACE) -> None:
        if memory_entries < 1:
            from ..errors import ConfigurationError
            raise ConfigurationError("memory_entries must be >= 1")
        self._memory: OrderedDict[bytes, JobResult] = OrderedDict()
        self._memory_entries = memory_entries
        self._store = store
        self._namespace = namespace
        self._persistent_ok = store is not None
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0

    # -- lookup --------------------------------------------------------------

    def get(self, key: Digest) -> JobResult | None:
        """Return the cached result for ``key`` or ``None``.

        A persistent-tier hit is promoted into the memory tier; every
        lookup lands one ``repro_engine_cache_total`` series.
        """
        counter = obs.registry().counter(obs_names.ENGINE_CACHE,
                                        ("tier", "result"))
        with self._lock:
            cached = self._memory.get(key.raw)
            if cached is not None:
                self._memory.move_to_end(key.raw)
                self._hits += 1
        if cached is not None:
            counter.inc(tier="memory", result="hit")
            return cached.replace_cached(True)
        counter.inc(tier="memory", result="miss")
        result = self._get_persistent(key)
        if result is not None:
            counter.inc(tier="persistent", result="hit")
            with self._lock:
                self._hits += 1
                self._remember(key, result)
            return result.replace_cached(True)
        if self._persistent_ok:
            counter.inc(tier="persistent", result="miss")
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: Digest, result: JobResult) -> None:
        """Remember ``result`` in both tiers (best-effort persistence)."""
        stored = result.replace_cached(False)
        with self._lock:
            self._remember(key, stored)
            self._stores += 1
        obs.registry().counter(obs_names.ENGINE_CACHE,
                               ("tier", "result")).inc(
            tier="memory", result="store")
        self._put_persistent(key, stored)

    # -- status --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            hits, misses, stores = self._hits, self._misses, self._stores
            entries = len(self._memory)
        lookups = hits + misses
        return {
            "memory_entries": entries,
            "memory_max": self._memory_entries,
            "persistent": self._persistent_ok,
            "hits": hits,
            "misses": misses,
            "stores": stores,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    # -- internals -----------------------------------------------------------

    def _remember(self, key: Digest, result: JobResult) -> None:
        """Insert into the LRU (caller holds the lock)."""
        self._memory[key.raw] = result
        self._memory.move_to_end(key.raw)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)

    def _checkpoint_name(self, key: Digest) -> str:
        return f"{self._namespace}/{key.hex()}"

    def _get_persistent(self, key: Digest) -> JobResult | None:
        if not self._persistent_ok:
            return None
        try:
            blob = self._store.get_checkpoint(self._checkpoint_name(key))
            if blob is None:
                return None
            return JobResult.from_wire(decode(blob))
        except StorageError:
            self._degrade("read")
            return None
        except ReproError as exc:
            # A corrupt entry is a miss, never an error: re-prove.
            logger.warning("receipt cache: dropping undecodable entry "
                           "%s (%s)", key.short(), exc)
            return None

    def _put_persistent(self, key: Digest, result: JobResult) -> None:
        if not self._persistent_ok:
            return
        # The worker-side metrics snapshot is per-execution telemetry,
        # not proof content — don't persist it.
        slim = JobResult(receipt=result.receipt, stats=result.stats)
        try:
            self._store.put_checkpoint(self._checkpoint_name(key),
                                       encode(slim.to_wire()))
            obs.registry().counter(obs_names.ENGINE_CACHE,
                                   ("tier", "result")).inc(
                tier="persistent", result="store")
        except StorageError:
            self._degrade("write")

    def _degrade(self, op: str) -> None:
        if self._persistent_ok:
            self._persistent_ok = False
            logger.warning(
                "receipt cache: persistent tier failed on %s; "
                "continuing memory-only", op)
