"""Proof jobs: the unit of work the proving engine ships to workers.

A :class:`ProofJob` is pure data — a guest *name*, the serialized
executor input frames, and the statement-shaping prover options.  It
crosses process boundaries as a canonical wire blob (not a pickle of
live objects: :class:`~repro.zkvm.guest.GuestProgram` instances do not
pickle by reference), and the worker resolves the name back to code
through the guest registry in :mod:`repro.core.guest_programs`.
Workers start from a clean interpreter (spawn/forkserver — never a
fork of a threaded parent), so the registry there only holds the
guests :mod:`repro.core` registers at import; :attr:`ProofJob.
guest_module` records the defining module of any *other* guest and the
worker imports it on a resolve miss — registration is an import-time
side effect, so the import completes the registry.

Content addressing: ``cache_key(image_id)`` digests the resolved guest
image id, the executor-input commitment, and the opts digest.  Using
the *image id* rather than the name means a guest-code change silently
invalidates every cached receipt for it — a stale receipt can never be
replayed against new code.  Host-side scheduling knobs on
:class:`~repro.zkvm.prover.ProverOpts` (``pool_backend``,
``prove_workers``) are excluded from :attr:`ProofJob.opts_digest`: they
change where a proof runs, not what it claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError, SerializationError
from ..hashing import TAG_ENGINE_KEY, TAG_ENGINE_OPTS, Digest, tagged_hash
from ..serialization import decode, encode
from ..zkvm.executor import ExecutorInput
from ..zkvm.guest import GuestProgram
from ..zkvm.prover import ProveStats, ProverOpts, Prover
from ..zkvm.receipt import Receipt, ReceiptKind


@dataclass(frozen=True)
class ProofJob:
    """One prove request, fully described by value."""

    guest_id: str
    frames: tuple[bytes, ...]
    kind: str = ReceiptKind.GROTH16.value
    num_queries: int = 16
    #: Defining module of the guest — a *resolution hint* for spawned
    #: workers, never part of the content address (the image id binds
    #: the code; where it was imported from does not change the claim).
    guest_module: str | None = None

    @classmethod
    def from_parts(cls, program: GuestProgram | str,
                   env_input: ExecutorInput,
                   opts: ProverOpts | None = None) -> "ProofJob":
        opts = opts or ProverOpts()
        if isinstance(program, str):
            name, module = program, None
        else:
            name = program.name
            module = getattr(program.fn, "__module__", None)
        return cls(guest_id=name, frames=tuple(env_input.frames),
                   kind=opts.kind.value, num_queries=opts.num_queries,
                   guest_module=module)

    def env_input(self) -> ExecutorInput:
        return ExecutorInput(frames=self.frames)

    def prover_opts(self) -> ProverOpts:
        return ProverOpts(kind=ReceiptKind(self.kind),
                          num_queries=self.num_queries)

    @property
    def env_commitment(self) -> Digest:
        return self.env_input().digest

    @property
    def opts_digest(self) -> Digest:
        """Digest over the statement-shaping options only."""
        return tagged_hash(TAG_ENGINE_OPTS, self.kind.encode("utf-8"),
                           self.num_queries.to_bytes(4, "big"))

    def cache_key(self, image_id: Digest) -> Digest:
        """The content address of this job's receipt."""
        return tagged_hash(TAG_ENGINE_KEY, image_id.raw,
                           self.env_commitment.raw, self.opts_digest.raw)

    # -- wire form -----------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {"guest_id": self.guest_id, "frames": list(self.frames),
                "kind": self.kind, "num_queries": self.num_queries,
                "guest_module": self.guest_module}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ProofJob":
        try:
            return cls(guest_id=wire["guest_id"],
                       frames=tuple(wire["frames"]),
                       kind=wire["kind"],
                       num_queries=wire["num_queries"],
                       guest_module=wire.get("guest_module"))
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"malformed proof job wire: {exc}") from exc


@dataclass(frozen=True)
class JobResult:
    """What comes back from a worker (or the cache).

    Attribute-compatible with :class:`~repro.zkvm.prover.ProveInfo`
    for every consumer in :mod:`repro.core` (``.receipt``, ``.stats``);
    it additionally records whether the receipt was replayed from the
    :class:`~repro.engine.cache.ReceiptCache` and, for process workers,
    the worker-side metrics snapshot to merge into the host registry.
    """

    receipt: Receipt
    stats: ProveStats
    cached: bool = False
    obs_snapshot: dict[str, Any] | None = None

    def replace_cached(self, cached: bool) -> "JobResult":
        return JobResult(receipt=self.receipt, stats=self.stats,
                         cached=cached, obs_snapshot=self.obs_snapshot)

    # -- wire form -----------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "receipt": self.receipt.to_wire(),
            "stats": {
                "total_cycles": self.stats.total_cycles,
                "padded_cycles": self.stats.padded_cycles,
                "segment_count": self.stats.segment_count,
                "sha_compressions": self.stats.sha_compressions,
                "wall_seconds": self.stats.wall_seconds,
                "cycle_breakdown": dict(self.stats.cycle_breakdown),
            },
            "cached": self.cached,
            "obs_snapshot": self.obs_snapshot,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "JobResult":
        try:
            stats = wire["stats"]
            return cls(
                receipt=Receipt.from_wire(wire["receipt"]),
                stats=ProveStats(
                    total_cycles=stats["total_cycles"],
                    padded_cycles=stats["padded_cycles"],
                    segment_count=stats["segment_count"],
                    sha_compressions=stats["sha_compressions"],
                    wall_seconds=stats["wall_seconds"],
                    cycle_breakdown=dict(stats["cycle_breakdown"]),
                ),
                cached=wire["cached"],
                obs_snapshot=wire["obs_snapshot"],
            )
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"malformed job result wire: {exc}") from exc


def execute_job(job: ProofJob, capture_obs: bool = False) -> JobResult:
    """Resolve the guest and prove the job (any process, any thread).

    Raises the prover's real exceptions (:class:`~repro.errors.
    GuestAbort`, :class:`~repro.errors.ProofError`) — all picklable, so
    they propagate intact through a ``ProcessPoolExecutor`` future.
    """
    from ..core.guest_programs import resolve_guest
    try:
        program = resolve_guest(job.guest_id)
    except ConfigurationError:
        # Spawned workers only import repro.core; a guest registered by
        # another module (tests, plugins) registers itself when its
        # defining module is imported, so the hint completes the
        # registry — then resolve again, raising the real error if the
        # guest still is not there.
        if not job.guest_module:
            raise
        import importlib
        importlib.import_module(job.guest_module)
        program = resolve_guest(job.guest_id)
    if capture_obs:
        from ..obs import runtime as obs
        with obs.capture() as handle:
            info = Prover(job.prover_opts()).prove(program,
                                                   job.env_input())
            snapshot = handle.registry.snapshot()
    else:
        info = Prover(job.prover_opts()).prove(program, job.env_input())
        snapshot = None
    return JobResult(receipt=info.receipt, stats=info.stats,
                     obs_snapshot=snapshot)


def run_job_wire(payload: bytes) -> bytes:
    """Process-pool entry point: wire in, wire out.

    Module-level (picklable by reference) and defined next to the job
    codec so a spawned worker only imports this module.
    """
    wire = decode(payload)
    job = ProofJob.from_wire(wire["job"])
    result = execute_job(job, capture_obs=wire["capture_obs"])
    return encode(result.to_wire())


def encode_job(job: ProofJob, capture_obs: bool) -> bytes:
    return encode({"job": job.to_wire(), "capture_obs": capture_obs})
