"""repro.engine: real multi-process proving with content-addressed reuse.

The paper's bottleneck is proof generation; §7's answer is partitioned
parallel proving.  This package makes that real rather than modeled:

* :mod:`~repro.engine.jobs` — picklable :class:`ProofJob` descriptions
  resolved through the guest registry, plus the worker entry point;
* :mod:`~repro.engine.pool` — :class:`ProverPool`, one submit API over
  serial / thread / process backends (``ProcessPoolExecutor`` for true
  multi-core wall-clock speedup);
* :mod:`~repro.engine.cache` — :class:`ReceiptCache`, a two-tier
  content-addressed receipt store keyed by
  ``(guest image, env commitment, opts digest)``;
* :mod:`~repro.engine.scheduler` — :class:`ProvingEngine`, the
  barrier-free work-queue scheduler feeding merges as partitions land.

See ``docs/PERFORMANCE.md`` for the architecture and the benchmark /
CI-regression workflow built on top of it.
"""

from .cache import ReceiptCache
from .jobs import JobResult, ProofJob, execute_job, run_job_wire
from .pool import (
    BACKENDS,
    ENV_BACKEND,
    ENV_NODES,
    ENV_WORKERS,
    PooledProver,
    ProverPool,
    env_nodes,
    resolve_pool_config,
)
from .scheduler import ProvingEngine, RoundOutcome, partition_windows

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "ENV_NODES",
    "ENV_WORKERS",
    "JobResult",
    "PooledProver",
    "ProofJob",
    "ProverPool",
    "ProvingEngine",
    "ReceiptCache",
    "RoundOutcome",
    "env_nodes",
    "execute_job",
    "partition_windows",
    "resolve_pool_config",
    "run_job_wire",
]
