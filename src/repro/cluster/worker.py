"""The cluster worker daemon: a lease-keyed proving server.

A worker owns nothing but a :class:`~repro.engine.pool.ProverPool` and
a lease table.  ``work-pull`` hands it a fully-described
:class:`~repro.engine.jobs.ProofJob` under a dispatcher-chosen lease
id; the worker acks immediately and proves in the background, and the
dispatcher polls ``work-result`` until the lease reports ``done`` (a
wire :class:`~repro.engine.jobs.JobResult`) or ``failed`` (a wire
error code).  The ack-then-poll shape is what makes every message
idempotent: a re-sent ``work-pull`` for a held lease is a duplicate
ack, a re-sent ``work-result`` re-reads the table — so the dispatcher
can retry, steal, and re-dispatch without ever double-running a lease
on the same node.

Trust model: the worker is *untrusted*.  Its results re-verify on the
dispatcher before adoption, so a worker may be arbitrarily broken
(or malicious) without compromising the telemetry chain — it can only
waste its own lease.

When constructed over a shared store (``repro worker --db``), the
pool's :class:`~repro.engine.cache.ReceiptCache` persistent tier rides
that store's checkpoint KV — any node can then serve any partition
some other node (or the coordinator) already proved.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any

from ..engine.cache import ReceiptCache
from ..engine.jobs import JobResult, ProofJob
from ..engine.pool import ProverPool
from ..errors import FrameError, ProtocolError, ReproError
from ..faults.wire import (
    CORRUPT,
    DELAY,
    DELAY_SECONDS,
    DISCONNECT,
    DROP,
    corrupt_payload,
    frame_action,
)
from ..net.framing import (
    DEFAULT_MAX_FRAME_SIZE,
    encode_frame,
    read_frame,
    write_frame,
)
from ..net.messages import (
    INTERNAL_ERROR,
    WORKER_KINDS,
    Envelope,
    WorkerMessageKind,
    error_code_for,
    error_response,
    ok_response,
)
from ..obs import names as obs_names
from ..obs import runtime as obs

logger = logging.getLogger(__name__)

#: Completed leases kept for idempotent re-fetch before eviction.
DEFAULT_RETENTION = 256


class _Lease:
    __slots__ = ("lease_id", "guest_id", "future", "accepted_at",
                 "deadline")

    def __init__(self, lease_id: str, guest_id: str,
                 future: "Future[JobResult]", lease_ms: int) -> None:
        self.lease_id = lease_id
        self.guest_id = guest_id
        self.future = future
        self.accepted_at = time.monotonic()
        self.deadline = self.accepted_at + lease_ms / 1000.0


class WorkerServer:
    """Serve ``work-pull``/``work-result``/``work-health`` over TCP."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 backend: str = "thread",
                 max_workers: int | None = None,
                 store: Any = None,
                 cache: ReceiptCache | None = None,
                 injector: Any = None,
                 max_frame_size: int = DEFAULT_MAX_FRAME_SIZE,
                 idle_timeout: float = 30.0,
                 max_connections: int = 64,
                 retention: int = DEFAULT_RETENTION) -> None:
        if cache is None and store is not None:
            cache = ReceiptCache(store=store)
        self.pool = ProverPool(backend=backend, max_workers=max_workers,
                               cache=cache)
        # Wire-frame injector for the *response* path (net.frame site);
        # the pool keeps its own engine.worker site separate.
        self.injector = injector
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self.max_frame_size = max_frame_size
        self.idle_timeout = idle_timeout
        self.max_connections = max_connections
        self.retention = retention
        self.started_at = time.monotonic()
        self.requests_served = 0
        self._leases: "OrderedDict[str, _Lease]" = OrderedDict()
        self._lease_lock = threading.Lock()
        self._server: asyncio.base_events.Server | None = None
        self._conn_slots: asyncio.Semaphore | None = None
        self._thread: threading.Thread | None = None
        self._thread_loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise ProtocolError("worker already started")
        self._conn_slots = asyncio.Semaphore(self.max_connections)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("worker listening on %s:%d", self.host, self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        self.pool.shutdown(wait=False)

    def start_background(self) -> "WorkerServer":
        """Start on a daemon thread; returns once the port is bound."""
        started = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._thread_loop = loop
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-cluster-worker")
        self._thread.start()
        started.wait(timeout=10)
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self

    def stop_background(self) -> None:
        loop, thread = self._thread_loop, self._thread
        if loop is None or thread is None:
            return

        async def shut_down() -> None:
            await self.stop()
            tasks = [t for t in asyncio.all_tasks()
                     if t is not asyncio.current_task()]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        future = asyncio.run_coroutine_threadsafe(shut_down(), loop)
        try:
            future.result(timeout=10)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
            self._thread = None
            self._thread_loop = None

    def __enter__(self) -> "WorkerServer":
        return self.start_background()

    def __exit__(self, *exc_info: object) -> None:
        self.stop_background()

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        assert self._conn_slots is not None
        peer = writer.get_extra_info("peername")
        async with self._conn_slots:
            try:
                await self._serve_connection(reader, writer)
            except asyncio.CancelledError:
                pass  # server shutdown cancelled us mid-read
            except (ConnectionResetError, BrokenPipeError):
                pass  # dispatcher vanished; nothing to tell it
            except Exception:
                logger.exception("worker connection %s crashed", peer)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                payload = await asyncio.wait_for(
                    read_frame(reader, self.max_frame_size),
                    timeout=self.idle_timeout)
            except asyncio.TimeoutError:
                return  # idle/slow dispatcher: hang up
            except (FrameError, ProtocolError) as exc:
                # Unframeable or corrupted input: report once, then
                # hang up — there is no frame boundary left to
                # resynchronize on.  This is the server half of the
                # corrupt-frame contract the net.frame chaos plans
                # exercise.
                await self._try_send(
                    writer, error_response(0, "error",
                                           error_code_for(exc),
                                           str(exc)))
                return
            if payload is None:
                return  # clean EOF
            response = self._process(payload)
            self.requests_served += 1
            if not await self._send_response(writer, response):
                return

    async def _send_response(self, writer: asyncio.StreamWriter,
                             response: Envelope) -> bool:
        """Write one response, subject to injected frame behaviour.

        Returns False when the connection should be dropped.
        """
        action = frame_action(self.injector)
        if action == DROP:
            return True  # the response vanishes; dispatcher times out
        if action == DISCONNECT:
            return False
        if action == DELAY:
            await asyncio.sleep(DELAY_SECONDS)
        data = response.to_bytes()
        if action == CORRUPT:
            data = corrupt_payload(data)
        try:
            await asyncio.wait_for(
                write_frame(writer, data, self.max_frame_size),
                timeout=self.idle_timeout)
        except asyncio.TimeoutError:
            return False
        return True

    async def _try_send(self, writer: asyncio.StreamWriter,
                        envelope: Envelope) -> None:
        try:
            writer.write(encode_frame(envelope.to_bytes(),
                                      self.max_frame_size))
            await asyncio.wait_for(writer.drain(),
                                   timeout=self.idle_timeout)
        except (OSError, asyncio.TimeoutError):
            pass

    # -- dispatch ------------------------------------------------------------

    def _process(self, payload: bytes) -> Envelope:
        try:
            envelope = Envelope.from_bytes(payload)
        except ReproError as exc:
            return error_response(0, "error", error_code_for(exc),
                                  str(exc))
        if envelope.type != "req":
            return error_response(envelope.request_id, envelope.kind,
                                  "bad-request",
                                  f"expected a request envelope, got "
                                  f"{envelope.type!r}")
        if envelope.kind not in WORKER_KINDS:
            return error_response(envelope.request_id, envelope.kind,
                                  "bad-request",
                                  f"unknown worker request kind "
                                  f"{envelope.kind!r}")
        try:
            if envelope.kind == WorkerMessageKind.WORK_PULL.value:
                body = self._handle_pull(envelope.body)
            elif envelope.kind == WorkerMessageKind.WORK_RESULT.value:
                body = self._handle_result(envelope.body)
            else:
                body = self._handle_health()
        except ReproError as exc:
            return error_response(envelope.request_id, envelope.kind,
                                  error_code_for(exc), str(exc))
        except Exception as exc:
            logger.exception("internal error serving %s", envelope.kind)
            return error_response(envelope.request_id, envelope.kind,
                                  INTERNAL_ERROR,
                                  f"{type(exc).__name__}: {exc}")
        return ok_response(envelope.request_id, envelope.kind, body)

    def _handle_pull(self, body: dict[str, Any]) -> dict[str, Any]:
        lease_id = body.get("lease")
        if not isinstance(lease_id, str) or not lease_id:
            raise ProtocolError("work-pull needs a non-empty lease id")
        lease_ms = body.get("lease_ms", 60_000)
        if not isinstance(lease_ms, int) or lease_ms < 1:
            raise ProtocolError("lease_ms must be a positive int")
        wire = body.get("job")
        if not isinstance(wire, dict):
            raise ProtocolError("work-pull needs a job dict")
        job = ProofJob.from_wire(wire)
        with self._lease_lock:
            if lease_id in self._leases:
                # Idempotent re-send (the dispatcher retried after a
                # transport blip): never double-run the lease.
                return {"accepted": True, "lease": lease_id,
                        "duplicate": True}
            self._evict_done_locked()
            future = self.pool.submit(job)
            lease = _Lease(lease_id, job.guest_id, future, lease_ms)
            self._leases[lease_id] = lease
        future.add_done_callback(self._count_outcome)
        return {"accepted": True, "lease": lease_id, "duplicate": False}

    def _handle_result(self, body: dict[str, Any]) -> dict[str, Any]:
        lease_id = body.get("lease")
        if not isinstance(lease_id, str) or not lease_id:
            raise ProtocolError("work-result needs a non-empty lease id")
        with self._lease_lock:
            lease = self._leases.get(lease_id)
        if lease is None:
            return {"state": "unknown", "lease": lease_id}
        if not lease.future.done():
            return {"state": "running", "lease": lease_id}
        error = lease.future.exception()
        if error is not None:
            return {"state": "failed", "lease": lease_id,
                    "code": error_code_for(error),
                    "message": str(error)}
        result = lease.future.result()
        return {"state": "done", "lease": lease_id,
                "result": result.to_wire()}

    def _handle_health(self) -> dict[str, Any]:
        with self._lease_lock:
            leases = len(self._leases)
            running = sum(1 for lease in self._leases.values()
                          if not lease.future.done())
        snapshot = self.pool.snapshot()
        snapshot.update({
            "status": "ok",
            "endpoint": self.endpoint,
            "leases": leases,
            "running": running,
            "uptime_seconds": time.monotonic() - self.started_at,
            "requests_served": self.requests_served,
        })
        return snapshot

    # -- internals -----------------------------------------------------------

    def _count_outcome(self, future: "Future[JobResult]") -> None:
        outcome = "ok" if future.exception() is None else "error"
        obs.registry().counter(obs_names.CLUSTER_WORKER_JOBS,
                               ("outcome",)).inc(outcome=outcome)

    def _evict_done_locked(self) -> None:
        done = [lease_id for lease_id, lease in self._leases.items()
                if lease.future.done()]
        excess = len(done) - self.retention
        for lease_id in done[:max(excess, 0)]:
            del self._leases[lease_id]
