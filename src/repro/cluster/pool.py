"""The cluster dispatcher: leases, stealing, verification, degradation.

:class:`ClusterDispatcher` is the ``remote`` backend behind
:class:`~repro.engine.pool.ProverPool`.  ``dispatch(job)`` returns a
future the engine treats exactly like a thread-pool future; behind it,
two daemon threads run the robustness machinery:

* the **dispatch thread** drains the task queue and assigns each task
  to a node under a fresh *lease* (round-robin over healthy nodes,
  skipping nodes the task already failed on);
* the **monitor thread** polls outstanding leases (``work-result``),
  adopts finished results *after re-verifying the receipt*, steals
  slow leases (re-dispatching the task elsewhere before the lease
  expires — first verified result wins, the loser is discarded), times
  out dead leases, probes quarantined nodes for reinstatement, and
  keeps the ``repro_cluster_*`` gauges honest.

Failure classification is the core design decision.  A worker can fail
a job for two very different reasons:

1. **The job is bad** (``guest-abort``, ``verification`` wire codes):
   deterministic outcomes that would reproduce anywhere — propagated
   to the caller as the typed domain error, no retry.
2. **The node is bad** (transport errors, lease timeouts, lost leases,
   every other code): node-attributable — the node's failure counter
   rises (quarantine after ``quarantine_after`` consecutive), and the
   task is re-dispatched elsewhere.  A task that exhausts its retry
   budget runs on the **local fallback** executor, whose in-process
   result is ground truth — so an ambiguous failure can delay a proof
   but never wrongly fail it.

A result that fails re-verification (wrong seal, wrong image id, or an
input digest that does not match the job's environment commitment) is
*Byzantine*: it is never adopted, the node is quarantined immediately
at maximum backoff, and the job re-proves elsewhere.

When every node is quarantined the dispatcher does not stall: tasks
run on the local fallback and ``degraded`` flips on (the
``repro_cluster_degraded`` gauge and the STATUS/engine snapshot),
flipping back automatically once a probe reinstates a node.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from ..engine.jobs import JobResult, ProofJob, execute_job
from ..errors import (
    ClusterUnavailable,
    ConfigurationError,
    PoolShutdown,
    ReproError,
    VerificationError,
)
from ..net.messages import _CODE_TO_CLASS
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..zkvm.verifier import Verifier
from .nodes import HEALTHY, QUARANTINED, NodeState, WorkerClient

#: Wire codes reporting a *deterministic* job outcome — failures that
#: would reproduce on any node, so they propagate instead of retrying.
DETERMINISTIC_CODES = frozenset({"guest-abort", "verification"})


@dataclass(frozen=True)
class ClusterOpts:
    """Dispatcher tuning.  Defaults suit real deployments; chaos tests
    shrink the timing knobs to keep wall clock down."""

    lease_timeout: float = 60.0       # lease dead after this long
    steal_factor: float = 0.5         # steal at factor * lease_timeout
    poll_interval: float = 0.05       # monitor cadence
    request_timeout: float = 10.0     # per-RPC socket timeout
    probe_timeout: float = 2.0        # work-health probe timeout
    quarantine_after: int = 2         # consecutive failures
    backoff_base: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_max: float = 30.0
    retry_budget: int | None = None   # re-dispatches before fallback
    local_fallback: bool = True
    local_workers: int | None = None
    verify_results: bool = True
    max_frame_size: int | None = None

    @property
    def steal_after(self) -> float:
        return self.lease_timeout * self.steal_factor


class _Task:
    """One dispatched job and its adoption state."""

    __slots__ = ("job", "future", "attempts", "tried", "outstanding",
                 "adopted", "queued")

    def __init__(self, job: ProofJob, future: "Future[JobResult]") -> None:
        self.job = job
        self.future = future
        self.attempts = 0
        self.tried: set[str] = set()
        self.outstanding = 0      # live leases for this task
        self.adopted: str | None = None  # winning lease id
        self.queued = False


class _LeaseRec:
    __slots__ = ("lease_id", "task", "node", "sent_at", "deadline",
                 "steal_at", "stolen")

    def __init__(self, lease_id: str, task: _Task, node: NodeState,
                 opts: ClusterOpts) -> None:
        self.lease_id = lease_id
        self.task = task
        self.node = node
        self.sent_at = time.monotonic()
        self.deadline = self.sent_at + opts.lease_timeout
        self.steal_at = self.sent_at + opts.steal_after
        self.stolen = False


_SHUTDOWN = object()


class ClusterDispatcher:
    """Dispatch :class:`ProofJob` s across remote worker nodes."""

    def __init__(self, nodes: Sequence[str], *,
                 opts: ClusterOpts | None = None,
                 injector: Any = None) -> None:
        if not nodes:
            raise ConfigurationError(
                "the remote backend needs at least one worker node "
                "(set REPRO_PROVE_NODES=host:port,... or pass nodes=)")
        self.opts = opts or ClusterOpts()
        self.injector = injector
        self._nodes: list[NodeState] = []
        for endpoint in nodes:
            client = WorkerClient(
                endpoint,
                timeout=self.opts.request_timeout,
                max_frame_size=self.opts.max_frame_size,
                fault_injector=injector)
            self._nodes.append(NodeState(
                endpoint, client,
                quarantine_after=self.opts.quarantine_after,
                backoff_base=self.opts.backoff_base,
                backoff_multiplier=self.opts.backoff_multiplier,
                backoff_max=self.opts.backoff_max))
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._leases: dict[str, _LeaseRec] = {}
        self._tasks: set[_Task] = set()
        self._lease_seq = itertools.count(1)
        self._lease_prefix = f"d{os.getpid():x}-{id(self) & 0xFFFF:x}"
        self._rr = 0
        self._steals = 0
        self._duplicates = 0
        self._fallback_jobs = 0
        self._rejections = 0
        self._fallback_executor: ThreadPoolExecutor | None = None
        self._stop = threading.Event()
        self._closed = False
        self._dispatch_thread = threading.Thread(
            target=self._dispatch_loop, daemon=True,
            name="repro-cluster-dispatch")
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, daemon=True,
            name="repro-cluster-monitor")
        self._dispatch_thread.start()
        self._monitor_thread.start()
        self._update_gauges()

    # -- public API ----------------------------------------------------------

    def dispatch(self, job: ProofJob) -> "Future[JobResult]":
        with self._lock:
            if self._closed:
                raise PoolShutdown("cluster dispatcher is shut down")
            future: "Future[JobResult]" = Future()
            task = _Task(job, future)
            self._tasks.add(task)
            task.queued = True
        future.add_done_callback(
            lambda _f, t=task: self._forget(t))
        self._queue.put(task)
        return future

    @property
    def degraded(self) -> bool:
        """Every node quarantined — proving only via local fallback."""
        with self._lock:
            return all(n.state == QUARANTINED for n in self._nodes)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            nodes = [n.snapshot() for n in self._nodes]
            degraded = all(n.state == QUARANTINED for n in self._nodes)
            return {
                "nodes": nodes,
                "degraded": degraded,
                "leases": len(self._leases),
                "steals": self._steals,
                "duplicates_discarded": self._duplicates,
                "rejections": self._rejections,
                "fallback_jobs": self._fallback_jobs,
            }

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        self._queue.put(_SHUTDOWN)
        timeout = 5.0 if wait else 0.5
        self._dispatch_thread.join(timeout=timeout)
        self._monitor_thread.join(timeout=timeout)
        with self._lock:
            tasks, self._tasks = set(self._tasks), set()
            self._leases.clear()
            executor = self._fallback_executor
            self._fallback_executor = None
        for task in tasks:
            if not task.future.done():
                task.future.set_exception(
                    PoolShutdown("cluster dispatcher is shut down"))
        if executor is not None:
            executor.shutdown(wait=wait)
        for node in self._nodes:
            node.client.close()

    # -- dispatch thread -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is _SHUTDOWN:
                return
            task: _Task = item
            with self._lock:
                task.queued = False
            if task.future.done():
                continue
            try:
                self._assign(task)
            except Exception as exc:  # never kill the loop
                if not task.future.done():
                    task.future.set_exception(exc)

    def _assign(self, task: _Task) -> None:
        while not self._stop.is_set():
            node = self._pick_node(task)
            if node is None:
                self._run_local(task)
                return
            lease_id = f"{self._lease_prefix}-{next(self._lease_seq)}"
            try:
                with obs.tracer().span(
                        obs_names.SPAN_CLUSTER_DISPATCH,
                        node=node.endpoint,
                        guest=task.job.guest_id):
                    ack = node.client.submit_job(
                        task.job, lease_id,
                        int(self.opts.lease_timeout * 1000))
            except Exception as exc:
                self._node_failure(node, exc)
                with self._lock:
                    task.tried.add(node.endpoint)
                continue
            if not ack.get("accepted"):
                self._node_failure(
                    node, f"work-pull not accepted: {ack!r}")
                with self._lock:
                    task.tried.add(node.endpoint)
                continue
            with self._lock:
                lease = _LeaseRec(lease_id, task, node, self.opts)
                self._leases[lease_id] = lease
                node.leases += 1
                task.outstanding += 1
            self._update_gauges()
            return

    def _pick_node(self, task: _Task) -> NodeState | None:
        # Probe quarantined nodes whose backoff expired (outside the
        # lock — probes are RPCs).
        for node in self._probe_due():
            self._probe(node)
        with self._lock:
            healthy = [n for n in self._nodes if n.state == HEALTHY]
            if not healthy:
                return None
            untried = [n for n in healthy
                       if n.endpoint not in task.tried]
            pool = untried or healthy
            self._rr += 1
            return pool[self._rr % len(pool)]

    # -- monitor thread ------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.opts.poll_interval):
            try:
                self._sweep()
            except Exception:  # pragma: no cover - defensive
                pass

    def _sweep(self) -> None:
        now = time.monotonic()
        with self._lock:
            leases = list(self._leases.values())
        for lease in leases:
            if self._stop.is_set():
                return
            if lease.task.future.done():
                self._discard(lease)
                continue
            if now > lease.deadline:
                self._node_failure(
                    lease.node,
                    f"lease {lease.lease_id} expired after "
                    f"{self.opts.lease_timeout}s")
                self._release_and_requeue(lease)
                continue
            if not lease.stolen and now > lease.steal_at:
                self._steal(lease)
                # fall through: still poll the original lease
            self._poll(lease)
        for node in self._probe_due():
            self._probe(node)
        self._update_gauges()

    def _steal(self, lease: _LeaseRec) -> None:
        """Re-dispatch a slow lease's task elsewhere, keeping the
        original in the race — first verified result wins."""
        with self._lock:
            if lease.stolen or lease.task.future.done():
                return
            lease.stolen = True
            lease.task.tried.add(lease.node.endpoint)
            self._steals += 1
        obs.registry().counter(obs_names.CLUSTER_STEALS).inc()
        self._requeue(lease.task)

    def _poll(self, lease: _LeaseRec) -> None:
        try:
            reply = lease.node.client.poll_result(lease.lease_id)
        except Exception as exc:
            self._node_failure(lease.node, exc)
            self._release_and_requeue(lease)
            return
        state = reply.get("state")
        if state == "running":
            return
        if state == "done":
            try:
                result = JobResult.from_wire(reply["result"])
            except (ReproError, KeyError, TypeError) as exc:
                self._reject(lease, exc)
                return
            self._adopt(lease, result)
            return
        if state == "failed":
            self._job_failed(lease, str(reply.get("code", "")),
                             str(reply.get("message", "")))
            return
        # "unknown" (or garbage): the worker lost our lease — most
        # likely it restarted.  Treat as a node failure and move on.
        self._node_failure(
            lease.node,
            f"lease {lease.lease_id} unknown to {lease.node.endpoint}")
        self._release_and_requeue(lease)

    # -- result adoption -----------------------------------------------------

    def _adopt(self, lease: _LeaseRec, result: JobResult) -> None:
        task = lease.task
        if self.opts.verify_results:
            try:
                image_id = _resolve_image_id(task.job)
                # verify_conditional, not verify: a remote receipt may
                # legitimately carry unresolved assumptions (the update
                # strategy resolves them downstream).  Seal, image id,
                # exit code and journal digest are still checked, so a
                # forged result cannot slip through.
                Verifier().verify_conditional(result.receipt, image_id)
                claimed = result.receipt.claim.input_digest
                if claimed != task.job.env_commitment:
                    raise VerificationError(
                        f"receipt binds input {claimed.hex()[:16]}…, "
                        f"job committed "
                        f"{task.job.env_commitment.hex()[:16]}…")
            except ReproError as exc:
                self._reject(lease, exc)
                return
        registry = obs.registry()
        with self._lock:
            self._leases.pop(lease.lease_id, None)
            lease.node.leases -= 1
            task.outstanding -= 1
            if task.future.done() or task.adopted is not None:
                self._duplicates += 1
                duplicate = True
            else:
                task.adopted = lease.lease_id
                lease.node.record_success()
                duplicate = False
        if duplicate:
            registry.counter(obs_names.CLUSTER_DUPLICATES).inc()
            return
        registry.counter(obs_names.CLUSTER_JOBS,
                         ("node", "outcome")).inc(
            node=lease.node.endpoint, outcome="ok")
        task.future.set_result(result.replace_cached(False))

    def _reject(self, lease: _LeaseRec, error: Exception) -> None:
        """A Byzantine (unverifiable) result: never adopt, quarantine
        the node hard, re-prove elsewhere."""
        with self._lock:
            self._rejections += 1
            lease.node.record_rejection(error)
            lease.task.tried.add(lease.node.endpoint)
        obs.registry().counter(obs_names.CLUSTER_JOBS,
                               ("node", "outcome")).inc(
            node=lease.node.endpoint, outcome="rejected")
        self._release(lease)
        self._update_gauges()
        with self._lock:
            requeue = (not lease.task.future.done()
                       and lease.task.outstanding == 0)
        if requeue:
            self._requeue(lease.task)

    def _job_failed(self, lease: _LeaseRec, code: str,
                    message: str) -> None:
        if code in DETERMINISTIC_CODES:
            # The job itself fails, on any node; the node behaved.
            cls = _CODE_TO_CLASS.get(code, ReproError)
            with self._lock:
                self._leases.pop(lease.lease_id, None)
                lease.node.leases -= 1
                lease.task.outstanding -= 1
                lease.node.record_success()
                settle = (not lease.task.future.done()
                          and lease.task.adopted is None)
                if settle:
                    lease.task.adopted = lease.lease_id
            obs.registry().counter(obs_names.CLUSTER_JOBS,
                                   ("node", "outcome")).inc(
                node=lease.node.endpoint, outcome="aborted")
            if settle:
                lease.task.future.set_exception(
                    cls(f"remote: {message}"))
            return
        # Anything else is node-attributable (worker pool broke, its
        # store failed, an unclassified crash): retry elsewhere; the
        # local fallback is the ground-truth tie-breaker.
        self._node_failure(
            lease.node, f"job failed on node [{code}]: {message}")
        self._release_and_requeue(lease)

    # -- lease/task bookkeeping ----------------------------------------------

    def _release(self, lease: _LeaseRec) -> None:
        with self._lock:
            if self._leases.pop(lease.lease_id, None) is None:
                return
            lease.node.leases -= 1
            lease.task.outstanding -= 1

    def _discard(self, lease: _LeaseRec) -> None:
        """Drop a lease whose task already completed elsewhere."""
        with self._lock:
            if self._leases.pop(lease.lease_id, None) is None:
                return
            lease.node.leases -= 1
            lease.task.outstanding -= 1
            superseded = lease.task.adopted != lease.lease_id
            if superseded:
                self._duplicates += 1
        if superseded:
            obs.registry().counter(obs_names.CLUSTER_DUPLICATES).inc()

    def _release_and_requeue(self, lease: _LeaseRec) -> None:
        self._release(lease)
        with self._lock:
            lease.task.tried.add(lease.node.endpoint)
            requeue = (not lease.task.future.done()
                       and lease.task.outstanding == 0
                       and not lease.task.queued)
        if requeue:
            self._requeue(lease.task)

    def _requeue(self, task: _Task) -> None:
        with self._lock:
            if task.future.done() or task.queued or self._closed:
                return
            task.attempts += 1
            attempts = task.attempts
            if attempts <= self._retry_budget():
                task.queued = True
                over = False
            else:
                over = True
        if over:
            self._run_local(task)
        else:
            self._queue.put(task)

    def _retry_budget(self) -> int:
        if self.opts.retry_budget is not None:
            return self.opts.retry_budget
        return 2 * len(self._nodes) + 1

    def _forget(self, task: _Task) -> None:
        with self._lock:
            self._tasks.discard(task)

    # -- node health ---------------------------------------------------------

    def _node_failure(self, node: NodeState,
                      error: BaseException | str) -> None:
        with self._lock:
            node.record_failure(error)
        obs.registry().counter(obs_names.CLUSTER_JOBS,
                               ("node", "outcome")).inc(
            node=node.endpoint, outcome="failed")
        self._update_gauges()

    def _probe_due(self) -> list[NodeState]:
        now = time.monotonic()
        with self._lock:
            return [n for n in self._nodes if n.probe_due(now)]

    def _probe(self, node: NodeState) -> None:
        probe_client = None
        try:
            # A dedicated short-timeout client: the probe must answer
            # fast to prove the node healthy again.
            probe_client = WorkerClient(
                node.endpoint,
                timeout=self.opts.probe_timeout,
                max_frame_size=self.opts.max_frame_size,
                fault_injector=self.injector)
            probe_client.probe()
        except Exception as exc:
            with self._lock:
                node.probe_failed(exc)
        else:
            with self._lock:
                node.reinstate()
        finally:
            if probe_client is not None:
                probe_client.close()
        self._update_gauges()

    # -- local fallback ------------------------------------------------------

    def _run_local(self, task: _Task) -> None:
        if not self.opts.local_fallback:
            if not task.future.done():
                task.future.set_exception(ClusterUnavailable(
                    "no healthy cluster node and local fallback is "
                    "disabled"))
            return
        registry = obs.registry()
        registry.counter(obs_names.CLUSTER_FALLBACK).inc()
        with self._lock:
            self._fallback_jobs += 1
            if self._fallback_executor is None:
                self._fallback_executor = ThreadPoolExecutor(
                    max_workers=self.opts.local_workers
                    or os.cpu_count() or 1,
                    thread_name_prefix="repro-cluster-local")
            executor = self._fallback_executor
        inner = executor.submit(execute_job, task.job)
        inner.add_done_callback(
            lambda f, t=task: self._settle_local(t, f))
        self._update_gauges()

    def _settle_local(self, task: _Task,
                      inner: "Future[JobResult]") -> None:
        with self._lock:
            if task.future.done() or task.adopted is not None:
                self._duplicates += 1
                duplicate = True
            else:
                task.adopted = "local"
                duplicate = False
        if duplicate:
            obs.registry().counter(obs_names.CLUSTER_DUPLICATES).inc()
            return
        error = inner.exception()
        if error is not None:
            task.future.set_exception(error)
        else:
            task.future.set_result(inner.result())

    # -- gauges --------------------------------------------------------------

    def _update_gauges(self) -> None:
        with self._lock:
            healthy = sum(1 for n in self._nodes
                          if n.state == HEALTHY)
            quarantined = len(self._nodes) - healthy
        registry = obs.registry()
        registry.gauge(obs_names.CLUSTER_NODES, ("state",)).set(
            healthy, state=HEALTHY)
        registry.gauge(obs_names.CLUSTER_NODES, ("state",)).set(
            quarantined, state=QUARANTINED)
        registry.gauge(obs_names.CLUSTER_DEGRADED).set(
            1 if healthy == 0 else 0)


def _resolve_image_id(job: ProofJob) -> Any:
    """The job's guest image id, importing the hint module on a miss
    (same resolution the workers use in :func:`execute_job`)."""
    from ..core.guest_programs import resolve_guest
    try:
        program = resolve_guest(job.guest_id)
    except ConfigurationError:
        if not job.guest_module:
            raise
        import importlib
        importlib.import_module(job.guest_module)
        program = resolve_guest(job.guest_id)
    return program.image_id
