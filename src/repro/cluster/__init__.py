"""Distributed proving fabric: remote worker nodes for the engine.

The paper decouples proving from the telemetry hot path because
proving is the bottleneck; PR 4/5 parallelized it within one machine,
and this package takes the next scale jump — shard proving across
*nodes*.  The verified-computation trust model makes that safe with
zero marginal trust: every :class:`~repro.engine.jobs.JobResult`
carries a receipt, and the dispatcher re-verifies it before adoption,
so worker nodes are fully untrusted commodity processes.

Pieces:

* :class:`WorkerServer` / ``repro worker`` — the daemon: an asyncio
  front over a local :class:`~repro.engine.pool.ProverPool`, speaking
  the ``work-pull``/``work-result``/``work-health`` wire kinds with
  lease-keyed idempotency.
* :class:`ClusterDispatcher` — the coordinator-side brain: lease
  assignment, work stealing, Byzantine-result rejection, per-node
  quarantine with exponential backoff + probe reinstatement, and
  graceful degradation to an in-process fallback when every node is
  down (``repro.cluster.pool`` has the full story).
* :class:`WorkerClient` / :class:`NodeState` — the per-node transport
  and health bookkeeping.

Entry points: ``ProverPool(backend="remote", nodes=[...])``, the
``REPRO_PROVE_NODES=host:port,...`` environment switch (which makes
``remote`` the default backend), or ``repro serve --prove-nodes``.
"""

from .nodes import HEALTHY, QUARANTINED, NodeState, WorkerClient, parse_nodes
from .pool import DETERMINISTIC_CODES, ClusterDispatcher, ClusterOpts
from .worker import WorkerServer

__all__ = [
    "DETERMINISTIC_CODES",
    "HEALTHY",
    "QUARANTINED",
    "ClusterDispatcher",
    "ClusterOpts",
    "NodeState",
    "WorkerClient",
    "WorkerServer",
    "parse_nodes",
]
