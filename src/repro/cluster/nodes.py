"""Per-node state and the dispatcher-side worker client.

One :class:`NodeState` per configured worker endpoint tracks the
quarantine machinery (PR 3's daemon backoff, applied per *node*): a
node accumulates ``consecutive_failures`` across transport errors,
lease timeouts and rejected results; crossing the threshold
quarantines it for an exponentially growing backoff window, after
which the dispatcher probes it (``work-health``) and either reinstates
or re-quarantines at the next backoff level.  A *Byzantine* rejection
— a receipt that fails re-verification — quarantines immediately at
the maximum backoff: a node that lies about proofs is worse than a
node that is down.

:class:`WorkerClient` is the :class:`~repro.net.client.ServiceClient`
transport pointed at a worker daemon, speaking the three worker kinds,
with the ``net.frame`` fault site wired into its exchange path so
chaos plans can drop/delay/corrupt/disconnect individual frames
deterministically.
"""

from __future__ import annotations

import math
import socket
import time
from typing import Any

from ..engine.jobs import ProofJob
from ..errors import (
    ConfigurationError,
    ConnectionFailed,
    ProtocolError,
    RequestTimeout,
)
from ..faults.wire import (
    CORRUPT,
    DELAY,
    DELAY_SECONDS,
    DISCONNECT,
    DROP,
    corrupt_payload,
    frame_action,
)
from ..net.client import ServiceClient, parse_endpoint
from ..net.framing import read_frame_from, write_frame_to
from ..net.messages import Envelope, WorkerMessageKind, raise_remote
from ..net.retry import RetryPolicy

#: Node health states (the ``repro_cluster_nodes`` gauge's label values).
HEALTHY = "healthy"
QUARANTINED = "quarantined"


def parse_nodes(text: str) -> tuple[str, ...]:
    """Split a ``host:port,host:port`` list, validating each endpoint."""
    nodes = tuple(piece.strip() for piece in text.split(",")
                  if piece.strip())
    if not nodes:
        raise ConfigurationError("empty cluster node list")
    for node in nodes:
        parse_endpoint(node)  # raises ConfigurationError on bad syntax
    return nodes


class WorkerClient(ServiceClient):
    """Blocking client for one worker daemon.

    The dispatcher owns retries, failover and lease re-dispatch, so
    the transport retry policy is a single attempt — a failed exchange
    must surface immediately as *this node's* failure, not be papered
    over by a transparent retry that skews the quarantine accounting.
    """

    def __init__(self, host: str, port: int | None = None, *,
                 timeout: float = 10.0,
                 max_frame_size: int | None = None,
                 fault_injector: Any = None) -> None:
        kwargs: dict[str, Any] = {
            "timeout": timeout,
            "retry": RetryPolicy(max_attempts=1),
            "pool_size": 1,
            "fault_injector": fault_injector,
        }
        if max_frame_size is not None:
            kwargs["max_frame_size"] = max_frame_size
        super().__init__(host, port, **kwargs)

    # -- worker endpoints ----------------------------------------------------

    def submit_job(self, job: ProofJob, lease_id: str,
                   lease_ms: int) -> dict[str, Any]:
        """``work-pull``: hand the job over under ``lease_id``."""
        return self._request(WorkerMessageKind.WORK_PULL.value, {
            "job": job.to_wire(),
            "lease": lease_id,
            "lease_ms": int(lease_ms),
        })

    def poll_result(self, lease_id: str) -> dict[str, Any]:
        """``work-result``: the lease's state (+ result when done)."""
        return self._request(WorkerMessageKind.WORK_RESULT.value,
                             {"lease": lease_id})

    def probe(self) -> dict[str, Any]:
        """``work-health``: liveness + load snapshot."""
        return self._request(WorkerMessageKind.WORK_HEALTH.value)

    # -- fault-injected exchange ---------------------------------------------

    def _exchange(self, sock: socket.socket,
                  envelope: Envelope) -> dict[str, Any]:
        action = frame_action(self._fault_injector)
        if action is None:
            return super()._exchange(sock, envelope)
        if action == DELAY:
            time.sleep(DELAY_SECONDS)
            return super()._exchange(sock, envelope)
        if action == DISCONNECT:
            try:
                sock.close()
            except OSError:
                pass
            raise ConnectionFailed(
                f"injected disconnect to {self.host}:{self.port}")
        if action == DROP:
            # The request frame vanishes in flight: send nothing and
            # wait out the socket timeout, exactly like a blackhole.
            try:
                read_frame_from(sock.recv, self.max_frame_size)
            except socket.timeout as exc:
                raise RequestTimeout(
                    f"no response from {self.host}:{self.port} within "
                    f"{self.timeout}s (dropped frame)") from exc
            except OSError as exc:
                raise ConnectionFailed(
                    f"connection to {self.host}:{self.port} failed: "
                    f"{exc}") from exc
            raise ProtocolError("unsolicited frame after dropped request")
        # CORRUPT: flip the outgoing envelope's leading byte; a correct
        # peer must reject it with a typed error envelope and hang up.
        data = corrupt_payload(envelope.to_bytes())
        try:
            write_frame_to(sock.sendall, data, self.max_frame_size)
            payload = read_frame_from(sock.recv, self.max_frame_size)
        except socket.timeout as exc:
            raise RequestTimeout(
                f"no response from {self.host}:{self.port} within "
                f"{self.timeout}s") from exc
        except OSError as exc:
            raise ConnectionFailed(
                f"connection to {self.host}:{self.port} failed: "
                f"{exc}") from exc
        reply = Envelope.from_bytes(payload)
        if reply.type == "err":
            raise_remote(reply.body.get("code", "internal"),
                         str(reply.body.get("message", "")))
        raise ProtocolError(
            f"{self.host}:{self.port} accepted a corrupted frame")


class NodeState:
    """Dispatcher-side view of one worker node.

    Mutated only under the dispatcher's lock; the backoff schedule is
    ``base * multiplier**level`` capped at ``maximum`` (no jitter —
    probe timing must replay deterministically in chaos runs; the
    randomness budget lives in the fault plan's seed instead).
    """

    def __init__(self, endpoint: str, client: WorkerClient, *,
                 quarantine_after: int = 2,
                 backoff_base: float = 0.5,
                 backoff_multiplier: float = 2.0,
                 backoff_max: float = 30.0) -> None:
        self.endpoint = endpoint
        self.client = client
        self.quarantine_after = quarantine_after
        self.backoff_base = backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.backoff_max = backoff_max
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.backoff_level = 0
        self.quarantined_until = 0.0
        self.last_error: str | None = None
        self.jobs_ok = 0
        self.jobs_failed = 0
        self.rejected = 0
        self.leases = 0

    # -- accounting (caller holds the dispatcher lock) -----------------------

    def record_success(self) -> None:
        self.jobs_ok += 1
        self.consecutive_failures = 0
        self.backoff_level = 0
        self.last_error = None

    def record_failure(self, error: BaseException | str) -> bool:
        """Count one node-attributable failure; True if it quarantined."""
        self.jobs_failed += 1
        self.consecutive_failures += 1
        self.last_error = str(error)
        if self.state == HEALTHY \
                and self.consecutive_failures >= self.quarantine_after:
            self._quarantine()
            return True
        return False

    def record_rejection(self, error: BaseException | str) -> bool:
        """A Byzantine result: quarantine immediately at max backoff."""
        self.rejected += 1
        self.consecutive_failures += 1
        self.last_error = str(error)
        quarantined = self.state == HEALTHY
        self.backoff_level = self._max_level()
        self._quarantine()
        return quarantined

    def reinstate(self) -> None:
        """A probe succeeded: back to the healthy rotation."""
        self.state = HEALTHY
        self.consecutive_failures = 0
        self.quarantined_until = 0.0

    def probe_failed(self, error: BaseException | str) -> None:
        """A reinstatement probe failed: next backoff level."""
        self.last_error = str(error)
        self.backoff_level = min(self.backoff_level + 1,
                                 self._max_level())
        self.quarantined_until = time.monotonic() + self.backoff()

    def probe_due(self, now: float | None = None) -> bool:
        return self.state == QUARANTINED \
            and (now if now is not None else time.monotonic()) \
            >= self.quarantined_until

    def backoff(self) -> float:
        return min(
            self.backoff_base
            * self.backoff_multiplier ** self.backoff_level,
            self.backoff_max)

    def _quarantine(self) -> None:
        self.state = QUARANTINED
        self.quarantined_until = time.monotonic() + self.backoff()
        self.backoff_level = min(self.backoff_level + 1,
                                 self._max_level())

    def _max_level(self) -> int:
        if self.backoff_base <= 0:
            return 0
        return max(0, math.ceil(math.log(
            max(self.backoff_max / self.backoff_base, 1.0),
            self.backoff_multiplier)))

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return {
            "endpoint": self.endpoint,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "backoff_level": self.backoff_level,
            "backoff_seconds": self.backoff(),
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "rejected": self.rejected,
            "leases": self.leases,
            "last_error": self.last_error,
        }


__all__ = [
    "HEALTHY",
    "QUARANTINED",
    "NodeState",
    "WorkerClient",
    "parse_nodes",
]
