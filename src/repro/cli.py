"""Command-line interface: drive the full pipeline from a shell.

The CLI persists everything as plain files so each stage can run in a
separate process (or on a separate machine, as the paper's off-path
aggregation intends):

* the shared log store is a sqlite database (``--db``),
* the bulletin board is a JSON file of published commitments,
* receipts are JSON files in a directory (one per round).

Typical session::

    python -m repro simulate  --db logs.db --bulletin bulletin.json --records 400
    python -m repro aggregate --db logs.db --bulletin bulletin.json --receipts out/
    python -m repro query     --db logs.db --bulletin bulletin.json --receipts out/ \
        'SELECT COUNT(*) FROM clogs'
    python -m repro verify    --bulletin bulletin.json --receipts out/
    python -m repro tamper    --db logs.db --router r1 --window 1 --kind modify-field
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from .commitments import BulletinBoard, Commitment
from .core.prover_service import ProverService
from .core.verifier_client import VerifierClient
from .errors import ReproError
from .hashing import Digest
from .netflow import NetFlowSimulator, SimClock, SimulatorConfig
from .netflow.generator import TrafficConfig
from .storage import SqliteLogStore
from .zkvm import Receipt
from .zkvm.costmodel import CostModel

# ---------------------------------------------------------------------------
# Bulletin / receipt persistence
# ---------------------------------------------------------------------------


def save_bulletin(bulletin: BulletinBoard, path: pathlib.Path) -> None:
    entries = [{
        "router_id": c.router_id,
        "window_index": c.window_index,
        "digest": c.digest.hex(),
        "record_count": c.record_count,
        "published_at_ms": c.published_at_ms,
    } for c in bulletin]
    path.write_text(json.dumps({"commitments": entries}, indent=2))


def load_bulletin(path: pathlib.Path) -> BulletinBoard:
    bulletin = BulletinBoard()
    data = json.loads(path.read_text())
    for entry in data["commitments"]:
        bulletin.publish(Commitment(
            router_id=entry["router_id"],
            window_index=entry["window_index"],
            digest=Digest.from_hex(entry["digest"]),
            record_count=entry["record_count"],
            published_at_ms=entry["published_at_ms"],
        ))
    return bulletin


def save_receipts(receipts: list[Receipt], directory: pathlib.Path
                  ) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    for round_index, receipt in enumerate(receipts):
        (directory / f"round-{round_index:04d}.json").write_bytes(
            receipt.to_json_bytes())


def load_receipts(directory: pathlib.Path) -> list[Receipt]:
    receipts = []
    for path in sorted(directory.glob("round-*.json")):
        receipts.append(Receipt.from_json_bytes(path.read_bytes()))
    if not receipts:
        raise ReproError(f"no receipts found under {directory}")
    return receipts


def rebuild_service(db: pathlib.Path, bulletin_path: pathlib.Path,
                    receipts_dir: pathlib.Path | None,
                    strategy: str = "update",
                    auto_checkpoint: bool = False,
                    restore: bool = False,
                    pool_backend: str | None = None,
                    prove_workers: int | None = None,
                    prove_nodes: tuple[str, ...] | None = None,
                    query_partitions: int | None = None,
                    stream: bool | None = None,
                    stream_crossover: bool = False
                    ) -> ProverService:
    """A prover service over the persisted store/bulletin.

    With ``restore=True``, load the latest verified checkpoint from the
    store (fast recovery — no re-proving).  Otherwise, if a receipt
    directory is given, replay the recorded rounds to restore state
    (from-genesis re-aggregation, the slow path ``bench_recovery.py``
    measures).
    """
    store = SqliteLogStore(str(db))
    bulletin = load_bulletin(bulletin_path)
    service = ProverService(store, bulletin, strategy=strategy,
                            auto_checkpoint=auto_checkpoint,
                            pool_backend=pool_backend,
                            prove_workers=prove_workers,
                            prove_nodes=prove_nodes,
                            query_partitions=query_partitions,
                            stream=stream,
                            stream_crossover=stream_crossover)
    if restore:
        if service.restore():
            return service
        print("no checkpoint found; falling back to receipt replay"
              if receipts_dir is not None else
              "no checkpoint found; starting from genesis")
    if receipts_dir is not None and receipts_dir.exists():
        recorded = load_receipts(receipts_dir)
        for receipt in recorded:
            header = next(receipt.journal.values())
            windows = sorted({w["w"] for w in header["windows"]})
            service.aggregate_windows(windows)
        restored_roots = [link.new_root for link in service.chain]
        recorded_roots = [next(r.journal.values())["new_root"]
                          for r in recorded]
        if restored_roots != recorded_roots:
            raise ReproError(
                "replayed rounds do not reproduce the recorded roots — "
                "the store changed since the receipts were produced")
    return service


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    store = SqliteLogStore(str(args.db))
    bulletin = BulletinBoard()
    simulator = NetFlowSimulator(
        store, bulletin, SimClock(),
        SimulatorConfig(num_routers=args.routers,
                        commit_interval_ms=args.window_ms,
                        flows_per_tick=args.flows_per_tick,
                        traffic=TrafficConfig(seed=args.seed)))
    simulator.run_until_records(args.records)
    simulator.flush()
    save_bulletin(bulletin, args.bulletin)
    store.close()
    print(f"simulated {simulator.records_generated} records into "
          f"{args.db}; {len(bulletin)} commitments -> {args.bulletin}")
    return 0


def cmd_aggregate(args: argparse.Namespace) -> int:
    service = rebuild_service(args.db, args.bulletin, None,
                              strategy=args.strategy)
    results = service.aggregate_all_committed()
    if not results:
        print("nothing to aggregate (no committed windows)")
        return 1
    save_receipts(service.chain.receipts(), args.receipts)
    model = CostModel()
    for result in results:
        modeled = model.prove_seconds(result.info.stats) / 60
        print(f"round {result.round}: {result.record_count} records -> "
              f"{len(result.new_state)} flows, root "
              f"{result.new_root.short()}…, modeled prove "
              f"{modeled:.1f} min")
    print(f"{len(results)} receipts -> {args.receipts}")
    service.store.close()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    if args.connect is not None:
        return _query_remote(args)
    if args.db is None or args.bulletin is None \
            or args.receipts is None:
        raise ReproError(
            "query needs either --connect HOST:PORT or all of "
            "--db/--bulletin/--receipts")
    service = rebuild_service(args.db, args.bulletin, args.receipts,
                              query_partitions=args.query_partitions)
    response = service.answer_query(args.sql)
    verifier = VerifierClient(service.bulletin)
    chain = verifier.verify_chain(service.chain.receipts())
    verified = verifier.verify_query(response, chain[-1])
    _print_verified_query(args, response, verified)
    service.store.close()
    return 0


def _query_remote(args: argparse.Namespace) -> int:
    """Issue the query over the wire; verify from fetched material."""
    from .net import QueryClient
    with QueryClient(args.connect) as client:
        response, verified = client.verified_query(
            args.sql, tenant=args.tenant)
    _print_verified_query(args, response, verified)
    return 0


def _print_verified_query(args, response, verified) -> None:
    print(f"query: {args.sql}")
    for label, value in zip(verified.labels, verified.values):
        print(f"  {label} = {value}")
    for key, values in verified.groups:
        print(f"  [{key}] "
              + ", ".join(f"{label}={value}" for label, value
                          in zip(verified.labels, values)))
    print(f"  matched {verified.matched}/{verified.scanned} flows; "
          f"round {verified.round}, root {verified.root.short()}…")
    if args.out is not None:
        args.out.write_bytes(response.receipt.to_json_bytes())
        print(f"  query receipt -> {args.out}")


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .net import ProverServer
    if args.metrics:
        from .obs import runtime as obs_runtime
        obs_runtime.enable()
    prove_nodes = None
    if args.prove_nodes:
        from .cluster import parse_nodes
        prove_nodes = parse_nodes(args.prove_nodes)
    service = rebuild_service(args.db, args.bulletin, args.receipts,
                              auto_checkpoint=args.auto_checkpoint,
                              restore=args.restore,
                              pool_backend=args.pool_backend,
                              prove_workers=args.prove_workers,
                              prove_nodes=prove_nodes,
                              query_partitions=args.query_partitions,
                              stream=args.stream or None,
                              stream_crossover=args.stream_crossover)
    qserve = None
    if args.max_inflight is not None or args.tenant_rate is not None \
            or args.qserve_batch:
        from .qserve import QueryService
        qserve = QueryService(
            service,
            max_inflight=(args.max_inflight
                          if args.max_inflight is not None else 64),
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            batch_window=args.batch_window,
            batch=args.qserve_batch or None)
    server = ProverServer(
        service, host=args.host, port=args.port,
        qserve=qserve,
        request_timeout=args.request_timeout,
        idle_timeout=args.idle_timeout)

    async def run() -> None:
        await server.start()
        print(f"prover server listening on {server.host}:"
              f"{server.port} ({len(service.chain)} rounds restored, "
              f"{len(service.bulletin)} commitments"
              + (", metrics on" if args.metrics else "") + ")",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.close()
        service.store.close()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    """Run a proving worker daemon for a remote-backend pool.

    Workers are untrusted by construction — the dispatcher re-verifies
    every receipt before adoption — so they need no bulletin, no chain
    state, and no shared filesystem.  An optional ``--db`` points at a
    store whose checkpoint KV becomes a persistent receipt-cache tier
    shared between restarts (and, if several workers point at the same
    file, between workers).
    """
    import asyncio

    from .cluster import WorkerServer
    from .faults import FaultInjector
    if args.metrics:
        from .obs import runtime as obs_runtime
        obs_runtime.enable()
    store = None
    if args.db is not None:
        store = SqliteLogStore(str(args.db))
    server = WorkerServer(
        args.host, args.port,
        backend=args.backend,
        max_workers=args.workers,
        store=store,
        injector=FaultInjector.from_env(),
        idle_timeout=args.idle_timeout)

    async def run() -> None:
        await server.start()
        print(f"worker listening on {server.host}:{server.port} "
              f"(backend={args.backend}"
              + (", persistent cache" if store is not None else "")
              + (", metrics on" if args.metrics else "") + ")",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if store is not None:
            store.close()
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Dump an observability snapshot as JSON.

    With ``--connect``, fetches the snapshot from a running
    ``repro serve --metrics`` instance; otherwise dumps this process's
    own (usually empty unless ``REPRO_OBS`` is set).
    """
    from .obs import runtime as obs_runtime
    if args.connect is not None:
        from .net import ServiceClient
        with ServiceClient(args.connect) as client:
            snapshot = client.fetch_metrics()
    else:
        snapshot = obs_runtime.metrics_snapshot()
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
        print(f"metrics snapshot -> {args.out}")
    else:
        print(text)
    if not snapshot.get("enabled", False):
        print("note: observability is disabled on the target; start "
              "it with `repro serve --metrics` (or REPRO_OBS=1)",
              file=sys.stderr)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    bulletin = load_bulletin(args.bulletin)
    receipts = load_receipts(args.receipts)
    verifier = VerifierClient(bulletin)
    try:
        verified = verifier.verify_chain(receipts)
    except ReproError as exc:
        print(f"VERIFICATION FAILED: {exc}")
        return 1
    for link in verified:
        print(f"round {link.round}: OK — {link.entries} records over "
              f"windows {sorted(set(link.windows))}, root "
              f"{link.new_root.short()}…")
    print(f"chain of {len(verified)} rounds verified")
    return 0


def cmd_bundle(args: argparse.Namespace) -> int:
    from .core.audit import AuditBundle
    service = rebuild_service(args.db, args.bulletin, args.receipts)
    responses = []
    for sql in args.query or []:
        responses.append(service.answer_query(sql))
    bundle = AuditBundle.from_service(
        service, responses,
        metadata={"tool": "repro-cli", "queries": args.query or []})
    args.out.write_bytes(bundle.to_json_bytes())
    print(f"audit bundle: {len(bundle.chain)} rounds, "
          f"{len(bundle.commitments)} commitments, "
          f"{len(bundle.query_receipts)} query receipts -> {args.out}")
    service.store.close()
    return 0


def cmd_verify_bundle(args: argparse.Namespace) -> int:
    from .core.audit import AuditBundle, verify_bundle
    try:
        bundle = AuditBundle.from_json_bytes(args.bundle.read_bytes())
        report = verify_bundle(bundle)
    except ReproError as exc:
        print(f"BUNDLE VERIFICATION FAILED: {exc}")
        return 1
    print(report.summary())
    return 0


def cmd_verify_query(args: argparse.Namespace) -> int:
    bulletin = load_bulletin(args.bulletin)
    receipts = load_receipts(args.receipts)
    query_receipt = Receipt.from_json_bytes(
        args.query_receipt.read_bytes())
    verifier = VerifierClient(bulletin)
    try:
        chain = verifier.verify_chain(receipts)
        journal = query_receipt.journal.decode_one()
        # Reconstruct the response the provider shipped.
        from .core.query_proof import QueryResponse
        response = QueryResponse(
            sql=journal["query"],
            labels=tuple(journal["labels"]),
            values=tuple(journal["values"]),
            matched=journal["matched"],
            scanned=journal["scanned"],
            round=journal["round"],
            root=journal["root"],
            receipt=query_receipt,
            group_by=journal.get("group_by"),
            groups=tuple((key, tuple(values)) for key, values in
                         journal.get("groups", [])),
        )
        verified = verifier.verify_query(response,
                                         chain[journal["round"]])
    except (ReproError, IndexError, KeyError) as exc:
        print(f"QUERY VERIFICATION FAILED: {exc}")
        return 1
    print(f"query: {verified.sql}")
    for label, value in zip(verified.labels, verified.values):
        print(f"  {label} = {value}")
    for key, values in verified.groups:
        print(f"  [{key}] "
              + ", ".join(f"{label}={value}" for label, value
                          in zip(verified.labels, values)))
    print(f"  VERIFIED against round {verified.round} "
          f"(root {verified.root.short()}…)")
    return 0


def cmd_tamper(args: argparse.Namespace) -> int:
    from .core import tamper as tamper_mod
    store = SqliteLogStore(str(args.db))
    actions = {
        "modify-field": lambda: tamper_mod.modify_record_field(
            store, args.router, args.window, args.seq,
            packets=987_654_321),
        "corrupt-bytes": lambda: tamper_mod.corrupt_record_bytes(
            store, args.router, args.window, args.seq),
        "truncate": lambda: tamper_mod.truncate_window(
            store, args.router, args.window, keep=1),
        "reorder": lambda: tamper_mod.reorder_window(
            store, args.router, args.window),
    }
    actions[args.kind]()
    store.close()
    print(f"tampered ({args.kind}) router {args.router} window "
          f"{args.window}; subsequent aggregation of that window will "
          "fail")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    store = SqliteLogStore(str(args.db))
    total = 0
    for router_id in store.router_ids():
        windows = store.window_indices(router_id)
        counts = [store.window_count(router_id, w) for w in windows]
        total += sum(counts)
        print(f"{router_id}: windows {windows} "
              f"({sum(counts)} records)")
    print(f"total: {total} records")
    store.close()
    return 0


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def _add_db(parser: argparse.ArgumentParser,
            required: bool = True) -> None:
    parser.add_argument("--db", type=pathlib.Path, required=required,
                        help="sqlite log store path")


def _add_bulletin(parser: argparse.ArgumentParser,
                  required: bool = True) -> None:
    parser.add_argument("--bulletin", type=pathlib.Path,
                        required=required,
                        help="bulletin-board JSON path")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="verifiable network telemetry (HotNets '25 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="generate + commit telemetry")
    _add_db(p)
    _add_bulletin(p)
    p.add_argument("--records", type=int, default=400)
    p.add_argument("--routers", type=int, default=4)
    p.add_argument("--window-ms", type=int, default=5_000)
    p.add_argument("--flows-per-tick", type=int, default=10)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("aggregate", help="prove aggregation rounds")
    _add_db(p)
    _add_bulletin(p)
    p.add_argument("--receipts", type=pathlib.Path, required=True,
                   help="directory for round receipts")
    p.add_argument("--strategy", choices=["update", "rebuild"],
                   default="update")
    p.set_defaults(fn=cmd_aggregate)

    p = sub.add_parser("query", help="prove + verify a SQL query")
    _add_db(p, required=False)
    _add_bulletin(p, required=False)
    p.add_argument("--receipts", type=pathlib.Path, default=None)
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="query a running `repro serve` instance "
                        "instead of local files")
    p.add_argument("--out", type=pathlib.Path, default=None,
                   help="write the query receipt JSON here")
    p.add_argument("--tenant", default=None,
                   help="tenant id sent with --connect queries; "
                        "servers running the multi-tenant query "
                        "service rate-limit and fair-queue per tenant")
    p.add_argument("--query-partitions", type=int, default=None,
                   metavar="K",
                   help="split the query proof into up to K "
                        "slot-range partitions proven in parallel "
                        "(REPRO_QUERY_PARTITIONS tunes an "
                        "engine-backed service the same way)")
    p.add_argument("sql", help="e.g. 'SELECT COUNT(*) FROM clogs'")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("serve",
                       help="serve the prover over TCP (repro.net)")
    _add_db(p)
    _add_bulletin(p)
    p.add_argument("--receipts", type=pathlib.Path, default=None,
                   help="replay recorded rounds from this directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7423,
                   help="TCP port (0 picks an ephemeral one)")
    p.add_argument("--request-timeout", type=float, default=60.0)
    p.add_argument("--idle-timeout", type=float, default=30.0)
    p.add_argument("--metrics", action="store_true",
                   help="enable the repro.obs registry/tracer; the "
                        "`metrics` wire endpoint then serves live "
                        "counters")
    p.add_argument("--auto-checkpoint", action="store_true",
                   help="write a verified checkpoint into the store "
                        "after every proven round")
    p.add_argument("--restore", action="store_true",
                   help="resume from the store's latest checkpoint "
                        "(verified before acceptance) instead of "
                        "replaying receipts")
    p.add_argument("--prove-workers", type=int, default=None,
                   metavar="N",
                   help="prove through the repro.engine pool with N "
                        "workers (process backend unless "
                        "--pool-backend says otherwise); receipts are "
                        "reused via the content-addressed cache")
    p.add_argument("--pool-backend", default=None,
                   choices=["serial", "thread", "process", "remote"],
                   help="proving pool backend (implies the engine even "
                        "without --prove-workers)")
    p.add_argument("--prove-nodes", default=None,
                   metavar="HOST:PORT,HOST:PORT",
                   help="dispatch proving to these `repro worker` "
                        "daemons (implies --pool-backend=remote; "
                        "REPRO_PROVE_NODES does the same)")
    p.add_argument("--query-partitions", type=int, default=None,
                   metavar="K",
                   help="answer queries as up to K partial proofs "
                        "merged through the engine when the planner "
                        "models that faster (implies the engine)")
    p.add_argument("--stream", action="store_true",
                   help="streaming composition: prove per-batch deltas "
                        "as windows commit and fold them recursively, "
                        "so each round boundary pays O(delta) instead "
                        "of O(window) (implies the engine; REPRO_STREAM"
                        "=1 does the same on an engine-backed service)")
    p.add_argument("--max-inflight", type=int, default=None,
                   help="enable the multi-tenant query service with a "
                        "bounded admission queue of this many "
                        "in-flight queries (typed admission-rejected "
                        "errors past the bound)")
    p.add_argument("--tenant-rate", type=float, default=None,
                   help="per-tenant query admission rate (tokens/sec; "
                        "implies the multi-tenant query service)")
    p.add_argument("--tenant-burst", type=float, default=None,
                   help="per-tenant token-bucket burst capacity "
                        "(default: one second of --tenant-rate)")
    p.add_argument("--batch-window", type=float, default=0.005,
                   help="seconds the query service waits to batch "
                        "compatible queries into one shared scan")
    p.add_argument("--qserve-batch", action="store_true",
                   help="batch compatible queries through the proving "
                        "engine (also via REPRO_QSERVE_BATCH=1; "
                        "needs an engine, e.g. --query-partitions)")
    p.add_argument("--stream-crossover", action="store_true",
                   help="with --stream, let the planner's cost model "
                        "fall back to the monolithic guest for rounds "
                        "it prices cheaper (tiny or single-batch "
                        "rounds)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("worker",
                       help="run a proving worker daemon "
                            "(repro.cluster)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 picks an ephemeral one; the bound "
                        "port is printed on startup)")
    p.add_argument("--backend", default="thread",
                   choices=["serial", "thread", "process"],
                   help="the worker's local proving pool backend")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="local pool width (default: backend default)")
    p.add_argument("--db", type=pathlib.Path, default=None,
                   help="optional store whose checkpoint KV backs a "
                        "persistent receipt-cache tier")
    p.add_argument("--idle-timeout", type=float, default=30.0)
    p.add_argument("--metrics", action="store_true",
                   help="enable the repro.obs registry "
                        "(repro_cluster_worker_* counters)")
    p.set_defaults(fn=cmd_worker)

    p = sub.add_parser("metrics",
                       help="dump an observability snapshot (JSON)")
    p.add_argument("--connect", metavar="HOST:PORT", default=None,
                   help="fetch from a running `repro serve --metrics` "
                        "instance")
    p.add_argument("--out", type=pathlib.Path, default=None,
                   help="write the snapshot here instead of stdout")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("verify", help="client-side chain verification")
    _add_bulletin(p)
    p.add_argument("--receipts", type=pathlib.Path, required=True)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("bundle", help="export a portable audit bundle")
    _add_db(p)
    _add_bulletin(p)
    p.add_argument("--receipts", type=pathlib.Path, required=True)
    p.add_argument("--out", type=pathlib.Path, required=True)
    p.add_argument("--query", action="append",
                   help="include a proven query (repeatable)")
    p.set_defaults(fn=cmd_bundle)

    p = sub.add_parser("verify-bundle",
                       help="standalone audit-bundle verification")
    p.add_argument("--bundle", type=pathlib.Path, required=True)
    p.set_defaults(fn=cmd_verify_bundle)

    p = sub.add_parser("verify-query",
                       help="client-side query-receipt verification")
    _add_bulletin(p)
    p.add_argument("--receipts", type=pathlib.Path, required=True)
    p.add_argument("--query-receipt", type=pathlib.Path, required=True)
    p.set_defaults(fn=cmd_verify_query)

    p = sub.add_parser("tamper", help="inject post-commitment tampering")
    _add_db(p)
    p.add_argument("--router", required=True)
    p.add_argument("--window", type=int, required=True)
    p.add_argument("--seq", type=int, default=0)
    p.add_argument("--kind", default="modify-field",
                   choices=["modify-field", "corrupt-bytes",
                            "truncate", "reorder"])
    p.set_defaults(fn=cmd_tamper)

    p = sub.add_parser("info", help="inspect the log store")
    _add_db(p)
    p.set_defaults(fn=cmd_info)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
