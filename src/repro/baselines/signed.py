"""Signed-log baseline: integrity without confidentiality.

The obvious alternative to both TEEs and ZKPs is for routers to sign
their log windows.  That gives tamper evidence (like our hash
commitments) but *no confidentiality*: a verifier auditing a metric must
receive the raw logs to recompute it, which is precisely the disclosure
the paper's operators refuse (C2).  The class quantifies this: the bytes
a verifier must see under signatures versus under ZK proofs.

Signatures are simulated with HMAC-SHA256 (router-held keys, verifier
holds the corresponding verification secret via a trusted registry) —
the trust and disclosure structure, not the asymmetric crypto, is what
the comparison is about.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from ..errors import IntegrityError
from ..netflow.records import NetFlowRecord


@dataclass(frozen=True)
class SignedWindow:
    """One signed window: the raw blobs plus a signature over them."""

    router_id: str
    window_index: int
    blobs: tuple[bytes, ...]
    signature: bytes

    @property
    def disclosed_bytes(self) -> int:
        """Raw log bytes the verifier must receive (the C2 cost)."""
        return sum(len(blob) for blob in self.blobs)


class SignedLogBaseline:
    """Per-router signing keys + window sign/verify."""

    def __init__(self) -> None:
        self._keys: dict[str, bytes] = {}

    def register_router(self, router_id: str) -> None:
        if router_id not in self._keys:
            self._keys[router_id] = hashlib.sha256(
                b"router-signing-key:" + router_id.encode()).digest()

    def sign_window(self, router_id: str, window_index: int,
                    records: list[NetFlowRecord]) -> SignedWindow:
        self.register_router(router_id)
        blobs = tuple(record.to_bytes() for record in records)
        return SignedWindow(
            router_id=router_id,
            window_index=window_index,
            blobs=blobs,
            signature=self._mac(router_id, window_index, blobs),
        )

    def verify_window(self, window: SignedWindow) -> list[NetFlowRecord]:
        """Verify and return the records — note the verifier now *has*
        every raw record, unlike the ZKP path."""
        if window.router_id not in self._keys:
            raise IntegrityError(
                f"unknown router {window.router_id!r}")
        expected = self._mac(window.router_id, window.window_index,
                             window.blobs)
        if not hmac.compare_digest(window.signature, expected):
            raise IntegrityError(
                f"signature invalid for ({window.router_id!r}, "
                f"{window.window_index})")
        from ..serialization import decode
        return [NetFlowRecord.from_wire(decode(blob))
                for blob in window.blobs]

    def _mac(self, router_id: str, window_index: int,
             blobs: tuple[bytes, ...]) -> bytes:
        mac = hmac.new(self._keys[router_id], digestmod=hashlib.sha256)
        mac.update(window_index.to_bytes(8, "big"))
        for blob in blobs:
            mac.update(len(blob).to_bytes(8, "big"))
            mac.update(blob)
        return mac.digest()
