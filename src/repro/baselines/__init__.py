"""Baseline comparators for the paper's motivation (§1, §2).

The paper argues against the prior TEE-based approach (TrustSketch-style
enclaves on every vantage point) on *deployment complexity* and
*scalability* grounds, and against naive signed logs on
*confidentiality* grounds.  These models make that comparison concrete:

* :mod:`~repro.baselines.tee` — an SGX-style enclave telemetry model:
  per-vantage hardware requirement, attestation, EPC paging behaviour;
* :mod:`~repro.baselines.signed` — plain per-window signatures:
  integrity without confidentiality (the verifier must see raw logs);
* :mod:`~repro.baselines.comparison` — the deployment/scalability
  comparison harness behind ``benchmarks/bench_baseline_tee.py``.
"""

from .comparison import ApproachProfile, compare_approaches
from .signed import SignedLogBaseline, SignedWindow
from .tee import EnclaveSpec, TEETelemetryModel

__all__ = [
    "ApproachProfile",
    "EnclaveSpec",
    "SignedLogBaseline",
    "SignedWindow",
    "TEETelemetryModel",
    "compare_approaches",
]
