"""Deployment & scalability comparison: ZKP vs TEE vs signed logs.

Quantifies the paper's §1 argument: TEE telemetry "requires deploying
TEEs on every vantage point ... which may be infeasible in large or
heterogeneous environments", while the ZKP design needs no in-network
hardware and moves all heavy computation off-path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..zkvm.costmodel import CostModel, ProverBackend, VERIFY_SECONDS
from .tee import EnclaveSpec


@dataclass(frozen=True)
class ApproachProfile:
    """One row of the comparison table."""

    name: str
    in_network_hardware_units: int
    offpath_compute_units: int
    verifier_bytes_disclosed: int
    verify_seconds: float
    integrity: bool
    confidentiality: bool
    notes: str


def compare_approaches(num_vantage_points: int,
                       raw_bytes_per_window: int,
                       journal_bytes: int,
                       agg_prove_stats=None,
                       cost_model: CostModel | None = None,
                       enclave: EnclaveSpec | None = None
                       ) -> list[ApproachProfile]:
    """Build the comparison table for a deployment of a given scale.

    ``raw_bytes_per_window`` is the total committed raw-log volume;
    ``journal_bytes`` what the ZKP path actually discloses.
    """
    enclave = enclave or EnclaveSpec()
    model = cost_model or CostModel()
    zkp_verify = VERIFY_SECONDS
    zkp_notes = "no special hardware; proving off-path"
    if agg_prove_stats is not None:
        minutes = model.prove_seconds(agg_prove_stats,
                                      ProverBackend.CPU_ZKVM) / 60.0
        zkp_notes += f"; aggregation proof ≈ {minutes:.0f} min (offline)"
    return [
        ApproachProfile(
            name="zkp (this work)",
            in_network_hardware_units=0,
            offpath_compute_units=1,
            verifier_bytes_disclosed=journal_bytes,
            verify_seconds=zkp_verify,
            integrity=True,
            confidentiality=True,
            notes=zkp_notes,
        ),
        ApproachProfile(
            name="tee (TrustSketch-style)",
            in_network_hardware_units=num_vantage_points,
            offpath_compute_units=0,
            verifier_bytes_disclosed=0,
            verify_seconds=num_vantage_points
            * enclave.attestation_latency_ms / 1000.0,
            integrity=True,
            confidentiality=True,
            notes="SGX at every vantage point; attestation per window; "
                  "EPC-limited throughput",
        ),
        ApproachProfile(
            name="signed logs",
            in_network_hardware_units=0,
            offpath_compute_units=0,
            verifier_bytes_disclosed=raw_bytes_per_window,
            verify_seconds=raw_bytes_per_window / 500e6,  # hash at 500MB/s
            integrity=True,
            confidentiality=False,
            notes="verifier receives and recomputes over raw logs",
        ),
    ]
