"""TEE (Intel SGX-style) telemetry baseline model.

Models the prior approach the paper positions against (TrustSketch [8]):
telemetry algorithms execute inside enclaves at *every* vantage point,
giving integrity and confidentiality at capture time — at the price of
special-purpose hardware everywhere, remote-attestation infrastructure,
and the well-known SGX scalability cliffs (EPC paging, enclave
transition overhead).

The model is analytic + simulated: :class:`TEETelemetryModel` runs real
record streams through a simulated enclave (producing attested state
digests), while the cost functions quantify deployment and throughput
for the comparison benchmark.
"""

from __future__ import annotations

import hmac
import hashlib
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError, IntegrityError
from ..hashing import Digest, hash_many
from ..netflow.records import NetFlowRecord


@dataclass(frozen=True)
class EnclaveSpec:
    """SGX-like enclave parameters (defaults ≈ SGX1 client parts)."""

    epc_usable_mb: float = 93.0          # usable EPC after metadata
    paging_slowdown: float = 30.0        # throughput hit beyond EPC
    transition_overhead_us: float = 8.0  # ecall/ocall round trip
    attestation_latency_ms: float = 150.0
    record_bytes_in_enclave: int = 256   # working-set per record
    base_throughput_rps: float = 500_000.0

    def __post_init__(self) -> None:
        if self.epc_usable_mb <= 0:
            raise ConfigurationError("epc_usable_mb must be positive")

    def working_set_limit_records(self) -> int:
        """How many in-flight records fit in EPC before paging."""
        return int(self.epc_usable_mb * 1024 * 1024
                   / self.record_bytes_in_enclave)

    def throughput_rps(self, resident_records: int) -> float:
        """Modeled records/second at a given enclave working set."""
        per_record_s = 1.0 / self.base_throughput_rps \
            + self.transition_overhead_us / 1e6
        if resident_records > self.working_set_limit_records():
            per_record_s *= self.paging_slowdown
        return 1.0 / per_record_s


@dataclass(frozen=True)
class AttestationReport:
    """A simulated SGX quote: measurement + report data + MAC."""

    enclave_measurement: Digest
    report_data: Digest
    mac: bytes

    def verify(self, expected_measurement: Digest,
               platform_key: bytes) -> None:
        if self.enclave_measurement != expected_measurement:
            raise IntegrityError("attestation measurement mismatch")
        expected = _quote_mac(platform_key, self.enclave_measurement,
                              self.report_data)
        if not hmac.compare_digest(self.mac, expected):
            raise IntegrityError("attestation MAC invalid")


def _quote_mac(platform_key: bytes, measurement: Digest,
               report_data: Digest) -> bytes:
    return hmac.new(platform_key, measurement.raw + report_data.raw,
                    hashlib.sha256).digest()


# The "enclave binary" measurement — digest of the telemetry logic.
_TELEMETRY_MEASUREMENT = hash_many(
    "repro/tee/measurement", [b"tee-telemetry-enclave-v1"])


@dataclass
class TEETelemetryModel:
    """One TEE vantage point: simulated enclave + attestation.

    The enclave folds records into a running state digest; ``attest``
    emits a quote over that digest.  Verification requires trusting the
    platform key (the hardware root of trust the paper wants to avoid).
    """

    spec: EnclaveSpec = field(default_factory=EnclaveSpec)
    platform_key: bytes = b"sgx-platform-root-of-trust"

    def __post_init__(self) -> None:
        self._state = hash_many("repro/tee/state", [b"init"])
        self._record_count = 0

    @property
    def measurement(self) -> Digest:
        return _TELEMETRY_MEASUREMENT

    @property
    def record_count(self) -> int:
        return self._record_count

    def ingest(self, record: NetFlowRecord) -> None:
        """Fold one record into the enclave state (in-enclave hash)."""
        self._state = hash_many("repro/tee/state",
                                [self._state.raw, record.to_bytes()])
        self._record_count += 1

    def attest(self) -> AttestationReport:
        """Produce a quote binding the current telemetry state."""
        return AttestationReport(
            enclave_measurement=self.measurement,
            report_data=self._state,
            mac=_quote_mac(self.platform_key, self.measurement,
                           self._state),
        )

    # -- deployment cost model ------------------------------------------------

    def processing_seconds(self, num_records: int,
                           resident_records: int | None = None) -> float:
        resident = resident_records if resident_records is not None \
            else num_records
        return num_records / self.spec.throughput_rps(resident)

    def deployment_requirements(self,
                                num_vantage_points: int) -> dict[str, Any]:
        """What rolling TEE telemetry out to N vantage points takes."""
        return {
            "sgx_machines_required": num_vantage_points,
            "attestation_rounds_per_window": num_vantage_points,
            "attestation_latency_s":
                num_vantage_points
                * self.spec.attestation_latency_ms / 1000.0,
            "trust_anchors": ["Intel attestation service",
                              "per-machine platform keys"],
            "in_network_hardware": True,
        }
