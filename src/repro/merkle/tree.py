"""Updatable binary Merkle tree over leaf digests.

The tree is padded to a power-of-two capacity with precomputed
empty-subtree digests, so single-leaf updates recompute exactly ``depth``
internal hashes — the access pattern the paper profiles ("the majority of
this overhead stems from Merkle tree updates performed within the zkVM",
§6; ≈35,000 hashes for 3,000 entries at depth 11, §7).

Levels are stored densely: ``_levels[0]`` is the leaf level (digests of
occupied slots only; padding is implicit), ``_levels[depth]`` is the root.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import MerkleError
from ..hashing import Digest
from .hasher import MerkleHasher, default_hasher
from .proof import InclusionProof, MultiProof, SubtreeProof

_MAX_DEPTH = 48


def _empty_roots(hasher: MerkleHasher) -> list[Digest]:
    """Digest of the all-empty subtree at each height.

    Memoised by the hasher's ``algorithm`` name (not identity), so e.g. a
    cycle-metered guest hasher producing the same digests shares the
    host's precomputed table — empty-subtree roots are compile-time
    constants in a real guest and cost no in-VM hashing.
    """
    key = getattr(hasher, "algorithm", None)
    cache = _EMPTY_CACHE.get(key) if key is not None else None
    if cache is None:
        empty = hasher.empty()
        cache = [empty]
        for _ in range(_MAX_DEPTH):
            empty = hasher.node(empty, empty)
            cache.append(empty)
        if key is not None:
            _EMPTY_CACHE[key] = cache
    return cache


_EMPTY_CACHE: dict[str, list[Digest]] = {}

# Convenience: empty-subtree digests for the default hasher.
EMPTY_ROOTS: list[Digest] = _empty_roots(default_hasher())


class MerkleTree:
    """A power-of-two padded, updatable Merkle tree.

    Parameters
    ----------
    leaves:
        Initial leaf digests (already hashed with ``hasher.leaf``).
    hasher:
        Hash strategy; defaults to host-side tagged SHA-256.  Guests pass
        a cycle-metered hasher so in-VM Merkle work is charged correctly.
    """

    def __init__(self, leaves: Iterable[Digest] = (),
                 hasher: MerkleHasher | None = None) -> None:
        self._hasher = hasher or default_hasher()
        self._empty = _empty_roots(self._hasher)
        self._leaves: list[Digest] = list(leaves)
        self._levels: list[list[Digest]] = []
        self._rebuild()

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_payloads(cls, payloads: Iterable[bytes],
                      hasher: MerkleHasher | None = None) -> "MerkleTree":
        """Build a tree by leaf-hashing raw payload bytes."""
        h = hasher or default_hasher()
        return cls((h.leaf(p) for p in payloads), hasher=h)

    # -- inspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of occupied leaves."""
        return len(self._leaves)

    @property
    def depth(self) -> int:
        """Height of the padded tree (0 for an empty/singleton tree)."""
        return len(self._levels) - 1

    @property
    def root(self) -> Digest:
        return self._levels[-1][0] if self._levels[-1] else self._empty[0]

    def leaf(self, index: int) -> Digest:
        self._check_index(index)
        return self._leaves[index]

    def leaves(self) -> Sequence[Digest]:
        return tuple(self._leaves)

    # -- mutation -----------------------------------------------------------

    def append(self, leaf: Digest) -> int:
        """Append a leaf, growing the padded capacity if needed.

        Returns the index of the new leaf.
        """
        index = len(self._leaves)
        self._leaves.append(leaf)
        if index < self._capacity():
            self._levels[0].append(leaf)
            self._update_path(index)
        else:
            self._rebuild()
        return index

    def update(self, index: int, leaf: Digest) -> None:
        """Replace the leaf at ``index``, recomputing its path to the root.

        Costs exactly ``depth`` node hashes — the per-entry update cost the
        paper attributes the zkVM overhead to.
        """
        self._check_index(index)
        self._leaves[index] = leaf
        self._levels[0][index] = leaf
        self._update_path(index)

    def extend(self, leaves: Iterable[Digest]) -> None:
        for leaf in leaves:
            self.append(leaf)

    # -- proofs --------------------------------------------------------------

    def prove(self, index: int) -> InclusionProof:
        """Produce an inclusion proof for the leaf at ``index``."""
        self._check_index(index)
        siblings: list[Digest] = []
        pos = index
        for height in range(self.depth):
            level = self._levels[height]
            sibling_pos = pos ^ 1
            if sibling_pos < len(level):
                siblings.append(level[sibling_pos])
            else:
                siblings.append(self._empty[height])
            pos >>= 1
        return InclusionProof(leaf_index=index, leaf=self._leaves[index],
                              siblings=tuple(siblings),
                              tree_size=len(self._leaves))

    def prove_vacant(self, index: int) -> InclusionProof:
        """Prove that the *next* slot (``index == size``) is empty.

        Verified inserts need this: the updater shows the target slot
        currently holds the empty-leaf digest, then recomputes the root
        with the new leaf along the same sibling path.  Only the
        append position is provable (that is the only slot an insert may
        legally target), and the padded capacity must accommodate it —
        grow the tree first otherwise (see the aggregation witness).
        """
        if index != len(self._leaves):
            raise MerkleError(
                f"vacant proofs only cover the append slot "
                f"{len(self._leaves)}, not {index}")
        if self._levels and index >= (1 << self.depth) and index > 0:
            raise MerkleError(
                f"slot {index} exceeds padded capacity {1 << self.depth}; "
                "grow the tree first")
        siblings: list[Digest] = []
        pos = index
        for height in range(self.depth):
            level = self._levels[height]
            sibling_pos = pos ^ 1
            if sibling_pos < len(level):
                siblings.append(level[sibling_pos])
            else:
                siblings.append(self._empty[height])
            pos >>= 1
        return InclusionProof(leaf_index=index, leaf=self._empty[0],
                              siblings=tuple(siblings),
                              tree_size=index + 1)

    def node_at(self, level: int, pos: int) -> Digest:
        """The subtree root at (level, pos); the subtree must be fully
        occupied (used by consistency proofs over aligned blocks)."""
        if not 0 <= level <= self.depth:
            raise MerkleError(f"level {level} out of range")
        end_leaf = (pos + 1) << level
        if end_leaf > len(self._leaves):
            raise MerkleError(
                f"subtree ({level}, {pos}) is not fully occupied")
        return self._levels[level][pos]

    def prove_subtree(self, level: int, pos: int) -> SubtreeProof:
        """Prove the node at ``(level, pos)`` against the root.

        The node covers the aligned leaf block
        ``[pos << level, (pos + 1) << level)``.  Unlike :meth:`node_at`
        the block need not be fully occupied — only non-empty — because
        siblings follow the same right-padding rule as leaf proofs: a
        verifier that rebuilds the block's node from its occupied
        leaves (padding with empty-subtree roots) folds it to exactly
        this tree's root.  Partitioned query proving uses one such
        proof per slot-range partition.
        """
        if not 0 <= level <= self.depth:
            raise MerkleError(f"level {level} out of range")
        if not 0 <= pos < len(self._levels[level]):
            raise MerkleError(
                f"subtree ({level}, {pos}) holds no occupied leaves")
        siblings: list[Digest] = []
        node_pos = pos
        for height in range(level, self.depth):
            nodes = self._levels[height]
            sibling_pos = node_pos ^ 1
            if sibling_pos < len(nodes):
                siblings.append(nodes[sibling_pos])
            else:
                siblings.append(self._empty[height])
            node_pos >>= 1
        return SubtreeProof(level=level, index=pos,
                            siblings=tuple(siblings),
                            tree_size=len(self._leaves))

    def prove_consistency(self, old_size: int):
        """Prove this tree extends its own earlier ``old_size``-leaf
        checkpoint (see :mod:`repro.merkle.consistency`)."""
        from .consistency import prove_consistency
        return prove_consistency(self, old_size)

    def prove_many(self, indices: Sequence[int]) -> MultiProof:
        """Produce a batch proof for several leaves (deduplicated paths)."""
        for index in indices:
            self._check_index(index)
        proofs = tuple(self.prove(i) for i in sorted(set(indices)))
        return MultiProof(proofs=proofs, root=self.root)

    # -- internals -------------------------------------------------------------

    def _capacity(self) -> int:
        return 1 << self.depth if self._levels else 0

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._leaves):
            raise MerkleError(
                f"leaf index {index} out of range (size {len(self._leaves)})"
            )

    def _required_depth(self, size: int) -> int:
        depth = 0
        while (1 << depth) < size:
            depth += 1
        return depth

    def _rebuild(self) -> None:
        depth = self._required_depth(max(len(self._leaves), 1))
        self._levels = [list(self._leaves)]
        for height in range(depth):
            below = self._levels[height]
            above: list[Digest] = []
            for i in range(0, len(below), 2):
                left = below[i]
                right = below[i + 1] if i + 1 < len(below) \
                    else self._empty[height]
                above.append(self._hasher.node(left, right))
            self._levels.append(above)

    def _update_path(self, index: int) -> None:
        pos = index
        for height in range(self.depth):
            level = self._levels[height]
            above = self._levels[height + 1]
            pair = pos & ~1
            left = level[pair]
            right = level[pair + 1] if pair + 1 < len(level) \
                else self._empty[height]
            parent = self._hasher.node(left, right)
            parent_pos = pos >> 1
            if parent_pos < len(above):
                above[parent_pos] = parent
            else:
                above.append(parent)
            pos = parent_pos
