"""Content-keyed memo cache for Merkle subtree digests.

Aggregation rebuilds the CLog tree every round, but most subtrees are
unchanged between rounds — only the slots touched by new records move.
Because a tagged Merkle digest is a pure function of its content
(``leaf(data)`` of the payload bytes, ``node(l, r)`` of the two child
digests), a process-global cache keyed by that content lets
:mod:`repro.merkle.tree` and :mod:`repro.core.rebuild` skip the SHA-256
work for every subtree that was already hashed in a previous round.

Correctness is structural: a cache hit returns the digest of exactly the
bytes that would have been hashed, so roots, proofs, and journals are
bit-identical with the cache on or off (property-tested in
``tests/property/test_hotpath_props.py``).  The *metered* guest hasher
still charges the cycle meter on every call — the cache saves host CPU,
never modeled guest cycles.

The cache is a bounded LRU so long-running daemons (serve/worker) cannot
grow it without limit; eviction only costs a re-hash later.
"""

from __future__ import annotations

from collections import OrderedDict

from .. import hotpath
from ..hashing import TAG_LEAF, TAG_NODE, Digest, tagged_hash


class DigestMemo:
    """Bounded LRU map from content bytes to :class:`Digest`."""

    __slots__ = ("_entries", "_capacity", "hits", "misses")

    def __init__(self, capacity: int = 1 << 18) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._entries: OrderedDict[bytes, Digest] = OrderedDict()
        self._capacity = capacity
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, key: bytes) -> Digest | None:
        digest = self._entries.get(key)
        if digest is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return digest

    def put(self, key: bytes, digest: Digest) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return
        entries[key] = digest
        if len(entries) > self._capacity:
            entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


# Process-global caches shared by every tree rebuild in this process.
# Node keys are the 64-byte child-digest concatenation; leaf keys are the
# raw payload bytes (CLog wire entries are small and repeat across
# rounds for unchanged flows).
_NODE_MEMO = DigestMemo()
_LEAF_MEMO = DigestMemo()


def node_digest(left: Digest, right: Digest) -> Digest:
    """``tagged_hash(TAG_NODE, left || right)`` with cross-round memo."""
    key = left.raw + right.raw
    if not hotpath.enabled():
        return tagged_hash(TAG_NODE, key)
    digest = _NODE_MEMO.get(key)
    if digest is None:
        digest = tagged_hash(TAG_NODE, key)
        _NODE_MEMO.put(key, digest)
    return digest


def leaf_digest(data: bytes) -> Digest:
    """``tagged_hash(TAG_LEAF, data)`` with cross-round memo."""
    if not hotpath.enabled():
        return tagged_hash(TAG_LEAF, data)
    key = bytes(data)
    digest = _LEAF_MEMO.get(key)
    if digest is None:
        digest = tagged_hash(TAG_LEAF, key)
        _LEAF_MEMO.put(key, digest)
    return digest


def clear_memos() -> None:
    """Drop all cached digests (tests and memory-pressure escapes)."""
    _NODE_MEMO.clear()
    _LEAF_MEMO.clear()


def memo_stats() -> dict[str, dict[str, int]]:
    """Hit/miss counters for observability dashboards and tests."""
    return {"node": _NODE_MEMO.stats(), "leaf": _LEAF_MEMO.stats()}
