"""Merkle-tree authenticated data structures (paper §4.1, Figure 2).

The aggregation phase commits the CLog dataset under a Merkle root; queries
and subsequent aggregation rounds authenticate individual entries with
inclusion proofs.  Three building blocks live here:

* :class:`~repro.merkle.tree.MerkleTree` — an updatable binary hash tree
  over leaf digests, padded to a power-of-two capacity.
* :class:`~repro.merkle.proof.InclusionProof` /
  :class:`~repro.merkle.proof.MultiProof` — verifiable (multi-)inclusion
  proofs.
* :class:`~repro.merkle.maptree.MerkleMap` — a keyed authenticated map on
  top of the tree, used for CLogs keyed by flow ID.
"""

from .consistency import ConsistencyProof, verify_consistency
from .hasher import MerkleHasher, TaggedMerkleHasher, default_hasher
from .maptree import MerkleMap
from .memo import DigestMemo, clear_memos, memo_stats
from .proof import (
    InclusionProof,
    MultiProof,
    SubtreeProof,
    verify_inclusion,
)
from .tree import EMPTY_ROOTS, MerkleTree

__all__ = [
    "ConsistencyProof",
    "DigestMemo",
    "EMPTY_ROOTS",
    "InclusionProof",
    "MerkleHasher",
    "MerkleMap",
    "MerkleTree",
    "MultiProof",
    "SubtreeProof",
    "TaggedMerkleHasher",
    "clear_memos",
    "default_hasher",
    "memo_stats",
    "verify_consistency",
    "verify_inclusion",
]
