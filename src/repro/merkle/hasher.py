"""Pluggable hash strategy for Merkle trees.

The same tree logic runs in two worlds: on the host (plain tagged SHA-256)
and inside the zkVM guest, where every compression must be charged to the
cycle meter.  Tree code therefore talks to a :class:`MerkleHasher` rather
than calling :func:`~repro.hashing.tagged_hash` directly; the guest passes
a metered implementation (see :mod:`repro.zkvm.guest`).
"""

from __future__ import annotations

from typing import Protocol

from ..hashing import TAG_EMPTY, Digest, tagged_hash
from . import memo


class MerkleHasher(Protocol):
    """Strategy interface: how to hash leaves, nodes and empty slots."""

    def leaf(self, data: bytes) -> Digest:
        """Hash the bytes of a leaf payload."""
        ...

    def node(self, left: Digest, right: Digest) -> Digest:
        """Hash the concatenation of two child digests."""
        ...

    def empty(self) -> Digest:
        """Digest of an empty (padding) leaf slot."""
        ...


class TaggedMerkleHasher:
    """Default host-side hasher using domain-separated SHA-256."""

    algorithm = "tagged-sha256"

    def leaf(self, data: bytes) -> Digest:
        return memo.leaf_digest(data)

    def node(self, left: Digest, right: Digest) -> Digest:
        return memo.node_digest(left, right)

    def empty(self) -> Digest:
        return _EMPTY_LEAF


_EMPTY_LEAF = tagged_hash(TAG_EMPTY, b"")

_DEFAULT = TaggedMerkleHasher()


def default_hasher() -> TaggedMerkleHasher:
    """The shared host-side hasher instance."""
    return _DEFAULT
