"""Keyed authenticated map on top of :class:`~repro.merkle.tree.MerkleTree`.

The paper's CLog is keyed by flow ID (Algorithm 1, ``FlowID(r_new)``):
existing keys are updated in place (after a Merkle integrity check of the
old entry) and new keys are appended.  :class:`MerkleMap` provides exactly
that interface: a stable key → leaf-slot assignment plus the underlying
tree's proofs, so the per-update cost stays at ``depth`` hashes.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from ..errors import MerkleError
from ..hashing import Digest
from .hasher import MerkleHasher, default_hasher
from .proof import InclusionProof
from .tree import MerkleTree


class MerkleMap:
    """An authenticated ``key -> payload`` map with stable slot indices.

    Keys are arbitrary hashables rendered to bytes by ``key_bytes`` (needed
    only when the key is not already ``bytes``).  Leaf payloads are raw
    bytes; the leaf digest is ``hasher.leaf(key_bytes || payload)`` so a
    proof binds both the key and the value.
    """

    def __init__(self, hasher: MerkleHasher | None = None,
                 key_bytes: Callable[[object], bytes] | None = None) -> None:
        self._hasher = hasher or default_hasher()
        self._key_bytes = key_bytes or _default_key_bytes
        self._tree = MerkleTree(hasher=self._hasher)
        self._index: dict[object, int] = {}
        self._payloads: dict[object, bytes] = {}

    # -- mapping interface ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: object) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[object]:
        return iter(self._index)

    def keys(self) -> Iterator[object]:
        return iter(self._index)

    def items(self) -> Iterator[tuple[object, bytes]]:
        return iter(self._payloads.items())

    def get(self, key: object) -> bytes | None:
        return self._payloads.get(key)

    def payload(self, key: object) -> bytes:
        try:
            return self._payloads[key]
        except KeyError:
            raise MerkleError(f"unknown key {key!r}") from None

    def index_of(self, key: object) -> int:
        try:
            return self._index[key]
        except KeyError:
            raise MerkleError(f"unknown key {key!r}") from None

    # -- mutation ---------------------------------------------------------------

    def set(self, key: object, payload: bytes) -> int:
        """Insert or update ``key``; returns the leaf slot index."""
        leaf = self._leaf_digest(key, payload)
        if key in self._index:
            slot = self._index[key]
            self._tree.update(slot, leaf)
        else:
            slot = self._tree.append(leaf)
            self._index[key] = slot
        self._payloads[key] = payload
        return slot

    def update_many(self, entries: Mapping[object, bytes]) -> None:
        for key, payload in entries.items():
            self.set(key, payload)

    # -- authentication -----------------------------------------------------------

    @property
    def root(self) -> Digest:
        return self._tree.root

    @property
    def depth(self) -> int:
        return self._tree.depth

    @property
    def tree(self) -> MerkleTree:
        return self._tree

    def prove(self, key: object) -> InclusionProof:
        return self._tree.prove(self.index_of(key))

    def leaf_digest(self, key: object) -> Digest:
        return self._tree.leaf(self.index_of(key))

    def expected_leaf(self, key: object, payload: bytes) -> Digest:
        """What the leaf digest *should* be for (key, payload)."""
        return self._leaf_digest(key, payload)

    def snapshot(self) -> "MerkleMapSnapshot":
        """An immutable view (root + slots) for cross-round verification."""
        return MerkleMapSnapshot(
            root=self._tree.root,
            size=len(self._index),
            depth=self._tree.depth,
            slots={key: slot for key, slot in self._index.items()},
        )

    # -- internals -------------------------------------------------------------------

    def _leaf_digest(self, key: object, payload: bytes) -> Digest:
        return self._hasher.leaf(self._key_bytes(key) + payload)


class MerkleMapSnapshot:
    """Frozen (root, slot-assignment) view of a :class:`MerkleMap`."""

    __slots__ = ("root", "size", "depth", "slots")

    def __init__(self, root: Digest, size: int, depth: int,
                 slots: dict[object, int]) -> None:
        self.root = root
        self.size = size
        self.depth = depth
        self.slots = slots

    def slot_of(self, key: object) -> int | None:
        return self.slots.get(key)


def _default_key_bytes(key: object) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        return key.to_bytes((key.bit_length() + 8) // 8 or 1, "big",
                            signed=True)
    to_bytes = getattr(key, "to_bytes_key", None)
    if callable(to_bytes):
        return to_bytes()
    raise MerkleError(
        f"cannot derive key bytes for {type(key).__name__}; "
        "pass key_bytes= or implement to_bytes_key()"
    )
