"""Consistency proofs: an append-only tree never rewrites its past.

The certificate-transparency primitive, adapted to power-of-two padded
trees: a prover holding the current tree convinces a verifier who
remembers an *older* checkpoint ``(old_size, old_root)`` that the
current tree ``(new_size, new_root)`` extends it — i.e. leaves
``[0, old_size)`` are unchanged — without the verifier re-reading any
leaves.

The proof supplies the subtree roots of the maximal aligned blocks
decomposing ``[0, old_size)`` and ``[old_size, new_size)``.  The
verifier folds the *same* prefix blocks (plus empty padding) into both
the old root and — together with the suffix blocks — the new root; if
both match, collision resistance forces the prefix to be identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import MerkleError
from ..hashing import Digest
from .hasher import MerkleHasher, default_hasher


def _required_depth(size: int) -> int:
    depth = 0
    while (1 << depth) < max(size, 1):
        depth += 1
    return depth


def aligned_blocks(start: int, end: int) -> list[tuple[int, int]]:
    """Decompose [start, end) into maximal aligned (level, pos) blocks."""
    if start < 0 or end < start:
        raise MerkleError(f"invalid range [{start}, {end})")
    blocks: list[tuple[int, int]] = []
    cursor = start
    while cursor < end:
        # Largest power-of-two block starting at cursor that fits.
        level = (cursor & -cursor).bit_length() - 1 if cursor else 63
        while (1 << level) > end - cursor:
            level -= 1
        blocks.append((level, cursor >> level))
        cursor += 1 << level
    return blocks


@dataclass(frozen=True)
class ConsistencyProof:
    """Everything needed to link two checkpoints of one growing tree."""

    old_size: int
    new_size: int
    nodes: tuple[tuple[int, int, Digest], ...]  # (level, pos, digest)

    def __post_init__(self) -> None:
        if not 0 < self.old_size <= self.new_size:
            raise MerkleError(
                f"need 0 < old_size <= new_size, got "
                f"{self.old_size}, {self.new_size}")

    def node_map(self) -> dict[tuple[int, int], Digest]:
        return {(level, pos): digest
                for level, pos, digest in self.nodes}

    def to_wire(self) -> dict[str, Any]:
        return {
            "old_size": self.old_size,
            "new_size": self.new_size,
            "nodes": [[level, pos, digest]
                      for level, pos, digest in self.nodes],
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ConsistencyProof":
        return cls(old_size=wire["old_size"], new_size=wire["new_size"],
                   nodes=tuple((level, pos, digest)
                               for level, pos, digest in wire["nodes"]))


def _empty_roots(hasher: MerkleHasher) -> list[Digest]:
    from .tree import _empty_roots as tree_empty_roots
    return tree_empty_roots(hasher)


def verify_consistency(old_root: Digest, new_root: Digest,
                       proof: ConsistencyProof,
                       hasher: MerkleHasher | None = None) -> None:
    """Raise :class:`MerkleError` unless ``new`` extends ``old``.

    Both roots are recomputed exclusively from the proof's block nodes
    plus canonical empty-subtree digests, so a proof that validates
    binds leaves ``[0, old_size)`` identically in both trees.
    """
    h = hasher or default_hasher()
    empty = _empty_roots(h)
    nodes = proof.node_map()
    # Only the canonical decomposition positions may be consulted.  A
    # laxer rule ("any provided node covering a full block") would let
    # a malicious prover supply a single forged high-level node that
    # the new-root recursion uses *instead of* descending to the prefix
    # blocks — decoupling the two root computations entirely.
    allowed = set(aligned_blocks(0, proof.old_size)) \
        | set(aligned_blocks(proof.old_size, proof.new_size))
    if set(nodes) - allowed:
        raise MerkleError(
            "consistency proof contains nodes outside the canonical "
            "block decomposition")

    def range_root(level: int, pos: int, size: int) -> Digest:
        start = pos << level
        if start >= size:
            return empty[level]
        if (level, pos) in allowed and start + (1 << level) <= size:
            provided = nodes.get((level, pos))
            if provided is None:
                raise MerkleError(
                    f"consistency proof is missing the node for block "
                    f"({level}, {pos})")
            return provided
        if level == 0:
            raise MerkleError(
                f"consistency proof is missing the node covering "
                f"leaf {start}")
        return h.node(range_root(level - 1, 2 * pos, size),
                      range_root(level - 1, 2 * pos + 1, size))

    computed_old = range_root(_required_depth(proof.old_size), 0,
                              proof.old_size)
    if computed_old != old_root:
        raise MerkleError(
            "consistency proof does not reproduce the old root — "
            "the log was rewritten")
    computed_new = range_root(_required_depth(proof.new_size), 0,
                              proof.new_size)
    if computed_new != new_root:
        raise MerkleError(
            "consistency proof does not reproduce the new root")


def prove_consistency(tree: "Any", old_size: int) -> ConsistencyProof:
    """Build a consistency proof from the *current* tree back to the
    checkpoint at ``old_size`` (requires ``old_size <= tree.size``).

    Implemented against :class:`repro.merkle.tree.MerkleTree`'s level
    storage; exposed as ``MerkleTree.prove_consistency``.
    """
    new_size = tree.size
    if not 0 < old_size <= new_size:
        raise MerkleError(
            f"old_size {old_size} outside (0, {new_size}]")
    needed = aligned_blocks(0, old_size) \
        + aligned_blocks(old_size, new_size)
    nodes = []
    for level, pos in needed:
        nodes.append((level, pos, tree.node_at(level, pos)))
    return ConsistencyProof(old_size=old_size, new_size=new_size,
                            nodes=tuple(nodes))
