"""Merkle inclusion proofs (single and batch).

A proof carries the leaf digest, its index, the sibling digests along the
path to the root, and the tree size at proving time.  Verification
recomputes the root and compares it against the committed one — the
"Integrity Check" of the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import MerkleError, MerkleInclusionError
from ..hashing import Digest
from .hasher import MerkleHasher, default_hasher


@dataclass(frozen=True)
class InclusionProof:
    """Proof that ``leaf`` sits at ``leaf_index`` in a committed tree."""

    leaf_index: int
    leaf: Digest
    siblings: tuple[Digest, ...]
    tree_size: int

    def __post_init__(self) -> None:
        if self.leaf_index < 0:
            raise MerkleError("leaf_index must be non-negative")
        if self.tree_size <= self.leaf_index:
            raise MerkleError("leaf_index outside tree_size")
        if len(self.siblings) > 64:
            raise MerkleError("proof path too long")

    @property
    def depth(self) -> int:
        return len(self.siblings)

    def computed_root(self, hasher: MerkleHasher | None = None) -> Digest:
        """Recompute the root implied by this proof."""
        h = hasher or default_hasher()
        digest = self.leaf
        pos = self.leaf_index
        if pos >> len(self.siblings) != 0:
            raise MerkleError("leaf_index inconsistent with path length")
        for sibling in self.siblings:
            if pos & 1:
                digest = h.node(sibling, digest)
            else:
                digest = h.node(digest, sibling)
            pos >>= 1
        return digest

    def verify(self, root: Digest,
               hasher: MerkleHasher | None = None) -> None:
        """Raise :class:`MerkleInclusionError` unless the proof matches."""
        computed = self.computed_root(hasher)
        if computed != root:
            raise MerkleInclusionError(
                f"inclusion proof for leaf {self.leaf_index} recomputed "
                f"root {computed.short()}..., expected {root.short()}..."
            )

    def is_valid(self, root: Digest,
                 hasher: MerkleHasher | None = None) -> bool:
        try:
            self.verify(root, hasher)
        except MerkleError:
            return False
        return True

    # -- wire form ----------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "leaf_index": self.leaf_index,
            "leaf": self.leaf,
            "siblings": list(self.siblings),
            "tree_size": self.tree_size,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "InclusionProof":
        return cls(
            leaf_index=wire["leaf_index"],
            leaf=wire["leaf"],
            siblings=tuple(wire["siblings"]),
            tree_size=wire["tree_size"],
        )


@dataclass(frozen=True)
class SubtreeProof:
    """Proof that a node at ``(level, index)`` roots the aligned leaf
    block ``[index << level, (index + 1) << level)`` of a committed
    tree.

    Partitioned query proving hands each partition one of these: the
    partition guest rebuilds the block's node from the leaves it was
    fed (padding with empty-subtree roots, mirroring the tree's own
    right-padding rule) and folds it up ``siblings`` to the committed
    aggregation root — so a valid proof pins both the contents *and*
    the slot range of the partition.
    """

    level: int
    index: int
    siblings: tuple[Digest, ...]
    tree_size: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise MerkleError("level must be non-negative")
        if self.index < 0:
            raise MerkleError("index must be non-negative")
        if self.tree_size <= (self.index << self.level):
            raise MerkleError("subtree outside tree_size")
        if len(self.siblings) > 64:
            raise MerkleError("proof path too long")

    @property
    def leaf_start(self) -> int:
        return self.index << self.level

    def computed_root(self, node: Digest,
                      hasher: MerkleHasher | None = None) -> Digest:
        """Recompute the root implied by ``node`` sitting at
        ``(level, index)``."""
        h = hasher or default_hasher()
        digest = node
        pos = self.index
        if pos >> len(self.siblings) != 0:
            raise MerkleError("index inconsistent with path length")
        for sibling in self.siblings:
            if pos & 1:
                digest = h.node(sibling, digest)
            else:
                digest = h.node(digest, sibling)
            pos >>= 1
        return digest

    def verify(self, root: Digest, node: Digest,
               hasher: MerkleHasher | None = None) -> None:
        computed = self.computed_root(node, hasher)
        if computed != root:
            raise MerkleInclusionError(
                f"subtree proof at ({self.level}, {self.index}) recomputed "
                f"root {computed.short()}..., expected {root.short()}..."
            )

    def is_valid(self, root: Digest, node: Digest,
                 hasher: MerkleHasher | None = None) -> bool:
        try:
            self.verify(root, node, hasher)
        except MerkleError:
            return False
        return True

    # -- wire form ----------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "level": self.level,
            "index": self.index,
            "siblings": list(self.siblings),
            "tree_size": self.tree_size,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "SubtreeProof":
        return cls(
            level=wire["level"],
            index=wire["index"],
            siblings=tuple(wire["siblings"]),
            tree_size=wire["tree_size"],
        )


@dataclass(frozen=True)
class MultiProof:
    """A batch of inclusion proofs against a single committed root."""

    proofs: tuple[InclusionProof, ...]
    root: Digest

    def verify(self, root: Digest | None = None,
               hasher: MerkleHasher | None = None) -> None:
        """Verify all member proofs against ``root`` (default: own root)."""
        target = root if root is not None else self.root
        if root is not None and self.root != root:
            raise MerkleInclusionError(
                "multiproof root does not match the committed root"
            )
        for proof in self.proofs:
            proof.verify(target, hasher)

    def is_valid(self, root: Digest | None = None,
                 hasher: MerkleHasher | None = None) -> bool:
        try:
            self.verify(root, hasher)
        except MerkleError:
            return False
        return True

    @property
    def indices(self) -> tuple[int, ...]:
        return tuple(p.leaf_index for p in self.proofs)

    def to_wire(self) -> dict[str, Any]:
        return {
            "proofs": [p.to_wire() for p in self.proofs],
            "root": self.root,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "MultiProof":
        return cls(
            proofs=tuple(InclusionProof.from_wire(p) for p in wire["proofs"]),
            root=wire["root"],
        )


def verify_inclusion(root: Digest, proof: InclusionProof,
                     hasher: MerkleHasher | None = None) -> bool:
    """Functional convenience wrapper used by guest programs."""
    return proof.is_valid(root, hasher)
