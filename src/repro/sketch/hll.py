"""HyperLogLog: flow-cardinality estimation.

Standard HLL with the bias-corrected estimator and small/large-range
corrections; register hashing is the same seeded tagged construction as
the rest of the sketch family.
"""

from __future__ import annotations

import math
from typing import Any

from ..errors import ConfigurationError
from ..hashing import Digest, hash_many
from ..serialization import encode
from .common import item_bytes, row_hash


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / m)


class HyperLogLog:
    """2^precision registers of leading-zero ranks."""

    def __init__(self, precision: int = 12, seed: int = 0) -> None:
        if not 4 <= precision <= 18:
            raise ConfigurationError(
                f"precision must be in [4, 18], got {precision}")
        self.precision = precision
        self.seed = seed
        self._m = 1 << precision
        self._registers = [0] * self._m

    def add(self, item: bytes | str | int) -> None:
        value = row_hash(self.seed, 0, item_bytes(item))
        index = value >> (64 - self.precision)
        remainder = value & ((1 << (64 - self.precision)) - 1)
        # Rank: leading zeros of the remainder (within its width) + 1.
        rank = (64 - self.precision) - remainder.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def estimate(self) -> float:
        m = self._m
        raw = _alpha(m) * m * m / sum(2.0 ** -r for r in self._registers)
        if raw <= 2.5 * m:
            zeros = self._registers.count(0)
            if zeros:
                return m * math.log(m / zeros)
        if raw > (1 << 64) / 30.0:
            return -(1 << 64) * math.log(1 - raw / (1 << 64))
        return raw

    def merge(self, other: "HyperLogLog") -> None:
        if (self.precision, self.seed) != (other.precision, other.seed):
            raise ValueError("cannot merge differently configured HLLs")
        self._registers = [max(a, b) for a, b in
                           zip(self._registers, other._registers)]

    def to_state(self) -> dict[str, Any]:
        return {
            "kind": "hyperloglog",
            "precision": self.precision,
            "seed": self.seed,
            "registers": list(self._registers),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "HyperLogLog":
        hll = cls(precision=state["precision"], seed=state["seed"])
        hll._registers = list(state["registers"])
        return hll

    def digest(self) -> Digest:
        return hash_many("repro/sketch/state", [encode(self.to_state())])
