"""Space-Saving: top-k heavy hitters with bounded error.

Maintains at most ``capacity`` (item, count, error) triples; when full,
a new item evicts the minimum-count entry and inherits its count as
error bound.  Deterministic eviction (ties broken by item bytes) keeps
states byte-identical across replicas.
"""

from __future__ import annotations

from typing import Any

from ..hashing import Digest, hash_many
from ..serialization import encode
from .common import check_positive, item_bytes


class SpaceSaving:
    """Deterministic Space-Saving heavy-hitter summary."""

    def __init__(self, capacity: int = 64) -> None:
        check_positive("capacity", capacity)
        self.capacity = capacity
        self._counts: dict[bytes, int] = {}
        self._errors: dict[bytes, int] = {}
        self._total = 0

    def add(self, item: bytes | str | int, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        data = item_bytes(item)
        self._total += count
        if data in self._counts:
            self._counts[data] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[data] = count
            self._errors[data] = 0
            return
        victim = min(self._counts, key=lambda k: (self._counts[k], k))
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[data] = floor + count
        self._errors[data] = floor

    def estimate(self, item: bytes | str | int) -> int:
        """Upper-bound estimate (0 if never tracked)."""
        return self._counts.get(item_bytes(item), 0)

    def guaranteed(self, item: bytes | str | int) -> int:
        """Lower-bound (estimate minus inherited error)."""
        data = item_bytes(item)
        return self._counts.get(data, 0) - self._errors.get(data, 0)

    def top(self, k: int) -> list[tuple[bytes, int]]:
        """The k heaviest tracked items, deterministic order."""
        ranked = sorted(self._counts.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    @property
    def total(self) -> int:
        return self._total

    def to_state(self) -> dict[str, Any]:
        items = sorted(self._counts)
        return {
            "kind": "space-saving",
            "capacity": self.capacity,
            "items": list(items),
            "counts": [self._counts[i] for i in items],
            "errors": [self._errors[i] for i in items],
            "total": self._total,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "SpaceSaving":
        sketch = cls(capacity=state["capacity"])
        sketch._counts = dict(zip(state["items"], state["counts"]))
        sketch._errors = dict(zip(state["items"], state["errors"]))
        sketch._total = state["total"]
        return sketch

    def digest(self) -> Digest:
        return hash_many("repro/sketch/state", [encode(self.to_state())])
