"""Count-Min sketch: conservative frequency estimation.

Estimates never undercount; the overcount is bounded by
``e/width × total`` with probability ``1 - e^-depth``.
"""

from __future__ import annotations

from typing import Any

from ..hashing import Digest, hash_many
from ..serialization import encode
from .common import check_positive, item_bytes, row_hash


class CountMinSketch:
    """A ``depth × width`` counter matrix with per-row hashing."""

    def __init__(self, width: int = 1024, depth: int = 4,
                 seed: int = 0) -> None:
        check_positive("width", width)
        check_positive("depth", depth)
        self.width = width
        self.depth = depth
        self.seed = seed
        self._rows = [[0] * width for _ in range(depth)]
        self._total = 0

    # -- updates ---------------------------------------------------------------

    def add(self, item: bytes | str | int, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        data = item_bytes(item)
        for row in range(self.depth):
            index = row_hash(self.seed, row, data) % self.width
            self._rows[row][index] += count
        self._total += count

    # -- queries ------------------------------------------------------------------

    def estimate(self, item: bytes | str | int) -> int:
        """Point estimate (never an undercount)."""
        data = item_bytes(item)
        return min(
            self._rows[row][row_hash(self.seed, row, data) % self.width]
            for row in range(self.depth)
        )

    @property
    def total(self) -> int:
        return self._total

    # -- merging & commitment ----------------------------------------------------------

    def merge(self, other: "CountMinSketch") -> None:
        """In-place merge; both sketches must share the configuration."""
        if (self.width, self.depth, self.seed) != \
                (other.width, other.depth, other.seed):
            raise ValueError("cannot merge differently configured sketches")
        for mine, theirs in zip(self._rows, other._rows):
            for index, value in enumerate(theirs):
                mine[index] += value
        self._total += other._total

    def to_state(self) -> dict[str, Any]:
        """Canonical state (commitment-friendly)."""
        return {
            "kind": "count-min",
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "rows": [list(row) for row in self._rows],
            "total": self._total,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "CountMinSketch":
        sketch = cls(width=state["width"], depth=state["depth"],
                     seed=state["seed"])
        sketch._rows = [list(row) for row in state["rows"]]
        sketch._total = state["total"]
        return sketch

    def digest(self) -> Digest:
        """The hash a router would commit for this sketch state."""
        return hash_many("repro/sketch/state", [encode(self.to_state())])
