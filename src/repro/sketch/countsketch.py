"""Count sketch: unbiased frequency estimation (median of signed rows)."""

from __future__ import annotations

import statistics
from typing import Any

from ..hashing import Digest, hash_many
from ..serialization import encode
from .common import check_positive, item_bytes, row_hash


class CountSketch:
    """Signed counter matrix; estimates are medians across rows."""

    def __init__(self, width: int = 1024, depth: int = 5,
                 seed: int = 0) -> None:
        check_positive("width", width)
        check_positive("depth", depth)
        self.width = width
        self.depth = depth
        self.seed = seed
        self._rows = [[0] * width for _ in range(depth)]
        self._total = 0

    def _position(self, row: int, data: bytes) -> tuple[int, int]:
        value = row_hash(self.seed, row, data)
        index = (value >> 1) % self.width
        sign = 1 if value & 1 else -1
        return index, sign

    def add(self, item: bytes | str | int, count: int = 1) -> None:
        data = item_bytes(item)
        for row in range(self.depth):
            index, sign = self._position(row, data)
            self._rows[row][index] += sign * count
        self._total += count

    def estimate(self, item: bytes | str | int) -> int:
        data = item_bytes(item)
        values = []
        for row in range(self.depth):
            index, sign = self._position(row, data)
            values.append(sign * self._rows[row][index])
        return int(statistics.median(values))

    @property
    def total(self) -> int:
        return self._total

    def merge(self, other: "CountSketch") -> None:
        if (self.width, self.depth, self.seed) != \
                (other.width, other.depth, other.seed):
            raise ValueError("cannot merge differently configured sketches")
        for mine, theirs in zip(self._rows, other._rows):
            for index, value in enumerate(theirs):
                mine[index] += value
        self._total += other._total

    def to_state(self) -> dict[str, Any]:
        return {
            "kind": "count-sketch",
            "width": self.width,
            "depth": self.depth,
            "seed": self.seed,
            "rows": [list(row) for row in self._rows],
            "total": self._total,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "CountSketch":
        sketch = cls(width=state["width"], depth=state["depth"],
                     seed=state["seed"])
        sketch._rows = [list(row) for row in state["rows"]]
        sketch._total = state["total"]
        return sketch

    def digest(self) -> Digest:
        return hash_many("repro/sketch/state", [encode(self.to_state())])
