"""Sketching telemetry algorithms (§1: "can use any logging or sketching
algorithm").

The paper positions its commitment/proof pipeline as agnostic to the
logging algorithm — raw NetFlow records, or compact sketches as in the
cited line of work (UnivMon, NitroSketch, CocoSketch, OctoSketch,
TrustSketch).  This package provides deterministic, canonically
serializable sketches whose state can be committed and proven over
exactly like raw logs:

* :class:`~repro.sketch.countmin.CountMinSketch` — frequency estimation
  (always overestimates);
* :class:`~repro.sketch.countsketch.CountSketch` — unbiased frequency
  estimation with median-of-rows;
* :class:`~repro.sketch.hll.HyperLogLog` — flow cardinality;
* :class:`~repro.sketch.spacesaving.SpaceSaving` — top-k heavy hitters.

All hash choices are seeded, tag-separated SHA-256 derivations, so two
parties sketching the same stream always produce byte-identical
states — a requirement for hash-commitment checking.
"""

from .countmin import CountMinSketch
from .countsketch import CountSketch
from .hll import HyperLogLog
from .spacesaving import SpaceSaving

__all__ = ["CountMinSketch", "CountSketch", "HyperLogLog", "SpaceSaving"]
