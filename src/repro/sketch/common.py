"""Shared hashing utilities for the sketch family.

Sketch hash functions are derived from tagged SHA-256 with a per-sketch
seed and per-row index, giving deterministic, independent-enough hash
rows without any randomness at runtime (determinism is load-bearing:
sketch states are hash-committed).
"""

from __future__ import annotations

import hashlib

from ..errors import ConfigurationError


def row_hash(seed: int, row: int, item: bytes) -> int:
    """A 64-bit hash of ``item`` for hash-row ``row``."""
    h = hashlib.sha256()
    h.update(b"repro/sketch")
    h.update(seed.to_bytes(8, "big", signed=True))
    h.update(row.to_bytes(4, "big"))
    h.update(item)
    return int.from_bytes(h.digest()[:8], "big")


def check_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def item_bytes(item: bytes | str | int) -> bytes:
    """Normalise sketch keys to bytes."""
    if isinstance(item, bytes):
        return item
    if isinstance(item, str):
        return item.encode("utf-8")
    if isinstance(item, int):
        width = max(8, (item.bit_length() + 8) // 8)
        return item.to_bytes(width, "big", signed=True)
    to_bytes = getattr(item, "to_bytes_key", None)
    if callable(to_bytes):
        return to_bytes()
    raise ConfigurationError(
        f"cannot sketch items of type {type(item).__name__}")
