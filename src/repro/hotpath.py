"""Global switch for the zkVM hot-path optimizations.

PR 9 optimized the simulated zkVM interpreter and its feeders — buffered
guest I/O, batched SHA accelerator accounting, memoized Merkle subtree
hashing, vectorized slot scans.  Every optimization is *observationally
identical* to the reference implementation it replaced: journal bytes,
cycle totals, segment digests, and receipt claims do not change.  The
reference paths are kept, behind this gate, for two reasons:

* the byte-identity property suite (``tests/property/test_hotpath_props``)
  runs every workload both ways and asserts equality, so the equivalence
  is machine-checked, not just argued;
* ``benchmarks/bench_zkvm_hotpath.py`` measures each optimization
  against its reference honestly, in the same process.

The gate is process-global and read from ``REPRO_HOTPATH`` once at
import (``0``/``off``/``false`` disable); tests and benchmarks flip it
with :func:`force` / :func:`disabled`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_OFF_VALUES = {"0", "off", "false", "no"}

_enabled = os.environ.get("REPRO_HOTPATH", "1").strip().lower() not in _OFF_VALUES


def enabled() -> bool:
    """Are the hot-path optimizations active in this process?"""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Set the gate; returns the previous value (for restoration)."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


@contextmanager
def force(value: bool) -> Iterator[None]:
    """Scoped override: run a block with the gate pinned to ``value``."""
    previous = set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def disabled() -> Iterator[None]:
    """Scoped convenience for the reference (unoptimized) paths."""
    with force(False):
        yield
