"""The tiered query-result cache: (sql, round, root) → QueryResponse.

PR 3 gave :class:`~repro.core.prover_service.ProverService` an
in-process LRU of proven responses; PR 5 keyed it by (sql, round,
*root*) so a diverged chain at the same round number can never replay a
stale receipt.  This module promotes that dict to a real cache with the
same two-tier contract as :class:`~repro.engine.cache.ReceiptCache`:

* **Memory tier**: a locked, bounded LRU of
  :class:`~repro.core.query_proof.QueryResponse` objects — safe under
  the server's concurrent executor threads (the old ``OrderedDict`` was
  mutated unlocked, which corrupts under load).
* **Persistent tier**: the :class:`~repro.storage.backend.LogStore`
  checkpoint KV, so proven answers survive restarts and are shareable
  between the in-process query path and the multi-tenant query service.
  Backends without checkpoint support degrade to memory-only (one
  warning); a flaky persistent tier must never fail a query.

The committed **root is part of the key**, which is what makes the
persistent tier safe across crash/restore divergence: a re-aggregated
round at the same index commits a different root and therefore misses.
Persistent entries are sealed under a content digest and, after
decoding, cross-checked against the requested (sql, root) before being
served — *any* corruption of a stored blob is a miss, never a wrong
answer (and the receipt inside remains client-verifiable regardless).

``repro_qserve_cache_total`` counters are **opt-in** (``observe=True``
or :meth:`enable_observation`): the default in-process service keeps
its seed telemetry namespace, while the query service flips them on.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from typing import Any

from ..errors import ConfigurationError, ReproError, StorageError
from ..hashing import (
    DIGEST_SIZE,
    TAG_QSERVE_BLOB,
    TAG_QSERVE_KEY,
    Digest,
    tagged_hash,
)
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..serialization import (
    decode_query_response,
    encode_query_response,
)
from ..storage.backend import LogStore

logger = logging.getLogger(__name__)

#: Checkpoint-KV name prefix for the persistent tier.
QSERVE_CACHE_NAMESPACE = "query-results"


def result_cache_key(sql: str, round_index: int, root: Digest) -> Digest:
    """The content address of one proven answer.

    Proving is deterministic, so (sql, round, root) fully determines
    the response bytes — the same argument that makes the engine's
    receipt cache sound.
    """
    return tagged_hash(
        TAG_QSERVE_KEY,
        sql.encode("utf-8"),
        int(round_index).to_bytes(8, "big"),
        root.raw,
    )


class QueryResultCache:
    """Locked LRU memory tier over an optional persistent KV tier."""

    def __init__(self, store: LogStore | None = None,
                 memory_entries: int = 256,
                 namespace: str = QSERVE_CACHE_NAMESPACE,
                 observe: bool = False) -> None:
        if memory_entries < 1:
            raise ConfigurationError("memory_entries must be >= 1")
        self._memory: OrderedDict[bytes, Any] = OrderedDict()
        self._memory_entries = memory_entries
        self._store = store
        self._namespace = namespace
        self._persistent_ok = store is not None
        self._observe = observe
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0

    # -- configuration -------------------------------------------------------

    def enable_observation(self) -> None:
        """Start emitting ``repro_qserve_cache_total`` counters."""
        self._observe = True

    def attach_store(self, store: LogStore | None) -> None:
        """Late-bind a persistent tier (no-op when one is attached).

        Lets the query service promote the service's memory-only cache
        to the shared persistent tier without rebuilding it — both
        paths then serve each other's proven answers.
        """
        with self._lock:
            if self._store is None and store is not None:
                self._store = store
                self._persistent_ok = True

    # -- lookup --------------------------------------------------------------

    def get(self, sql: str, round_index: int, root: Digest) -> Any:
        """The cached :class:`QueryResponse`, or ``None``.

        A persistent-tier hit is promoted into the memory tier.
        """
        key = result_cache_key(sql, round_index, root)
        with self._lock:
            cached = self._memory.get(key.raw)
            if cached is not None:
                self._memory.move_to_end(key.raw)
                self._hits += 1
        if cached is not None:
            self._count("memory", "hit")
            return cached
        self._count("memory", "miss")
        response = self._get_persistent(key, sql, root)
        if response is not None:
            self._count("persistent", "hit")
            with self._lock:
                self._hits += 1
                self._remember(key, response)
            return response
        if self._persistent_ok:
            self._count("persistent", "miss")
        with self._lock:
            self._misses += 1
        return None

    def put(self, response: Any) -> None:
        """Remember a proven response in both tiers (best-effort
        persistence).  The key is derived from the response itself —
        its journal-committed (sql, round, root) — so a caller can
        never file an answer under the wrong identity."""
        key = result_cache_key(response.sql, response.round,
                               response.root)
        with self._lock:
            self._remember(key, response)
            self._stores += 1
        self._count("memory", "store")
        self._put_persistent(key, response)

    def clear(self) -> None:
        """Drop the memory tier (restore path).

        Persistent entries stay: they are root-keyed, so state adopted
        from a checkpoint either reproduces the same root (and the
        entries are valid) or a different one (and they can never be
        served).
        """
        with self._lock:
            self._memory.clear()

    # -- status --------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            hits, misses = self._hits, self._misses
            stores, evictions = self._stores, self._evictions
            entries = len(self._memory)
        lookups = hits + misses
        return {
            "memory_entries": entries,
            "memory_max": self._memory_entries,
            "persistent": self._persistent_ok,
            "hits": hits,
            "misses": misses,
            "stores": stores,
            "evictions": evictions,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    # -- internals -----------------------------------------------------------

    def _count(self, tier: str, result: str) -> None:
        if not self._observe:
            return
        obs.registry().counter(obs_names.QSERVE_CACHE,
                               ("tier", "result")).inc(
            tier=tier, result=result)

    def _remember(self, key: Digest, response: Any) -> None:
        """Insert into the LRU (caller holds the lock)."""
        self._memory[key.raw] = response
        self._memory.move_to_end(key.raw)
        while len(self._memory) > self._memory_entries:
            self._memory.popitem(last=False)
            self._evictions += 1
            if self._observe:
                obs.registry().counter(
                    obs_names.QSERVE_CACHE, ("tier", "result")).inc(
                    tier="memory", result="evict")

    def _checkpoint_name(self, key: Digest) -> str:
        return f"{self._namespace}/{key.hex()}"

    def _get_persistent(self, key: Digest, sql: str,
                        root: Digest) -> Any:
        if not self._persistent_ok:
            return None
        try:
            blob = self._store.get_checkpoint(self._checkpoint_name(key))
        except StorageError:
            self._degrade("read")
            return None
        if blob is None:
            return None
        payload = self._open_blob(blob)
        if payload is None:
            logger.warning("query result cache: dropping corrupt "
                           "entry %s (digest mismatch)", key.short())
            return None
        try:
            response = decode_query_response(payload)
        except ReproError as exc:
            # A corrupt entry is a miss, never an error: re-prove.
            logger.warning("query result cache: dropping undecodable "
                           "entry %s (%s)", key.short(), exc)
            return None
        if response.sql != sql or response.root != root:
            logger.warning("query result cache: entry %s does not "
                           "match its key; dropping it", key.short())
            return None
        return response

    def _put_persistent(self, key: Digest, response: Any) -> None:
        if not self._persistent_ok:
            return
        try:
            self._store.put_checkpoint(
                self._checkpoint_name(key),
                self._seal_blob(encode_query_response(response)))
            self._count("persistent", "store")
        except StorageError:
            self._degrade("write")

    @staticmethod
    def _seal_blob(payload: bytes) -> bytes:
        """Prefix the payload with its content digest.

        The wire codec tolerates some single-byte mutations (e.g. in a
        value field) that decode cleanly into a *different* response;
        the digest envelope turns every such mutation into a miss
        instead of a silently altered answer.
        """
        return tagged_hash(TAG_QSERVE_BLOB, payload).raw + payload

    @staticmethod
    def _open_blob(blob: bytes) -> bytes | None:
        if len(blob) <= DIGEST_SIZE:
            return None
        digest, payload = blob[:DIGEST_SIZE], blob[DIGEST_SIZE:]
        if tagged_hash(TAG_QSERVE_BLOB, payload).raw != digest:
            return None
        return payload

    def _degrade(self, op: str) -> None:
        if self._persistent_ok:
            self._persistent_ok = False
            logger.warning(
                "query result cache: persistent tier failed on %s; "
                "continuing memory-only", op)
