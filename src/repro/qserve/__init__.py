"""Multi-tenant query serving: admission, batching, result caching.

The in-process query path (``ProverService.answer_query``) and the wire
server treat every query as an independent, unmetered unit of work.
This package adds the serving layer a multi-tenant deployment needs:

* :mod:`.admission` — per-tenant token-bucket rate limits, a bounded
  in-flight count, and round-robin fairness across tenant FIFOs;
* :mod:`.batch` — batched query proving: compatible queries share one
  partition scan while each still gets its own standalone receipt,
  byte-identical in journal to a serially proven one;
* :mod:`.cache` — the tiered (memory + checkpoint-KV) result cache,
  keyed by (sql, round, committed root);
* :mod:`.service` — :class:`QueryService`, the asyncio front-end that
  ties them together for :class:`repro.net.ProverServer`.
"""

from .admission import (
    AdmissionController,
    FairQueue,
    TokenBucket,
)
from .batch import BatchQueryProver
from .cache import QueryResultCache, result_cache_key
from .service import (
    DEFAULT_BATCH_PARTITIONS,
    ENV_QSERVE_BATCH,
    QueryService,
    env_qserve_batch,
)

__all__ = [
    "AdmissionController",
    "BatchQueryProver",
    "DEFAULT_BATCH_PARTITIONS",
    "ENV_QSERVE_BATCH",
    "FairQueue",
    "QueryResultCache",
    "QueryService",
    "TokenBucket",
    "env_qserve_batch",
    "result_cache_key",
]
