"""Admission control for the multi-tenant query service.

Three small, loop-affine pieces (the asyncio dispatcher owns them all,
so no locks):

* :class:`TokenBucket` — the classic rate limiter, one per tenant.
  Refills continuously at ``rate`` tokens/second up to ``burst``; a
  request is admitted iff a whole token is available.  Time comes from
  an injectable ``clock`` so the tests drive it deterministically.
* :class:`FairQueue` — per-tenant FIFO deques drained round-robin, so
  one hot tenant can saturate its own queue without starving anyone
  else's: each drain pass takes at most one request per tenant before
  revisiting any of them.
* :class:`AdmissionController` — the policy seam the service calls:
  either *admit* (enqueue and return a position) or *reject* with a
  typed reason (``rate`` or ``capacity``) that maps onto the
  ``admission-rejected`` wire code.  The capacity bound is global —
  an admission queue holds proofs-in-waiting, and a bound on it is
  what turns overload into fast typed rejections instead of unbounded
  latency.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import Any, Callable, Iterator

from ..errors import AdmissionRejected, ConfigurationError

REASON_RATE = "rate"
REASON_CAPACITY = "capacity"


class TokenBucket:
    """Continuous-refill token bucket (``rate``/s, capacity ``burst``)."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ConfigurationError("token bucket rate must be > 0")
        if burst < 1:
            raise ConfigurationError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_take(self) -> bool:
        """Consume one token if available."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class FairQueue:
    """Per-tenant FIFOs drained round-robin.

    ``push`` appends to the tenant's deque; :meth:`drain` yields up to
    ``limit`` items taking at most one per tenant per pass, starting
    after the tenant served last (so service order rotates rather than
    always favouring the first tenant registered).
    """

    def __init__(self) -> None:
        self._queues: "OrderedDict[str, deque[Any]]" = OrderedDict()
        self._total = 0

    def __len__(self) -> int:
        return self._total

    def push(self, tenant: str, item: Any) -> int:
        """Enqueue; returns the queue depth after insertion."""
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
        queue.append(item)
        self._total += 1
        return self._total

    def drain(self, limit: int) -> Iterator[Any]:
        """Yield up to ``limit`` items, one per tenant per pass."""
        taken = 0
        while taken < limit and self._total:
            progressed = False
            for tenant in list(self._queues):
                queue = self._queues[tenant]
                if not queue:
                    continue
                yield queue.popleft()
                self._total -= 1
                taken += 1
                progressed = True
                if not queue:
                    del self._queues[tenant]
                else:
                    # Rotate: the tenant just served goes to the back.
                    self._queues.move_to_end(tenant)
                if taken >= limit or not self._total:
                    return
            if not progressed:
                return

    def clear(self) -> list[Any]:
        """Drop and return everything still queued (shutdown path)."""
        items = [item for queue in self._queues.values()
                 for item in queue]
        self._queues.clear()
        self._total = 0
        return items


class AdmissionController:
    """Token buckets + the bounded fair queue = admit or typed reject."""

    def __init__(self, max_inflight: int = 64,
                 tenant_rate: float | None = None,
                 tenant_burst: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_inflight < 1:
            raise ConfigurationError("max_inflight must be >= 1")
        if tenant_rate is not None and tenant_rate <= 0:
            raise ConfigurationError("tenant_rate must be > 0")
        self.max_inflight = max_inflight
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.queue = FairQueue()
        self.inflight = 0

    def _bucket(self, tenant: str) -> TokenBucket | None:
        if self.tenant_rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            burst = self.tenant_burst
            if burst is None:
                burst = max(1.0, self.tenant_rate)
            bucket = TokenBucket(self.tenant_rate, burst,
                                 clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> None:
        """Charge one request to ``tenant`` or raise (typed).

        Order matters: the rate check runs first so a throttled tenant
        is told to slow down even when there is capacity, and a
        rate-admitted request is only then charged against the global
        bound.  The raised :class:`AdmissionRejected` carries a
        ``reason`` attribute (:data:`REASON_RATE` /
        :data:`REASON_CAPACITY`) for the rejection counter's label.

        Admission and enqueueing are separate steps so the service can
        consult the result cache in between — an admitted request that
        hits the cache is answered immediately (and released) without
        ever occupying the proving queue.  ``inflight`` counts
        admitted-but-unresolved requests; :meth:`release` returns the
        slot.
        """
        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_take():
            exc = AdmissionRejected(
                f"tenant {tenant!r} exceeded its rate limit "
                f"({self.tenant_rate}/s); retry later")
            exc.reason = REASON_RATE
            raise exc
        if self.inflight >= self.max_inflight:
            exc = AdmissionRejected(
                f"admission queue is full ({self.max_inflight} "
                "requests in flight); retry later")
            exc.reason = REASON_CAPACITY
            raise exc
        self.inflight += 1

    def enqueue(self, tenant: str, item: Any) -> int:
        """Queue an admitted request; returns the total queue depth."""
        return self.queue.push(tenant, item)

    def release(self) -> None:
        """One admitted request fully resolved."""
        if self.inflight > 0:
            self.inflight -= 1


__all__ = [
    "REASON_CAPACITY",
    "REASON_RATE",
    "AdmissionController",
    "FairQueue",
    "TokenBucket",
]
