"""The multi-tenant query service: admit → batch → prove → cache.

:class:`QueryService` sits between the wire server and a
:class:`~repro.core.prover_service.ProverService` and owns the three
multi-tenant concerns the in-process query path never had:

* **Admission** (:mod:`.admission`): per-tenant token buckets and a
  bounded in-flight count.  Overload turns into an immediate, typed
  ``admission-rejected`` wire error instead of unbounded queueing, and
  a hot tenant only ever drains its own FIFO — the dispatcher serves
  tenants round-robin.
* **Batching** (:mod:`.batch`): admitted queries wait up to
  ``batch_window`` seconds; compatible ones (same requested round,
  same committed root at admission) then share one partition scan,
  while every query still receives its own standalone receipt.
* **Result caching** (:mod:`.cache`): the service promotes the prover
  service's :class:`~repro.qserve.cache.QueryResultCache` to the
  shared persistent tier and turns on its counters, so identical
  (sql, round, root) requests — from any tenant, before or after a
  restart — replay a proven response without touching a prover.

All bookkeeping is loop-affine: :meth:`submit` and the dispatcher run
on the server's event loop, and only the proving itself
(:meth:`_prove_group`) runs on an executor thread — which is also what
keeps a slow query from stalling concurrent STATUS/METRICS requests.
"""

from __future__ import annotations

import asyncio
import logging
import os
from dataclasses import dataclass, field
from typing import Any

from ..errors import ConfigurationError, NetworkError
from ..hashing import Digest
from ..obs import names as obs_names
from ..obs import runtime as obs
from .admission import AdmissionController
from .batch import BatchQueryProver

logger = logging.getLogger(__name__)

ENV_QSERVE_BATCH = "REPRO_QSERVE_BATCH"

#: Partition count for batched proving when the service did not
#: configure ``query_partitions`` itself.
DEFAULT_BATCH_PARTITIONS = 4


def env_qserve_batch() -> bool:
    """``True`` when ``REPRO_QSERVE_BATCH`` requests batched proving."""
    return os.environ.get(ENV_QSERVE_BATCH, "").strip().lower() \
        not in ("", "0", "false", "no")


@dataclass
class _Ticket:
    """One admitted query waiting in the fair queue."""

    sql: str
    round_index: int | None
    tenant: str
    effective_round: int
    root: Digest
    future: "asyncio.Future[Any]" = field(repr=False)


class QueryService:
    """Admission-controlled, batching front-end over a prover service."""

    def __init__(self, service: Any, *,
                 max_inflight: int = 64,
                 tenant_rate: float | None = None,
                 tenant_burst: float | None = None,
                 batch_window: float = 0.005,
                 batch_max: int = 16,
                 batch: bool | None = None) -> None:
        if batch_window < 0:
            raise ConfigurationError("batch_window must be >= 0")
        if batch_max < 1:
            raise ConfigurationError("batch_max must be >= 1")
        self.service = service
        self._admission = AdmissionController(
            max_inflight=max_inflight,
            tenant_rate=tenant_rate,
            tenant_burst=tenant_burst)
        self.batch_window = batch_window
        self.batch_max = batch_max
        # Batched proving needs the engine's fan-out queue; without one
        # the service still admits, caches, and fair-queues — it just
        # proves each query serially off-loop.
        if batch is None:
            batch = env_qserve_batch()
        self.batch_enabled = bool(batch) \
            and getattr(service, "engine", None) is not None
        self._batch_prover = BatchQueryProver(service.engine) \
            if self.batch_enabled else None
        # The shared tiers: persistence + counters are the query
        # service's contract, so turn both on for the service's cache.
        service.query_cache.attach_store(service.store)
        service.query_cache.enable_observation()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatcher on the running event loop."""
        if self._task is not None:
            return
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._closed = False
        self._task = self._loop.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop dispatching; fail whatever is still queued."""
        if self._task is None:
            return
        self._closed = True
        self._wake.set()
        await self._task
        self._task = None
        for ticket in self._admission.queue.clear():
            if not ticket.future.done():
                ticket.future.set_exception(NetworkError(
                    "query service stopped before answering"))
            self._admission.release()
        self._gauge()

    # -- the front door ------------------------------------------------------

    async def submit(self, sql: str, round_index: int | None = None,
                     tenant: str = "default") -> Any:
        """Admit, (maybe) batch, and answer one query.

        Raises exactly the typed errors the wire protocol maps:
        :class:`~repro.errors.AdmissionRejected` on backpressure,
        :class:`~repro.errors.ChainError` /
        :class:`~repro.errors.ProofError` /
        :class:`~repro.errors.QuerySyntaxError` for invalid requests —
        all *before* the request occupies a queue slot or a prover.
        """
        if self._task is None or self._closed:
            raise NetworkError("query service is not running")
        tenant = tenant or "default"
        registry = obs.registry()
        with obs.tracer().span(obs_names.SPAN_QSERVE_ADMIT,
                               tenant=tenant) as span:
            # Reject malformed queries and bad rounds before they cost
            # anyone a token: admission protects proving capacity, and
            # these requests were never going to reach a prover.
            from ..query import parse_query
            parse_query(sql)
            effective_round, root = \
                self.service.resolve_query_round(round_index)
            try:
                self._admission.admit(tenant)
            except Exception as exc:
                reason = getattr(exc, "reason", "rate")
                registry.counter(obs_names.QSERVE_REJECTED,
                                 ("tenant", "reason")).inc(
                    tenant=tenant, reason=reason)
                span.set("outcome", f"rejected:{reason}")
                raise
            registry.counter(obs_names.QSERVE_ADMITTED,
                             ("tenant",)).inc(tenant=tenant)
            self._gauge()
            cached = self.service.query_cache.get(sql, effective_round,
                                                  root)
            if cached is not None:
                self._admission.release()
                self._gauge()
                span.set("outcome", "cached")
                return cached
            ticket = _Ticket(sql=sql, round_index=round_index,
                             tenant=tenant,
                             effective_round=effective_round,
                             root=root,
                             future=self._loop.create_future())
            depth = self._admission.enqueue(tenant, ticket)
            span.set("outcome", "queued")
            span.set("depth", depth)
            self._wake.set()
        return await ticket.future

    def stats(self) -> dict[str, Any]:
        return {
            "inflight": self._admission.inflight,
            "max_inflight": self._admission.max_inflight,
            "queued": len(self._admission.queue),
            "tenant_rate": self._admission.tenant_rate,
            "batch": self.batch_enabled,
            "batch_window": self.batch_window,
            "batch_max": self.batch_max,
            "cache": self.service.query_cache.stats(),
        }

    # -- dispatcher ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._closed:
                return
            while len(self._admission.queue):
                # The batching window: give concurrent submitters a
                # beat to land in the queue so compatible queries share
                # one scan.  Skipped once a full batch is waiting.
                if self.batch_window > 0 \
                        and len(self._admission.queue) < self.batch_max:
                    await asyncio.sleep(self.batch_window)
                if self._closed:
                    return
                tickets = list(
                    self._admission.queue.drain(self.batch_max))
                for group in self._group(tickets):
                    outcomes = await self._loop.run_in_executor(
                        None, self._prove_group, group)
                    for ticket, outcome in outcomes:
                        if not ticket.future.done():
                            if isinstance(outcome, Exception):
                                ticket.future.set_exception(outcome)
                            else:
                                ticket.future.set_result(outcome)
                        self._admission.release()
                    self._gauge()
            if self._closed:
                return

    @staticmethod
    def _group(tickets: list[_Ticket]) -> list[list[_Ticket]]:
        """Split a drained batch into provable groups.

        Compatible = same requested round *and* same committed root at
        admission: a batch shares partition scans, so every member must
        bind the same state.  (For "latest" requests that straddle a
        new round, the root differs and they simply prove separately.)
        """
        groups: dict[tuple[Any, bytes], list[_Ticket]] = {}
        for ticket in tickets:
            groups.setdefault(
                (ticket.round_index, ticket.root.raw), []).append(ticket)
        return list(groups.values())

    # -- proving (executor thread) -------------------------------------------

    def _prove_group(self, tickets: list[_Ticket]
                     ) -> list[tuple[_Ticket, Any]]:
        """Answer one compatible group; never raises.

        Returns ``(ticket, QueryResponse | Exception)`` pairs — the
        dispatcher settles the futures back on the loop.
        """
        registry = obs.registry()
        outcomes: list[tuple[_Ticket, Any]] = []
        with obs.tracer().span(obs_names.SPAN_QSERVE_BATCH,
                               size=len(tickets)) as span:
            # An earlier group (or a concurrent in-process caller) may
            # have proven some of these while they queued.
            pending: dict[str, list[_Ticket]] = {}
            for ticket in tickets:
                cached = self.service.query_cache.get(
                    ticket.sql, ticket.effective_round, ticket.root)
                if cached is not None:
                    outcomes.append((ticket, cached))
                else:
                    pending.setdefault(ticket.sql, []).append(ticket)
            if not pending:
                span.set("strategy", "cached")
                return outcomes
            sqls = list(pending)
            round_index = tickets[0].round_index
            if self._batch_prover is not None and len(sqls) > 1:
                span.set("strategy", "batched")
                results = self._prove_batched(sqls, round_index,
                                              registry)
            else:
                span.set("strategy", "serial")
                results = [self._prove_serial(sql, round_index)
                           for sql in sqls]
            for sql, result in zip(sqls, results):
                for ticket in pending[sql]:
                    outcomes.append((ticket, result))
        return outcomes

    def _prove_batched(self, sqls: list[str],
                       round_index: int | None,
                       registry: Any) -> list[Any]:
        """One shared-scan batch, with one retry for faulted members.

        Retrying re-submits the *same* jobs: completed partitions and
        merges replay instantly from the engine's content-addressed
        receipt cache (a cache hit resolves before the fault injector
        even fires), so only the faulted pieces re-prove.
        """
        counter = registry.counter(obs_names.QSERVE_BATCHED,
                                   ("outcome",))

        def attempt() -> list[Any]:
            state, receipt = self.service.query_state(round_index)
            partitions = self.service.query_partitions \
                or DEFAULT_BATCH_PARTITIONS
            if len(state) <= 1:
                # A 1-entry state cannot be partitioned; prove each
                # query serially (still off-loop, still cached).
                return [self._prove_serial(sql, round_index)
                        for sql in sqls]
            return self._batch_prover.prove_batch(
                sqls, state, receipt, partitions)

        try:
            results = attempt()
        except Exception as exc:
            logger.warning("batch of %d queries faulted (%s); "
                           "retrying from cached partitions",
                           len(sqls), exc)
            counter.inc(outcome="retry")
            try:
                results = attempt()
            except Exception as exc2:
                counter.inc(len(sqls), outcome="failed")
                return [exc2] * len(sqls)
        if any(isinstance(result, Exception) for result in results):
            # Per-query merge faults: retry once; everything that
            # already proved replays from the receipt cache.
            counter.inc(outcome="retry")
            try:
                retried = attempt()
            except Exception:
                retried = results
            results = [result if not isinstance(result, Exception)
                       else retried[index]
                       for index, result in enumerate(results)]
        for result in results:
            if isinstance(result, Exception):
                counter.inc(outcome="failed")
            else:
                counter.inc(outcome="proven")
                self.service.query_cache.put(result)
        return results

    def _prove_serial(self, sql: str,
                      round_index: int | None) -> Any:
        """One query through the ordinary service path (handles its
        own caching); exceptions become that query's answer."""
        try:
            return self.service.answer_query(sql, round_index)
        except Exception as exc:
            return exc

    # -- internals -----------------------------------------------------------

    def _gauge(self) -> None:
        obs.registry().gauge(obs_names.QSERVE_INFLIGHT).set(
            self._admission.inflight)


__all__ = [
    "DEFAULT_BATCH_PARTITIONS",
    "ENV_QSERVE_BATCH",
    "QueryService",
    "env_qserve_batch",
]
