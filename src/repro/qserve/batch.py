"""Batched query proving: one partition scan, N query receipts.

The per-query cost of partitioned proving
(:meth:`~repro.core.query_proof.QueryProver.prove_query_partitioned`)
is dominated by the partition scans — re-hashing the subtree against
the committed root and decoding every entry.  When several tenants ask
different questions about the *same* committed round, that work is
identical across them; only the evaluation differs.

:class:`BatchQueryProver` exploits this with the two batch guests:

* one ``query_batch_partition_guest`` job per aligned slot range scans
  and binds the range once, then evaluates **every** query of the batch
  over the shared entry views (marginal per-query cost: evaluation
  only);
* one ``query_batch_merge_guest`` job per query folds that query's
  partial frames into a journal **byte-identical** to the single-query
  guests' — so each tenant still receives its own standalone,
  independently verifiable receipt, and the verifier cannot tell (nor
  needs to care) that the answer was batch-proven.

Both stages ride the engine work queue via
:meth:`~repro.engine.scheduler.ProvingEngine.submit_fanout_multi`: the
merge jobs are submitted from the completion callback the moment the
last partition lands, and recurring partitions replay from the
content-addressed receipt cache — which is also what makes retrying a
faulted batch cheap (only the faulted pieces re-prove).
"""

from __future__ import annotations

import time
from typing import Any

from ..errors import ConfigurationError, ProofError
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..zkvm import ExecutorEnvBuilder, ProverOpts, Receipt
from ..zkvm.recursion import resolve, resolve_all


class BatchQueryProver:
    """Prove several queries over one committed state in one fan-out."""

    def __init__(self, engine: Any,
                 prover_opts: ProverOpts | None = None) -> None:
        if engine is None:
            raise ConfigurationError(
                "batched query proving needs a ProvingEngine")
        self._engine = engine
        self._opts = prover_opts or engine.opts

    def prove_batch(self, sqls: list[str], state: Any,
                    agg_receipt: Receipt,
                    num_partitions: int) -> list[Any]:
        """Prove every query in ``sqls`` against ``state``.

        Returns one entry per query, **in order**: a
        :class:`~repro.core.query_proof.QueryResponse` on success or
        the ``Exception`` that query's merge died with.  A *partition*
        failure (or a failure building the merges) poisons the whole
        batch and raises — no query can be answered without the shared
        scan.  ``sqls`` must be unique: each query's merge selects its
        frame by batch position, so duplicates would just prove the
        same receipt twice (the caller dedupes and fans the response
        back out).
        """
        if not sqls:
            raise ConfigurationError("batch needs at least one query")
        if len(set(sqls)) != len(sqls):
            raise ConfigurationError("batch queries must be unique")
        if num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        from ..core.aggregation import make_receipt_binding
        from ..core.guest_programs import (
            query_batch_merge_guest,
            query_batch_partition_guest,
        )
        from ..core.planner import partition_layout
        from ..core.query_proof import _build_response
        from ..engine.jobs import ProofJob

        size = len(state)
        if size == 0:
            raise ProofError(
                "cannot batch-prove queries over an empty CLog")
        chunk_po2, count = partition_layout(size, num_partitions)
        chunk = 1 << chunk_po2
        entries = state.entries_in_slot_order()
        tree = state.merkle_map.tree
        binding = make_receipt_binding(agg_receipt)

        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_QUERY_PARALLEL_ROUND,
                               partitions=count,
                               queries=len(sqls)) as outer:
            jobs = []
            for index in range(count):
                lo = index << chunk_po2
                hi = min(size, lo + chunk)
                builder = ExecutorEnvBuilder()
                builder.write({
                    "queries": list(sqls),
                    "partition": index,
                    "num_partitions": count,
                    "chunk_po2": chunk_po2,
                    "start": lo,
                    "count": hi - lo,
                    "siblings": list(
                        tree.prove_subtree(chunk_po2, index).siblings),
                })
                builder.write(binding)
                for entry in entries[lo:hi]:
                    builder.write({"key": entry.key.pack(),
                                   "payload": entry.to_payload()})
                jobs.append(ProofJob.from_parts(
                    query_batch_partition_guest, builder.build(),
                    self._opts))

            # Populated by build_merges on the completion-callback
            # thread; reads below are ordered after it by
            # merge_ready/merge_futures.
            resolved: list[Receipt] = []

            def build_merges(results: list[Any]) -> list[Any]:
                bindings = []
                for result in results:
                    part_receipt = resolve(result.receipt, agg_receipt)
                    resolved.append(part_receipt)
                    bindings.append(make_receipt_binding(part_receipt))
                merge_jobs = []
                for query_index, sql in enumerate(sqls):
                    merge_builder = ExecutorEnvBuilder()
                    merge_builder.write({
                        "query": sql,
                        "query_index": query_index,
                        "num_partitions": count,
                    })
                    for part_binding in bindings:
                        merge_builder.write(part_binding)
                    merge_jobs.append(ProofJob.from_parts(
                        query_batch_merge_guest, merge_builder.build(),
                        self._opts))
                return merge_jobs

            schedule = self._engine.submit_fanout_multi(jobs,
                                                        build_merges)
            partition_cycles = 0
            for index, future in enumerate(schedule.partition_futures):
                with obs.tracer().span(
                        obs_names.SPAN_QUERY_PARALLEL_PARTITION,
                        partition=index) as span:
                    result = future.result()
                    span.add_cycles(result.stats.total_cycles)
                    span.set("cached", result.cached)
                    partition_cycles += result.stats.total_cycles
            schedule.merge_ready.wait()
            if not schedule.merge_futures:
                if schedule.merge_future is not None:
                    # build_merges itself raised; the exception was
                    # parked on a pre-failed future.
                    schedule.merge_future.result()
                raise ProofError("batch merges were never submitted")

            responses: list[Any] = []
            merge_cycles = 0
            for query_index, future in enumerate(
                    schedule.merge_futures):
                with obs.tracer().span(
                        obs_names.SPAN_QUERY_PARALLEL_MERGE,
                        partitions=count,
                        query=query_index) as span:
                    try:
                        merge_result = future.result()
                    except Exception as exc:
                        # One query's merge death must not take down
                        # its batch-mates; surface it per-query.
                        responses.append(exc)
                        continue
                    span.add_cycles(merge_result.stats.total_cycles)
                    merge_cycles += merge_result.stats.total_cycles
                    receipt = resolve_all(merge_result.receipt,
                                          resolved)
                    responses.append(
                        _build_response(sqls[query_index], receipt))
            outer.add_cycles(partition_cycles + merge_cycles)
        registry = obs.registry()
        proven = sum(1 for r in responses
                     if not isinstance(r, Exception))
        registry.counter(obs_names.QUERY_PROOFS).inc(proven)
        registry.counter(obs_names.QUERY_PARTITIONS).inc(count)
        registry.histogram(obs_names.QUERY_SECONDS).observe(
            time.perf_counter() - start)
        return responses


__all__ = ["BatchQueryProver"]
