"""The fold frontier: a dyadic binary counter over delta receipts.

Each ingested delta becomes a height-0 :class:`FrontierNode`.  Pushing a
node that collides with an equal-height neighbour triggers a fold (the
classic binary-counter carry), so at any moment the frontier holds at
most ``log2(deltas) + 1`` receipts — exactly the state a crashed prover
needs to resume a half-proven round without re-proving folded deltas,
which is why nodes have a wire form and ride the service checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import CheckpointError
from ..zkvm import Receipt


@dataclass(frozen=True)
class FrontierNode:
    """One pending subtree of the round's fold tree.

    ``receipt`` is an *unconditional* delta or fold receipt covering the
    contiguous delta range ``[seq_lo, seq_hi]``; ``header`` is its
    decoded streamed journal header (round, prev/new roots, sizes, the
    windows consumed).  ``height`` drives the binary-counter carry rule
    only — it is not part of the proven statement.
    """

    receipt: Receipt
    header: dict[str, Any]
    height: int
    seq_lo: int
    seq_hi: int

    def to_wire(self) -> dict[str, Any]:
        return {
            "receipt": self.receipt.to_wire(),
            "height": self.height,
            "seq_lo": self.seq_lo,
            "seq_hi": self.seq_hi,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any],
                  header: dict[str, Any]) -> "FrontierNode":
        try:
            return cls(receipt=Receipt.from_wire(wire["receipt"]),
                       header=header,
                       height=wire["height"],
                       seq_lo=wire["seq_lo"],
                       seq_hi=wire["seq_hi"])
        except (KeyError, TypeError) as exc:
            raise CheckpointError(
                f"malformed frontier node: {exc}") from exc


#: fold_fn(left, right_or_None, final) -> merged node.  ``right`` is
#: ``None`` for the single-child promotion fold of a one-delta round.
FoldFn = Callable[[FrontierNode, "FrontierNode | None", bool],
                  FrontierNode]


class FoldFrontier:
    """Pending delta/fold receipts for the open round, oldest first."""

    def __init__(self,
                 nodes: "list[FrontierNode] | None" = None) -> None:
        self._nodes: list[FrontierNode] = list(nodes or [])

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> tuple[FrontierNode, ...]:
        return tuple(self._nodes)

    @property
    def next_seq(self) -> int:
        return self._nodes[-1].seq_hi + 1 if self._nodes else 0

    def push(self, node: FrontierNode, fold: FoldFn) -> None:
        """Append a delta node, folding equal-height carries eagerly."""
        if node.seq_lo != self.next_seq:
            raise CheckpointError(
                f"frontier expected delta {self.next_seq}, got "
                f"{node.seq_lo}")
        # Carry on a scratch list and commit only once every fold job
        # succeeded: a transient worker death mid-carry must leave the
        # frontier exactly as it was, so the caller can retry the push
        # (the delta receipt replays from the cache; only the faulted
        # fold is proven again).
        nodes = self._nodes + [node]
        while len(nodes) >= 2 and nodes[-1].height == nodes[-2].height:
            right = nodes.pop()
            left = nodes.pop()
            nodes.append(fold(left, right, False))
        self._nodes = nodes

    def close(self, fold: FoldFn) -> FrontierNode:
        """Fold everything left into the round's final receipt.

        The remaining nodes (strictly decreasing heights, oldest first)
        merge left-to-right; the last merge — or a single-child
        promotion when only one node remains — carries ``final=True``
        and commits the monolithic journal.  The frontier empties.
        """
        if not self._nodes:
            raise CheckpointError("cannot close an empty frontier")
        nodes = list(self._nodes)
        acc = nodes[0]
        if len(nodes) == 1:
            top = fold(acc, None, True)
        else:
            for nxt in nodes[1:-1]:
                acc = fold(acc, nxt, False)
            top = fold(acc, nodes[-1], True)
        # Empty only after every fold proved — a faulted close keeps
        # the frontier intact so it can simply be closed again.
        self._nodes = []
        return top
