"""The stream scheduler: prove deltas as windows commit, fold eagerly.

:class:`StreamingAggregator` is the incremental counterpart of
:class:`~repro.core.aggregation.Aggregator`.  Instead of waiting for the
round boundary and proving the whole window monolithically, it

1. proves each committed batch as a ``delta_aggregation_guest`` receipt
   the moment it arrives (``ingest``), pricing O(batch) guest work;
2. pushes the delta onto the :class:`~repro.stream.frontier.FoldFrontier`,
   which folds equal-height subtrees eagerly (``fold_guest``), so fold
   work overlaps the stream instead of stacking up at the boundary;
3. closes the round (``close``) by folding the remaining frontier into
   one receipt whose journal is **byte-identical** to the monolithic
   guest's — verifiers and downstream caches cannot tell the difference.

Every delta and fold is routed through the engine's
:class:`~repro.engine.pool.PooledProver`, so a replayed delta (same
windows, same starting state) is a receipt-cache hit rather than a
re-prove — the property the chaos suite exercises.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from ..core.aggregation import (
    AggregationResult,
    Aggregator,
    RouterWindowInput,
    make_receipt_binding,
)
from ..core.clog import CLogState
from ..core.guest_programs import delta_aggregation_guest, fold_guest
from ..core.policy import DEFAULT_POLICY, AggregationPolicy
from ..core.witness import AggregationWitness, build_witness
from ..errors import ChainError, ProofError
from ..netflow.records import NetFlowRecord
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..serialization import decode
from ..zkvm import ExecutorEnvBuilder, ProverOpts, Receipt
from ..zkvm.executor import ExecutorInput
from ..zkvm.prover import ProveStats
from ..zkvm.recursion import resolve, resolve_all
from .frontier import FoldFrontier, FrontierNode


#: Environment opt-in for streaming composition; like
#: ``REPRO_QUERY_PARTITIONS`` it only tunes a service that already
#: built an engine — see :class:`repro.core.prover_service.ProverService`.
ENV_STREAM = "REPRO_STREAM"


def env_stream() -> bool:
    """``True`` when ``REPRO_STREAM`` requests streaming composition."""
    return os.environ.get(ENV_STREAM, "").strip().lower() \
        not in ("", "0", "false", "no")


def order_windows(
        windows: list[RouterWindowInput]) -> list[RouterWindowInput]:
    """The canonical guest processing order: by window, then router.

    Shared by the monolithic aggregators and the streaming pipeline —
    byte-identity of the final journal depends on both sides walking
    records identically.
    """
    return sorted(windows, key=lambda w: (w.window_index, w.router_id))


def batch_windows(windows: list[RouterWindowInput]
                  ) -> list[list[RouterWindowInput]]:
    """Split a round's windows into per-window-index delta batches.

    This is the natural streaming grain: all routers of window *i*
    commit, then window *i + 1* starts.  An empty round still yields one
    empty batch so the round can be proven (as a zero-window delta plus
    a promotion fold).
    """
    batches: dict[int, list[RouterWindowInput]] = {}
    for window in order_windows(windows):
        batches.setdefault(window.window_index, []).append(window)
    if not batches:
        return [[]]
    return [batches[index] for index in sorted(batches)]


def build_delta_input(policy: AggregationPolicy, round_index: int,
                      seq: int, witness: AggregationWitness,
                      ordered: list[RouterWindowInput],
                      prev_binding: dict[str, Any] | None
                      ) -> ExecutorInput:
    """Frames for one ``delta_aggregation_guest`` execution.

    ``prev_binding`` is required exactly when ``seq == 0`` and
    ``round_index > 0`` — only the round's first delta performs step 1.
    """
    builder = ExecutorEnvBuilder()
    builder.write({
        "round": round_index,
        "policy": policy.to_wire(),
        "prev_root": witness.prev_root,
        "prev_size": witness.prev_size,
        "prev_depth": witness.prev_depth,
        "num_routers": len(ordered),
        "num_ops": witness.op_count,
        "seq": seq,
    })
    if seq == 0 and round_index > 0:
        if prev_binding is None:
            raise ChainError(
                f"delta 0 of round {round_index} requires the round "
                f"{round_index - 1} receipt binding")
        builder.write(prev_binding)
    for window in ordered:
        builder.write({
            "router_id": window.router_id,
            "window_index": window.window_index,
            "commitment": window.commitment,
            "blobs": list(window.blobs),
        })
    for op in witness.ops:
        builder.write(op)
    return builder.build()


def build_fold_input(policy: AggregationPolicy, round_index: int,
                     bindings: list[dict[str, Any]],
                     final: bool) -> ExecutorInput:
    """Frames for one ``fold_guest`` execution over 1-2 child bindings."""
    builder = ExecutorEnvBuilder()
    builder.write({
        "round": round_index,
        "policy": policy.to_wire(),
        "num_children": len(bindings),
        "final": final,
    })
    for binding in bindings:
        builder.write(binding)
    return builder.build()


def _combine_stats(parts: list[ProveStats]) -> ProveStats:
    breakdown: dict[str, int] = {}
    for part in parts:
        for category, cycles in part.cycle_breakdown.items():
            breakdown[category] = breakdown.get(category, 0) + cycles
    return ProveStats(
        total_cycles=sum(p.total_cycles for p in parts),
        padded_cycles=sum(p.padded_cycles for p in parts),
        segment_count=sum(p.segment_count for p in parts),
        sha_compressions=sum(p.sha_compressions for p in parts),
        wall_seconds=sum(p.wall_seconds for p in parts),
        cycle_breakdown=breakdown,
    )


@dataclass(frozen=True)
class StreamedRoundInfo:
    """Aggregate prove info for a streamed round (duck-``ProveInfo``).

    ``stats`` sums every delta and fold executed this round; the
    per-job results keep their individual stats and ``cached`` flags so
    callers (and the chaos suite) can see which legs were replayed from
    the receipt cache.
    """

    receipt: Receipt
    stats: ProveStats
    delta_results: tuple[Any, ...]
    fold_results: tuple[Any, ...]

    @property
    def cached_deltas(self) -> int:
        return sum(1 for r in self.delta_results
                   if getattr(r, "cached", False))

    @property
    def cached_folds(self) -> int:
        return sum(1 for r in self.fold_results
                   if getattr(r, "cached", False))


class StreamingAggregator:
    """Incremental round proving over a fold frontier.

    Two usage styles:

    * **streaming** — ``ingest(state, batch, prev_receipt)`` per
      committed batch while the round is open, then ``close()`` at the
      round boundary;
    * **drop-in** — ``aggregate(state, windows, prev_receipt)`` with the
      monolithic :class:`~repro.core.aggregation.Aggregator` signature,
      which batches per window index, streams them through, and (with
      ``crossover=True``) falls back to the monolithic guest whenever
      the planner prices it cheaper for this round's shape.

    ``engine`` must be a :class:`~repro.engine.scheduler.ProvingEngine`;
    all proving goes through its pool and receipt cache.
    """

    def __init__(self, policy: AggregationPolicy = DEFAULT_POLICY,
                 prover_opts: ProverOpts | None = None,
                 engine: Any = None,
                 crossover: bool = False) -> None:
        if engine is None:
            from ..engine import ProvingEngine
            engine = ProvingEngine(policy=policy,
                                   prover_opts=prover_opts
                                   or ProverOpts.groth16())
        self.policy = policy
        self.engine = engine
        self._opts = prover_opts or ProverOpts.groth16()
        self._prover = engine.prover(self._opts)
        self.crossover = crossover
        self._fallback: Aggregator | None = None
        self._reset()

    def _reset(self) -> None:
        self._frontier = FoldFrontier()
        self._open_round: int | None = None
        self._work: CLogState | None = None
        self._record_count = 0
        self._windows_seen = 0
        self._delta_results: list[Any] = []
        self._fold_results: list[Any] = []

    # -- introspection -------------------------------------------------------

    @property
    def open_round(self) -> int | None:
        """The round currently being streamed, or ``None``."""
        return self._open_round

    @property
    def frontier(self) -> FoldFrontier:
        return self._frontier

    @property
    def pending_deltas(self) -> int:
        """Deltas ingested into the open round so far."""
        return self._frontier.next_seq

    @property
    def work_state(self) -> CLogState | None:
        """The open round's evolving CLog state (ingested-so-far)."""
        return self._work

    @property
    def record_count(self) -> int:
        """Records ingested into the open round so far."""
        return self._record_count

    # -- streaming API -------------------------------------------------------

    def ingest(self, state: CLogState,
               windows: list[RouterWindowInput],
               prev_receipt: Receipt | None = None) -> FrontierNode:
        """Prove one delta batch and push it onto the frontier.

        ``state`` opens the round on the first call; later calls only
        check it still names the same round.  ``prev_receipt`` is
        consumed by delta 0 (step-1 binding) and ignored afterwards.
        """
        if self._open_round is None:
            if state.round > 0 and prev_receipt is None:
                raise ChainError(
                    f"round {state.round} requires the round "
                    f"{state.round - 1} receipt")
            self._open_round = state.round
            self._work = state.clone()
        elif state.round != self._open_round:
            raise ChainError(
                f"round {state.round} windows ingested while round "
                f"{self._open_round} is still open")
        seq = self._frontier.next_seq
        ordered = order_windows(windows)
        records = [NetFlowRecord.from_wire(decode(blob))
                   for window in ordered for blob in window.blobs]
        witness = build_witness(self._work, records, self.policy)
        binding = None
        if seq == 0 and self._open_round > 0:
            binding = make_receipt_binding(prev_receipt)
        env_input = build_delta_input(self.policy, self._open_round,
                                      seq, witness, ordered, binding)
        with obs.tracer().span(obs_names.SPAN_STREAM_DELTA,
                               round=self._open_round, seq=seq,
                               windows=len(ordered),
                               records=len(records)) as span:
            result = self._prover.prove(delta_aggregation_guest,
                                        env_input)
            span.add_cycles(result.stats.total_cycles)
            span.set("cached", bool(getattr(result, "cached", False)))
        receipt = result.receipt
        if seq == 0 and self._open_round > 0:
            receipt = resolve(receipt, prev_receipt)
        header = next(receipt.journal.values(), None)
        if not isinstance(header, dict) \
                or header.get("new_root") != witness.new_root:
            raise ProofError(
                "delta guest root diverged from the host witness — "
                "host/guest aggregation logic is out of sync")
        node = FrontierNode(receipt=receipt, header=header, height=0,
                            seq_lo=seq, seq_hi=seq)
        # Push (which may fire carry folds) before recording anything:
        # a faulted fold aborts the whole ingest with the frontier and
        # bookkeeping untouched, so the retry replays this delta from
        # the receipt cache and re-proves only the faulted fold.
        self._frontier.push(node, self._fold_nodes)
        self._delta_results.append(result)
        obs.registry().counter(
            obs_names.STREAM_DELTAS, ("cached",)).inc(
            cached=str(bool(getattr(result, "cached", False))).lower())
        obs.registry().gauge(obs_names.STREAM_FRONTIER).set(
            len(self._frontier))
        # The witness bumped the round on its result state; the round is
        # still open, so pin it back until close().
        witness.new_state.round = self._open_round
        self._work = witness.new_state
        self._record_count += len(records)
        self._windows_seen += len(ordered)
        return node

    def close(self) -> AggregationResult:
        """Fold the frontier down and emit the round's final receipt.

        The final fold's journal is byte-identical to the monolithic
        aggregation guest's, so the result chains like any other round.
        """
        if self._open_round is None or self._work is None:
            raise ChainError("no streaming round is open")
        final_node = self._frontier.close(self._fold_nodes)
        header = final_node.header
        if header.get("new_root") != self._work.root:
            raise ProofError(
                "streamed round root diverged from the host state — "
                "host/guest aggregation logic is out of sync")
        new_state = self._work
        new_state.round = self._open_round + 1
        stats = _combine_stats(
            [r.stats for r in self._delta_results]
            + [r.stats for r in self._fold_results])
        info = StreamedRoundInfo(
            receipt=final_node.receipt,
            stats=stats,
            delta_results=tuple(self._delta_results),
            fold_results=tuple(self._fold_results),
        )
        result = AggregationResult(
            round=self._open_round,
            receipt=final_node.receipt,
            info=info,
            new_state=new_state,
            record_count=self._record_count,
            new_root=header["new_root"],
        )
        registry = obs.registry()
        registry.counter(obs_names.STREAM_ROUNDS, ("strategy",)).inc(
            strategy="streamed")
        registry.gauge(obs_names.STREAM_FRONTIER).set(0)
        self._reset()
        return result

    def abandon(self) -> None:
        """Drop the open round's frontier (e.g. a superseding restore)."""
        self._reset()

    @contextmanager
    def guarded(self):
        """Roll the streamer back to its entry state if the body fails.

        Failed proofs must leave the round exactly as it was (the
        service's ``prove_round`` contract): deltas proven before the
        fault stay in the receipt cache, so a retry replays them for
        free and re-proves only what actually died — but nothing
        half-ingested may survive in the frontier or the bookkeeping.
        """
        snapshot = (FoldFrontier(self._frontier.nodes),
                    self._open_round, self._work, self._record_count,
                    self._windows_seen, len(self._delta_results),
                    len(self._fold_results))
        try:
            yield
        except Exception:
            (self._frontier, self._open_round, self._work,
             self._record_count, self._windows_seen,
             num_deltas, num_folds) = snapshot
            del self._delta_results[num_deltas:]
            del self._fold_results[num_folds:]
            obs.registry().gauge(obs_names.STREAM_FRONTIER).set(
                len(self._frontier))
            raise

    # -- drop-in API ---------------------------------------------------------

    def aggregate(self, state: CLogState,
                  windows: list[RouterWindowInput],
                  prev_receipt: Receipt | None) -> AggregationResult:
        """Prove one round with the monolithic aggregator's signature.

        Windows are batched per window index and streamed; an already
        open round absorbs the windows as further deltas before
        closing.  With ``crossover=True`` and no open round, the
        planner's cost model may route the whole round through the
        monolithic guest instead (identical journal either way).
        """
        batches = batch_windows(windows)
        if self._open_round is None and self.crossover \
                and self._crossover_prefers_monolithic(state, batches,
                                                       prev_receipt):
            obs.registry().counter(obs_names.STREAM_ROUNDS,
                                   ("strategy",)).inc(
                strategy="monolithic")
            if self._fallback is None:
                self._fallback = Aggregator(self.policy, self._opts,
                                            prover=self._prover)
            return self._fallback.aggregate(state, windows, prev_receipt)
        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_AGG_ROUND,
                               round=state.round,
                               windows=len(windows),
                               strategy="streamed") as span, \
                self.guarded():
            for batch in batches:
                self.ingest(state, batch, prev_receipt)
            result = self.close()
            span.add_cycles(result.info.stats.total_cycles)
            span.set("records", result.record_count)
        registry = obs.registry()
        registry.counter(obs_names.AGG_ROUNDS, ("strategy",)).inc(
            strategy="streamed")
        registry.counter(obs_names.AGG_RECORDS, ("strategy",)).inc(
            result.record_count, strategy="streamed")
        registry.histogram(obs_names.AGG_SECONDS,
                           ("strategy",)).observe(
            time.perf_counter() - start, strategy="streamed")
        return result

    def _crossover_prefers_monolithic(
            self, state: CLogState,
            batches: list[list[RouterWindowInput]],
            prev_receipt: Receipt | None) -> bool:
        from ..core.planner import choose_round_strategy
        strategy = choose_round_strategy(
            state, batches, policy=self.policy,
            prev_receipt=prev_receipt)
        return strategy == "monolithic"

    # -- checkpoint / restore ------------------------------------------------

    def resume(self, round_index: int, work_state: CLogState,
               nodes: list[FrontierNode], record_count: int,
               windows_seen: int = 0) -> None:
        """Adopt a persisted frontier mid-round (crash recovery).

        ``work_state`` must be the CLog state *after* every delta in
        ``nodes`` was applied; the caller (the prover service) verifies
        the receipts and continuity before handing them over.
        """
        if self._open_round is not None:
            raise ChainError(
                f"cannot resume: round {self._open_round} is open")
        if nodes and nodes[0].seq_lo != 0:
            raise ChainError(
                "cannot resume a frontier that does not start at delta 0")
        self._frontier = FoldFrontier(nodes)
        self._open_round = round_index
        self._work = work_state.clone()
        self._work.round = round_index
        self._record_count = record_count
        self._windows_seen = windows_seen
        obs.registry().gauge(obs_names.STREAM_FRONTIER).set(
            len(self._frontier))

    # -- fold plumbing -------------------------------------------------------

    def _fold_nodes(self, left: FrontierNode,
                    right: FrontierNode | None,
                    final: bool) -> FrontierNode:
        children = [left] if right is None else [left, right]
        bindings = [make_receipt_binding(node.receipt)
                    for node in children]
        env_input = build_fold_input(self.policy, self._open_round,
                                     bindings, final)
        with obs.tracer().span(obs_names.SPAN_STREAM_FOLD,
                               round=self._open_round,
                               children=len(children),
                               final=final) as span:
            result = self._prover.prove(fold_guest, env_input)
            span.add_cycles(result.stats.total_cycles)
            span.set("cached", bool(getattr(result, "cached", False)))
        receipt = resolve_all(result.receipt,
                              [node.receipt for node in children])
        header = next(receipt.journal.values(), None)
        if not isinstance(header, dict):
            raise ProofError("fold journal missing header")
        self._fold_results.append(result)
        obs.registry().counter(
            obs_names.STREAM_FOLDS, ("cached", "kind")).inc(
            cached=str(bool(getattr(result, "cached", False))).lower(),
            kind="final" if final else "merge")
        return FrontierNode(
            receipt=receipt,
            header=header,
            height=max(node.height for node in children) + 1,
            seq_lo=left.seq_lo,
            seq_hi=children[-1].seq_hi,
        )
