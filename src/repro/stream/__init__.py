"""repro.stream: streaming/incremental proof composition.

ROADMAP item 2, in the streaming-verification spirit of
Cormode-Mitzenmacher-Thaler with the recursive folding of Kuznetsov et
al.: instead of proving a round's whole window in one monolithic guest
execution after it closes, prove small *deltas* as batches of RLogs
commit and fold the delta receipts recursively — per-round prove cost
becomes O(delta) plus a logarithmic fold tree, regardless of how large
the window has grown.

* :mod:`~repro.stream.frontier` — :class:`FoldFrontier`, the dyadic
  binary-counter of pending delta/fold receipts (the ``submit_fanout``
  partition/merge shape applied across *time* instead of slot ranges);
* :mod:`~repro.stream.pipeline` — :class:`StreamingAggregator`, which
  proves deltas through the engine's pool + receipt cache, folds them
  as heights collide, and closes the round with a ``final`` fold whose
  journal is byte-identical to the monolithic aggregation guest's.

See ``docs/PERFORMANCE.md`` ("Streaming composition") for the design.
"""

from .frontier import FoldFrontier, FrontierNode
from .pipeline import StreamingAggregator, StreamedRoundInfo

__all__ = [
    "FoldFrontier",
    "FrontierNode",
    "StreamedRoundInfo",
    "StreamingAggregator",
]
