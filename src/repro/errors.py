"""Exception hierarchy for the verifiable-telemetry library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole family with one clause.  The hierarchy mirrors
the system's trust boundaries:

* :class:`IntegrityError` and its children signal that *committed data* no
  longer matches its commitment — the situation the paper's Figure 3
  experiment exercises.
* :class:`ProofError` and its children signal problems in the zkVM proof
  pipeline itself (malformed receipts, failed verification, guest aborts).
* The remaining classes are conventional operational errors (bad queries,
  storage failures, misconfiguration).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or used with invalid parameters."""


class SerializationError(ReproError):
    """A value could not be canonically encoded or decoded."""


# ---------------------------------------------------------------------------
# Integrity failures (tamper evidence)
# ---------------------------------------------------------------------------

class IntegrityError(ReproError):
    """Committed data failed an integrity check."""


class CommitmentMismatch(IntegrityError):
    """A raw-log hash does not match its published commitment (Fig. 3)."""

    def __init__(self, router_id: str, window_index: int,
                 expected: str, actual: str) -> None:
        self.router_id = router_id
        self.window_index = window_index
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"hash commitment mismatch for router {router_id!r} window "
            f"{window_index}: published {expected} != recomputed {actual}"
        )


class MerkleError(IntegrityError):
    """Generic Merkle-tree failure (bad proof shape, unknown leaf...)."""


class MerkleInclusionError(MerkleError):
    """A Merkle inclusion proof failed to recompute the committed root."""


class MissingCommitment(IntegrityError):
    """No published commitment exists for the requested window."""


# ---------------------------------------------------------------------------
# Proof-pipeline failures
# ---------------------------------------------------------------------------

class ProofError(ReproError):
    """Base class for zkVM proving/verification failures."""


class GuestAbort(ProofError):
    """The guest program aborted; no proof can be produced.

    This is how Algorithm 1's ``abort`` lines surface: an integrity check
    failed *inside* the zkVM, so proof generation stops (the honest prover
    cannot produce a receipt for a failed execution).
    """

    def __init__(self, reason: str, cause: Exception | None = None) -> None:
        self.reason = reason
        self.cause = cause
        super().__init__(f"guest aborted: {reason}")


class VerificationError(ProofError):
    """A receipt failed verification."""


class ImageIdMismatch(VerificationError):
    """Receipt was produced by a different guest program than expected."""


class JournalMismatch(VerificationError):
    """Receipt journal does not match the digest bound in the claim."""


class SealError(VerificationError):
    """The cryptographic seal failed to verify."""


class ChainError(ProofError):
    """The aggregation proof chain is broken (§4.1 step 1)."""


class PoolShutdown(ProofError):
    """A job was submitted to a :class:`~repro.engine.pool.ProverPool`
    after ``shutdown()``.

    Typed (rather than a bare :class:`ProofError`) so schedulers can
    tell "the pool is gone, stop submitting" apart from "this proof
    failed" — the former is a lifecycle bug at the call site, the
    latter a per-job outcome worth retrying or quarantining.
    """


class ClusterUnavailable(ProofError):
    """No cluster node could take a job and local fallback is disabled.

    Only raised when :class:`~repro.cluster.ClusterDispatcher` is
    configured with ``local_fallback=False``; the default
    configuration degrades to in-process proving instead.
    """


# ---------------------------------------------------------------------------
# Operational errors
# ---------------------------------------------------------------------------

class QueryError(ReproError):
    """A telemetry query is malformed or unsupported."""


class QuerySyntaxError(QueryError):
    """The SQL-subset parser rejected the query text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class StorageError(ReproError):
    """The shared log store failed an operation."""


class CheckpointError(ReproError):
    """A prover checkpoint could not be written, read, or trusted.

    Raised by :meth:`repro.core.prover_service.ProverService.restore`
    when a snapshot is malformed, its chain does not link, its entries
    do not recompute the committed root, or its latest receipt fails
    verification — a restore never silently accepts unproven state.
    """


class SimulationError(ReproError):
    """The NetFlow simulator was driven into an invalid state."""


# ---------------------------------------------------------------------------
# Network / wire-protocol errors (repro.net)
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for wire-protocol and transport failures."""


class FrameError(NetworkError):
    """A wire frame is malformed."""


class TruncatedFrame(FrameError):
    """The connection ended (or data ran out) mid-frame."""


class FrameTooLarge(FrameError):
    """A frame's declared payload exceeds the configured maximum."""


class ProtocolError(NetworkError):
    """A well-framed message violates the message protocol
    (bad magic, unsupported version, malformed envelope...)."""


class ConnectionFailed(NetworkError):
    """Could not establish or keep a connection to the peer."""


class RequestTimeout(NetworkError):
    """A request did not complete within its deadline."""


class RemoteError(NetworkError):
    """The server processed a request and returned an error envelope.

    ``code`` is the wire error code (see ``repro.net.messages``); the
    original server-side exception class, when it maps to a code with a
    message-only constructor, is re-raised as that class instead.
    """

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"remote error [{code}]: {message}")


class AdmissionRejected(NetworkError):
    """The query service refused to admit a request (backpressure).

    Raised by :class:`repro.qserve.QueryService` when a tenant exceeds
    its token-bucket rate limit or the bounded admission queue is full.
    Carries a dedicated wire code (``admission-rejected``) so clients
    can tell "slow down and retry later" apart from every other
    failure; the server never queues such a request.
    """


class FrameFault(NetworkError):
    """An injected wire-frame *behaviour* (repro.faults ``net.frame``).

    Unlike every other injected error this is **control flow, not an
    outcome**: the fault site raises it to tell the transport wrapper
    *what to do to the frame* (``action`` is one of ``drop``/``delay``/
    ``corrupt``/``disconnect``), and the wrapper translates the action
    into real wire behaviour whose consequences (timeouts, resets,
    decode failures) are what the code under test must survive.  It
    must never escape :func:`repro.faults.wire.frame_action`.
    """

    def __init__(self, action: str, message: str = "") -> None:
        self.action = action
        super().__init__(message or f"injected frame fault: {action}")


class RetryExhausted(NetworkError):
    """All retry attempts failed; ``__cause__`` is the last error."""

    def __init__(self, attempts: int, last_error: Exception) -> None:
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"request failed after {attempts} attempt(s): {last_error}")
