"""End-to-end system wiring (the §6 experimental setup in one object).

:class:`TelemetrySystem` glues the simulator, the shared store, the
bulletin board, the prover service and a verifier client together, and
:func:`build_paper_eval_system` reproduces the paper's configuration:
4 routers on a simplified topology, parallel log generation, a shared
SQL-style backend, and 5-second commitment windows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..commitments import BulletinBoard
from ..netflow import NetFlowSimulator, SimClock, SimulatorConfig
from ..netflow.generator import TrafficConfig
from ..netflow.topology import NetworkTopology
from ..storage import MemoryLogStore, SqliteLogStore
from ..storage.backend import LogStore
from ..zkvm import ProverOpts
from ..zkvm.costmodel import CostModel
from .policy import DEFAULT_POLICY, AggregationPolicy
from .prover_service import ProverService
from .verifier_client import VerifierClient


@dataclass
class SystemConfig:
    """Configuration mirroring the paper's evaluation defaults."""

    num_routers: int = 4
    commit_interval_ms: int = 5_000
    flows_per_tick: int = 20
    seed: int = 7
    backend: str = "memory"  # "memory" | "sqlite"
    sqlite_path: str = ":memory:"


class TelemetrySystem:
    """Simulator + prover + verifier, wired to shared storage."""

    def __init__(self, config: SystemConfig | None = None,
                 policy: AggregationPolicy = DEFAULT_POLICY,
                 prover_opts: ProverOpts | None = None,
                 topology: NetworkTopology | None = None,
                 traffic: TrafficConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self.store: LogStore = self._build_store()
        self.bulletin = BulletinBoard()
        self.clock = SimClock()
        sim_config = SimulatorConfig(
            num_routers=self.config.num_routers,
            commit_interval_ms=self.config.commit_interval_ms,
            flows_per_tick=self.config.flows_per_tick,
            traffic=traffic or TrafficConfig(seed=self.config.seed),
        )
        self.simulator = NetFlowSimulator(
            self.store, self.bulletin, self.clock, sim_config,
            topology=topology)
        self.prover = ProverService(self.store, self.bulletin, policy,
                                    prover_opts)
        self.verifier = VerifierClient(self.bulletin)
        self.cost_model = CostModel()

    def _build_store(self) -> LogStore:
        if self.config.backend == "memory":
            return MemoryLogStore()
        if self.config.backend == "sqlite":
            return SqliteLogStore(self.config.sqlite_path)
        raise ValueError(
            f"unknown backend {self.config.backend!r}")

    # -- convenience drives ----------------------------------------------------

    def generate(self, target_records: int) -> None:
        """Simulate until ≥ ``target_records`` exist, then flush commits."""
        self.simulator.run_until_records(target_records)
        self.simulator.flush()

    def aggregate_all(self) -> int:
        """Aggregate every committed window; returns the round count."""
        return len(self.prover.aggregate_all_committed())

    def query(self, sql: str):
        """Prove a query, verify it client-side, and return both."""
        response = self.prover.answer_query(sql)
        chain = self.verifier.verify_chain(self.prover.chain.receipts())
        verified = self.verifier.verify_query(response, chain[-1])
        return response, verified

    def close(self) -> None:
        self.store.close()


def build_paper_eval_system(target_records: int = 200,
                            seed: int = 7,
                            backend: str = "memory",
                            flows_per_tick: int = 20) -> TelemetrySystem:
    """The §6 setup, populated and committed, ready for aggregation."""
    system = TelemetrySystem(SystemConfig(
        seed=seed, backend=backend, flows_per_tick=flows_per_tick))
    system.generate(target_records)
    return system
