"""Parallel proof generation (§7 "Proof parallelization").

"NetFlow entries can be partitioned by flow ID or router ID, with
separate proofs generated in parallel.  These partial proofs can then be
merged into a single final proof."

:class:`ParallelAggregator` partitions the round's windows by router,
proves each partition with :data:`~repro.core.guest_programs.partition_guest`
concurrently, then proves a merge step that verifies every partition
claim in-guest and emits the combined root.  The modeled latency is
``max(partition prove times) + merge prove time`` versus the sequential
sum — the ablation benchmark sweeps the partition count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..hashing import Digest
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..zkvm import ExecutorEnvBuilder, ProveInfo, Prover, ProverOpts, Receipt
from ..zkvm.costmodel import CostModel, ProverBackend
from ..zkvm.recursion import resolve_all
from .aggregation import RouterWindowInput, make_receipt_binding
from .guest_programs import merge_guest, partition_guest
from .policy import DEFAULT_POLICY, AggregationPolicy


@dataclass(frozen=True)
class ParallelAggregationResult:
    """Receipts and latency model for one parallel round."""

    receipt: Receipt
    partition_infos: tuple[ProveInfo, ...]
    merge_info: ProveInfo
    new_root: Digest
    size: int

    def modeled_seconds(self, model: CostModel,
                        backend: ProverBackend =
                        ProverBackend.CPU_ZKVM) -> float:
        """End-to-end latency with partitions proven concurrently."""
        slowest = max(model.prove_seconds(info.stats, backend)
                      for info in self.partition_infos)
        return slowest + model.prove_seconds(self.merge_info.stats,
                                             backend)

    def sequential_seconds(self, model: CostModel,
                           backend: ProverBackend =
                           ProverBackend.CPU_ZKVM) -> float:
        """The same work proven one partition at a time."""
        total = sum(model.prove_seconds(info.stats, backend)
                    for info in self.partition_infos)
        return total + model.prove_seconds(self.merge_info.stats, backend)


class ParallelAggregator:
    """Partition → prove concurrently → merge in one guest."""

    def __init__(self, policy: AggregationPolicy = DEFAULT_POLICY,
                 prover_opts: ProverOpts | None = None,
                 max_workers: int | None = None) -> None:
        self.policy = policy
        self._opts = prover_opts or ProverOpts.succinct()
        self._max_workers = max_workers

    def aggregate(self, windows: list[RouterWindowInput],
                  num_partitions: int | None = None
                  ) -> ParallelAggregationResult:
        """Prove ``windows`` as partitioned partial aggregations.

        Partitions are router-aligned (a router's windows stay
        together, since a window commitment must be checked whole).
        """
        if not windows:
            raise ConfigurationError("no windows to aggregate")
        partitions = self._partition(windows, num_partitions)
        obs.registry().counter(obs_names.PARALLEL_PARTITIONS).inc(
            len(partitions))
        with obs.tracer().span(obs_names.SPAN_PARALLEL_ROUND,
                               partitions=len(partitions)):
            with ThreadPoolExecutor(
                    max_workers=self._max_workers) as pool:
                partition_infos = list(
                    pool.map(self._prove_partition,
                             range(len(partitions)), partitions))
            merge_info, receipt = self._prove_merge(partition_infos)
        header = next(receipt.journal.values())
        return ParallelAggregationResult(
            receipt=receipt,
            partition_infos=tuple(partition_infos),
            merge_info=merge_info,
            new_root=header["new_root"],
            size=header["size"],
        )

    # -- internals ---------------------------------------------------------------

    def _partition(self, windows: list[RouterWindowInput],
                   num_partitions: int | None
                   ) -> list[list[RouterWindowInput]]:
        by_router: dict[str, list[RouterWindowInput]] = {}
        for window in sorted(windows, key=lambda w: (w.router_id,
                                                     w.window_index)):
            by_router.setdefault(window.router_id, []).append(window)
        groups = list(by_router.values())
        if num_partitions is not None and num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        count = min(num_partitions or len(groups), len(groups))
        partitions: list[list[RouterWindowInput]] = \
            [[] for _ in range(count)]
        for index, group in enumerate(groups):
            partitions[index % count].extend(group)
        return partitions

    def _prove_partition(self, index: int,
                         windows: list[RouterWindowInput]) -> ProveInfo:
        builder = ExecutorEnvBuilder()
        builder.write({
            "partition": index,
            "policy": self.policy.to_wire(),
            "num_routers": len(windows),
        })
        for window in windows:
            builder.write({
                "router_id": window.router_id,
                "window_index": window.window_index,
                "commitment": window.commitment,
                "blobs": list(window.blobs),
            })
        with obs.tracer().span(obs_names.SPAN_PARALLEL_PARTITION,
                               partition=index,
                               routers=len(windows)) as span:
            info = Prover(self._opts).prove(partition_guest,
                                            builder.build())
            span.add_cycles(info.stats.total_cycles)
        return info

    def _prove_merge(self, partition_infos: list[ProveInfo]
                     ) -> tuple[ProveInfo, Receipt]:
        builder = ExecutorEnvBuilder()
        builder.write({
            "round": 0,
            "policy": self.policy.to_wire(),
            "num_partitions": len(partition_infos),
        })
        for info in partition_infos:
            builder.write(make_receipt_binding(info.receipt))
        with obs.tracer().span(obs_names.SPAN_PARALLEL_MERGE,
                               partitions=len(partition_infos)) as span:
            merge_info = Prover(self._opts).prove(merge_guest,
                                                  builder.build())
            span.add_cycles(merge_info.stats.total_cycles)
            receipt = resolve_all(
                merge_info.receipt,
                [info.receipt for info in partition_infos])
        return merge_info, receipt
