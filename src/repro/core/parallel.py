"""Parallel proof generation (§7 "Proof parallelization").

"NetFlow entries can be partitioned by flow ID or router ID, with
separate proofs generated in parallel.  These partial proofs can then be
merged into a single final proof."

:class:`ParallelAggregator` partitions the round's windows by router,
proves each partition with :data:`~repro.core.guest_programs.partition_guest`
concurrently, then proves a merge step that verifies every partition
claim in-guest and emits the combined root.  Proving runs on the
:mod:`repro.engine` pool — the ``process`` backend delivers *real*
multi-core wall-clock speedup, not just the modeled
``max(partition prove times) + merge prove time`` latency the ablation
benchmark sweeps — and partition receipts are replayed from the
content-addressed :class:`~repro.engine.cache.ReceiptCache` when the
same inputs recur.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.cache import ReceiptCache
from ..engine.jobs import JobResult
from ..engine.pool import BACKENDS, resolve_pool_config
from ..engine.scheduler import ProvingEngine
from ..errors import ConfigurationError
from ..hashing import Digest
from ..zkvm import ProverOpts, Receipt
from ..zkvm.costmodel import CostModel, ProverBackend
from .aggregation import RouterWindowInput
from .policy import DEFAULT_POLICY, AggregationPolicy


@dataclass(frozen=True)
class ParallelAggregationResult:
    """Receipts and latency model for one parallel round."""

    receipt: Receipt
    partition_infos: tuple[JobResult, ...]
    merge_info: JobResult
    new_root: Digest
    size: int

    def modeled_seconds(self, model: CostModel,
                        backend: ProverBackend =
                        ProverBackend.CPU_ZKVM) -> float:
        """End-to-end latency with partitions proven concurrently."""
        slowest = max(model.prove_seconds(info.stats, backend)
                      for info in self.partition_infos)
        return slowest + model.prove_seconds(self.merge_info.stats,
                                             backend)

    def sequential_seconds(self, model: CostModel,
                           backend: ProverBackend =
                           ProverBackend.CPU_ZKVM) -> float:
        """The same work proven one partition at a time."""
        total = sum(model.prove_seconds(info.stats, backend)
                    for info in self.partition_infos)
        return total + model.prove_seconds(self.merge_info.stats, backend)


class ParallelAggregator:
    """Partition → prove concurrently → merge in one guest.

    ``backend`` selects the pool flavor (``serial``/``thread``/
    ``process``); unset, it follows ``ProverOpts.pool_backend``, then
    the ``REPRO_PROVE_BACKEND`` / ``REPRO_PROVE_WORKERS`` environment,
    then defaults to ``thread``.  Invalid configuration —
    ``num_partitions < 1`` or an unknown backend — fails here in the
    constructor, not at prove time, on every backend.
    """

    def __init__(self, policy: AggregationPolicy = DEFAULT_POLICY,
                 prover_opts: ProverOpts | None = None,
                 max_workers: int | None = None,
                 num_partitions: int | None = None,
                 backend: str | None = None,
                 cache: ReceiptCache | None = None) -> None:
        if num_partitions is not None and num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        if backend is not None and backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown pool backend {backend!r}; expected one of "
                f"{BACKENDS}")
        self.policy = policy
        self._opts = prover_opts or ProverOpts.succinct()
        self._backend, self._max_workers = resolve_pool_config(
            self._opts, backend=backend, max_workers=max_workers,
            default_backend="thread")
        self._num_partitions = num_partitions
        self._cache = cache if cache is not None else ReceiptCache()

    def aggregate(self, windows: list[RouterWindowInput],
                  num_partitions: int | None = None
                  ) -> ParallelAggregationResult:
        """Prove ``windows`` as partitioned partial aggregations.

        Partitions are router-aligned (a router's windows stay
        together, since a window commitment must be checked whole).
        The pool is scoped to the call; the receipt cache lives on the
        aggregator, so repeated rounds over recurring inputs replay
        their partition proofs.
        """
        if num_partitions is not None and num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        if num_partitions is None:
            num_partitions = self._num_partitions
        with ProvingEngine(policy=self.policy, prover_opts=self._opts,
                           backend=self._backend,
                           max_workers=self._max_workers,
                           cache=self._cache) as engine:
            return engine.prove_round(windows, num_partitions)
