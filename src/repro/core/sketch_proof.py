"""Verifiable sketch telemetry (paper §1: the commitment/proof pipeline
"can use any logging or sketching algorithm").

Two guests extend the system beyond raw-record CLogs:

* :data:`sketch_build_guest` — verifies router window commitments
  (exactly like Algorithm 1's Step 2) and folds the committed records
  into a Count-Min sketch plus a Space-Saving heavy-hitter summary.
  The journal publishes only the sketch *digest*, the stream total, and
  the requested top-k heavy hitters — not the sketch contents.
* :data:`sketch_estimate_guest` — given a build receipt (bound via
  ``env.verify``) and the full sketch state, re-derives the committed
  digest and proves a per-flow frequency estimate.

This is the TrustSketch use case — sketch-based telemetry with
integrity — re-based from enclaves onto proofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ProofError
from ..hashing import TAG_COMMITMENT
from ..netflow.records import FlowKey, NetFlowRecord
from ..serialization import decode, encode
from ..sketch import CountMinSketch, SpaceSaving
from ..zkvm import (
    ExecutorEnvBuilder,
    ProveInfo,
    Prover,
    ProverOpts,
    Receipt,
    Verifier,
)
from ..zkvm import cycles as cy
from ..zkvm.guest import GuestEnv, guest_program
from ..zkvm.recursion import resolve
from .aggregation import RouterWindowInput, make_receipt_binding
from .guest_programs import DECODE_CYCLES_PER_BYTE, _guest_claim_digest

# Per-update compute beyond the row hashing (bucket adds, comparisons).
SKETCH_UPDATE_CYCLES = 40


def _charge_sketch_update(env: GuestEnv, depth: int) -> None:
    """A Count-Min add costs one compression per hash row."""
    env.tick(depth * cy.SHA256_COMPRESS_CYCLES
             + SKETCH_UPDATE_CYCLES, "sketch")


@guest_program("sketch-build-v1")
def sketch_build_guest(env: GuestEnv) -> None:
    """Build committed sketches from committed raw logs."""
    header = env.read()
    cm = CountMinSketch(width=header["width"], depth=header["depth"],
                        seed=header["seed"])
    heavy = SpaceSaving(capacity=header["capacity"])
    windows: list[dict[str, Any]] = []
    for _ in range(header["num_routers"]):
        router_input = env.read()
        recomputed = env.hash_many(TAG_COMMITMENT,
                                   router_input["blobs"],
                                   category="commitment")
        if recomputed != router_input["commitment"]:
            env.abort(
                f"integrity check failed for router "
                f"{router_input['router_id']!r}: commitment mismatch")
        windows.append({
            "r": router_input["router_id"],
            "w": router_input["window_index"],
            "c": recomputed,
        })
        for blob in router_input["blobs"]:
            env.tick(len(blob) * DECODE_CYCLES_PER_BYTE, "decode")
            record = NetFlowRecord.from_wire(decode(blob))
            key_bytes = record.key.pack()
            cm.add(key_bytes, record.packets)
            _charge_sketch_update(env, cm.depth)
            heavy.add(key_bytes, record.packets)
            env.tick(SKETCH_UPDATE_CYCLES, "sketch")
    # Committing the state digest costs hashing the serialized state.
    state_bytes = encode(cm.to_state())
    env.tick(len(state_bytes) * DECODE_CYCLES_PER_BYTE, "sketch")
    digest = env.sha256(state_bytes, category="sketch")  # meter only
    del digest  # canonical digest below (tagged) is what we publish
    env.commit({
        "windows": windows,
        "cm_digest": cm.digest(),
        "cm_params": {"width": cm.width, "depth": cm.depth,
                      "seed": cm.seed},
        "total_packets": cm.total,
        "top": [{"k": key, "c": count}
                for key, count in heavy.top(header["top_k"])],
    })


@guest_program("sketch-estimate-v1")
def sketch_estimate_guest(env: GuestEnv) -> None:
    """Prove a point-frequency estimate against a committed sketch."""
    header = env.read()
    binding = env.read()
    env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
             "verify")
    claim_digest = _guest_claim_digest(env, binding)
    from ..serialization import decode_stream
    build_journal = next(decode_stream(binding["journal"]), None)
    if not isinstance(build_journal, dict):
        env.abort("build journal has no header")
    env.verify(binding["image_id"], claim_digest)

    state = env.read()
    state_bytes = encode(state)
    env.tick(len(state_bytes) * DECODE_CYCLES_PER_BYTE, "decode")
    cm = CountMinSketch.from_state(state)
    if cm.digest() != build_journal["cm_digest"]:
        env.abort("sketch state does not match the committed digest")
    env.tick(len(state_bytes) // 32 * cy.SHA256_COMPRESS_CYCLES,
             "sketch")
    key_bytes: bytes = header["key"]
    estimate = cm.estimate(key_bytes)
    _charge_sketch_update(env, cm.depth)
    env.commit({
        "key": key_bytes,
        "estimate": estimate,
        "cm_digest": build_journal["cm_digest"],
        "total_packets": build_journal["total_packets"],
    })


@dataclass(frozen=True)
class SketchBuildResult:
    """A proven sketch build."""

    receipt: Receipt
    info: ProveInfo
    sketch: CountMinSketch  # provider-side state (private)
    heavy_hitters: tuple[tuple[bytes, int], ...]

    @property
    def journal(self) -> dict[str, Any]:
        return self.receipt.journal.decode_one()


@dataclass(frozen=True)
class SketchEstimate:
    """A proven point estimate."""

    key: FlowKey
    estimate: int
    receipt: Receipt


class SketchTelemetry:
    """Host-side orchestration of the sketch guests."""

    def __init__(self, width: int = 2048, depth: int = 4,
                 seed: int = 0, capacity: int = 64,
                 prover_opts: ProverOpts | None = None) -> None:
        self.width = width
        self.depth = depth
        self.seed = seed
        self.capacity = capacity
        self._prover = Prover(prover_opts or ProverOpts.groth16())

    def build(self, windows: list[RouterWindowInput],
              top_k: int = 10) -> SketchBuildResult:
        """Prove a sketch build over committed windows."""
        ordered = sorted(windows,
                         key=lambda w: (w.router_id, w.window_index))
        builder = ExecutorEnvBuilder()
        builder.write({
            "width": self.width, "depth": self.depth,
            "seed": self.seed, "capacity": self.capacity,
            "num_routers": len(ordered), "top_k": top_k,
        })
        for window in ordered:
            builder.write({
                "router_id": window.router_id,
                "window_index": window.window_index,
                "commitment": window.commitment,
                "blobs": list(window.blobs),
            })
        info = self._prover.prove(sketch_build_guest, builder.build())
        # Reconstruct the provider-side sketch (same determinism the
        # guest used).
        sketch = CountMinSketch(self.width, self.depth, self.seed)
        heavy = SpaceSaving(self.capacity)
        for window in ordered:
            for blob in window.blobs:
                record = NetFlowRecord.from_wire(decode(blob))
                sketch.add(record.key.pack(), record.packets)
                heavy.add(record.key.pack(), record.packets)
        journal = info.receipt.journal.decode_one()
        if journal["cm_digest"] != sketch.digest():
            raise ProofError("host sketch diverged from guest sketch")
        return SketchBuildResult(
            receipt=info.receipt,
            info=info,
            sketch=sketch,
            heavy_hitters=tuple(heavy.top(top_k)),
        )

    def prove_estimate(self, build: SketchBuildResult,
                       key: FlowKey) -> SketchEstimate:
        """Prove ``estimate(key)`` against the committed sketch."""
        builder = ExecutorEnvBuilder()
        builder.write({"key": key.pack()})
        builder.write(make_receipt_binding(build.receipt))
        builder.write(build.sketch.to_state())
        info = self._prover.prove(sketch_estimate_guest,
                                  builder.build())
        receipt = resolve(info.receipt, build.receipt)
        journal = receipt.journal.decode_one()
        return SketchEstimate(key=key, estimate=journal["estimate"],
                              receipt=receipt)


def verify_sketch_build(receipt: Receipt, bulletin) -> dict[str, Any]:
    """Client-side check of a sketch-build receipt.

    Verifies the proof against the public build image and cross-checks
    every consumed window commitment against the bulletin; returns the
    public journal (digest, total, heavy hitters).
    """
    Verifier().verify(receipt, sketch_build_guest.image_id)
    journal = receipt.journal.decode_one()
    for window in journal["windows"]:
        published = bulletin.get(window["r"], window["w"])
        if published.digest != window["c"]:
            raise ProofError(
                "sketch build consumed a commitment that differs from "
                "the published one")
    return journal


def verify_sketch_estimate(estimate: SketchEstimate,
                           build_journal: dict[str, Any]) -> int:
    """Client-side check of an estimate receipt against a verified
    build journal; returns the proven estimate."""
    Verifier().verify(estimate.receipt, sketch_estimate_guest.image_id)
    journal = estimate.receipt.journal.decode_one()
    if journal["cm_digest"] != build_journal["cm_digest"]:
        raise ProofError("estimate was proven against a different "
                         "sketch")
    if journal["key"] != estimate.key.pack() \
            or journal["estimate"] != estimate.estimate:
        raise ProofError("estimate response does not match its proof")
    return journal["estimate"]
