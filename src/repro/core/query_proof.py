"""Query proving (§4.2): run a SQL query in the zkVM, bound to the
latest aggregation claim.

The returned :class:`QueryResponse` is what the provider ships to the
client: the result values plus an unconditional receipt whose journal
binds (query text, aggregation root, result).  The client never sees a
CLog entry — only the public journal.

Two proving strategies produce that same journal:

* **full-scan** — the original monolith: one guest re-hashes and
  re-scans the entire entry set (§7 measures ~16 minutes at 3,000
  entries, which is the bottleneck this module exists to attack);
* **partitioned** — the entry set is split into aligned slot ranges,
  each proven as a *partial* query (bound to the aggregation root via a
  subtree sibling path) on the :class:`~repro.engine.ProvingEngine`
  work queue, then folded by a small merge guest into a journal
  byte-identical to the full scan's.  The planner picks whichever is
  modeled faster; clients verify both through the same
  ``VerifierClient.verify_query``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError, ProofError
from ..hashing import Digest
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..zkvm import ExecutorEnvBuilder, ProveInfo, Prover, ProverOpts, Receipt
from ..zkvm.costmodel import CostModel, ProverBackend
from ..zkvm.prover import ProveStats
from ..zkvm.recursion import resolve, resolve_all
from .aggregation import make_receipt_binding
from .clog import CLogState
from .guest_programs import (
    query_guest,
    query_merge_guest,
    query_partition_guest,
)

ENV_QUERY_PARTITIONS = "REPRO_QUERY_PARTITIONS"


def env_query_partitions() -> int | None:
    """``REPRO_QUERY_PARTITIONS`` as a partition count, or ``None``."""
    raw = (os.environ.get(ENV_QUERY_PARTITIONS) or "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_QUERY_PARTITIONS} must be an integer, got "
            f"{raw!r}") from None
    return value if value > 0 else None


@dataclass(frozen=True)
class QueryResponse:
    """What the client receives for a query."""

    sql: str
    labels: tuple[str, ...]
    values: tuple[int | float | None, ...]
    matched: int
    scanned: int
    round: int
    root: Digest
    receipt: Receipt
    group_by: str | None = None
    groups: tuple[tuple[Any, tuple[int | float | None, ...]], ...] = ()

    def value(self, label: str | None = None) -> int | float | None:
        if self.group_by is not None:
            raise ProofError("grouped query: read .groups instead")
        if label is None:
            if len(self.values) != 1:
                raise ProofError("query has multiple result columns; "
                                 "name one")
            return self.values[0]
        try:
            return self.values[self.labels.index(label)]
        except ValueError:
            raise ProofError(f"no result column {label!r}") from None

    def as_dict(self) -> dict[str, int | float | None]:
        if self.group_by is not None:
            raise ProofError("grouped query: read .groups instead")
        return dict(zip(self.labels, self.values))

    def group(self, key: Any) -> dict[str, int | float | None]:
        for group_key, values in self.groups:
            if group_key == key:
                return dict(zip(self.labels, values))
        raise ProofError(f"no group {key!r}")


@dataclass(frozen=True)
class PartitionedQueryInfo:
    """Proving metadata for one partitioned query.

    Duck-compatible with :class:`ProveInfo` where the service relies on
    it (``.receipt``, ``.stats``); ``stats`` totals the work across
    every partition plus the merge.  The latency model mirrors
    :class:`~repro.core.parallel.ParallelAggregationResult`: partitions
    prove concurrently, the merge after the slowest of them.
    """

    receipt: Receipt
    partition_infos: tuple[Any, ...]
    merge_info: Any
    num_partitions: int
    chunk_po2: int

    @property
    def stats(self) -> ProveStats:
        infos = (*self.partition_infos, self.merge_info)
        breakdown: dict[str, int] = {}
        for info in infos:
            for category, cycles in info.stats.cycle_breakdown.items():
                breakdown[category] = breakdown.get(category, 0) + cycles
        return ProveStats(
            total_cycles=sum(i.stats.total_cycles for i in infos),
            padded_cycles=sum(i.stats.padded_cycles for i in infos),
            segment_count=sum(i.stats.segment_count for i in infos),
            sha_compressions=sum(i.stats.sha_compressions
                                 for i in infos),
            wall_seconds=sum(i.stats.wall_seconds for i in infos),
            cycle_breakdown=breakdown,
        )

    def modeled_seconds(self, model: CostModel,
                        backend: ProverBackend =
                        ProverBackend.CPU_ZKVM) -> float:
        """End-to-end latency with partitions proven concurrently."""
        slowest = max(model.prove_seconds(info.stats, backend)
                      for info in self.partition_infos)
        return slowest + model.prove_seconds(self.merge_info.stats,
                                             backend)

    def sequential_seconds(self, model: CostModel,
                           backend: ProverBackend =
                           ProverBackend.CPU_ZKVM) -> float:
        """The same work proven one partition at a time."""
        total = sum(model.prove_seconds(info.stats, backend)
                    for info in self.partition_infos)
        return total + model.prove_seconds(self.merge_info.stats,
                                           backend)


class QueryProver:
    """Generates query proofs against the current CLog state.

    ``prover`` optionally injects a pool-routed prover (see
    :class:`repro.engine.pool.PooledProver`); the default proves
    in-process.  ``engine`` + ``num_partitions`` opt into partitioned
    proving: :meth:`prove_query` asks the planner whether splitting
    pays for the given query and entry count, and falls back to the
    full scan when it does not.  With an engine attached, even
    full-scan query jobs route through its pool and content-addressed
    receipt cache.
    """

    def __init__(self, prover_opts: ProverOpts | None = None,
                 prover: Any | None = None,
                 engine: Any | None = None,
                 num_partitions: int | None = None) -> None:
        if num_partitions is not None and num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        self._opts = prover_opts or ProverOpts.groth16()
        if prover is not None:
            self._prover = prover
        elif engine is not None:
            self._prover = engine.prover(self._opts)
        else:
            self._prover = Prover(self._opts)
        self._engine = engine
        self._num_partitions = num_partitions

    def prove_query(self, sql: str, state: CLogState,
                    agg_receipt: Receipt) -> tuple[QueryResponse, Any]:
        """Prove ``sql`` over ``state``, which ``agg_receipt`` attests.

        Picks the modeled-faster strategy when partitioning is
        configured; both strategies commit byte-identical journals.
        """
        num_partitions = self._num_partitions
        if self._engine is not None and num_partitions is not None \
                and num_partitions > 1 and len(state) > 1:
            from .planner import QueryPlanner
            planner = QueryPlanner(state, len(agg_receipt.journal.data))
            if planner.choose_strategy(sql, num_partitions) \
                    == "partitioned":
                return self.prove_query_partitioned(
                    sql, state, agg_receipt, num_partitions)
        return self._prove_query_full_scan(sql, state, agg_receipt)

    def _prove_query_full_scan(
            self, sql: str, state: CLogState, agg_receipt: Receipt,
    ) -> tuple[QueryResponse, ProveInfo]:
        """The §4.2 monolith: one guest scans the full entry set."""
        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_QUERY_PROVE, sql=sql,
                               entries=len(state)) as span:
            builder = ExecutorEnvBuilder()
            builder.write({"query": sql, "num_entries": len(state)})
            builder.write(make_receipt_binding(agg_receipt))
            for entry in state.entries_in_slot_order():
                builder.write({"key": entry.key.pack(),
                               "payload": entry.to_payload()})
            info = self._prover.prove(query_guest, builder.build())
            receipt = resolve(info.receipt, agg_receipt)
            span.add_cycles(info.stats.total_cycles)
        registry = obs.registry()
        registry.counter(obs_names.QUERY_PROOFS).inc()
        registry.histogram(obs_names.QUERY_SECONDS).observe(
            time.perf_counter() - start)
        return _build_response(sql, receipt), info

    def prove_query_partitioned(
            self, sql: str, state: CLogState, agg_receipt: Receipt,
            num_partitions: int | None = None,
    ) -> tuple[QueryResponse, PartitionedQueryInfo]:
        """Prove ``sql`` as partial queries over aligned slot ranges.

        Every partition job and the merge job go through the engine's
        work queue — pooled workers prove them concurrently and the
        content-addressed :class:`~repro.engine.cache.ReceiptCache`
        replays recurring partitions.  The merge receipt is resolved
        against the partition receipts (themselves resolved against
        ``agg_receipt``), so the response receipt is unconditional and
        verifies exactly like a full-scan one.
        """
        if self._engine is None:
            raise ConfigurationError(
                "partitioned query proving needs a ProvingEngine")
        requested = num_partitions if num_partitions is not None \
            else self._num_partitions
        if requested is None or requested < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        size = len(state)
        if size == 0:
            raise ProofError(
                "cannot prove a partitioned query over an empty CLog")
        from .planner import partition_layout
        chunk_po2, count = partition_layout(size, requested)
        chunk = 1 << chunk_po2
        entries = state.entries_in_slot_order()
        tree = state.merkle_map.tree
        binding = make_receipt_binding(agg_receipt)

        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_QUERY_PROVE, sql=sql,
                               entries=size) as outer:
            outer.set("partitions", count)
            with obs.tracer().span(obs_names.SPAN_QUERY_PARALLEL_ROUND,
                                   partitions=count):
                jobs = []
                for index in range(count):
                    lo = index << chunk_po2
                    hi = min(size, lo + chunk)
                    jobs.append(self._partition_job(
                        sql, binding, entries[lo:hi], index, count,
                        chunk_po2,
                        tree.prove_subtree(chunk_po2, index).siblings))

                # Populated by build_merge on the completion-callback
                # thread; reads below are ordered after it by
                # merge_ready/merge_future.
                resolved: list[Receipt] = []

                def build_merge(results: list[Any]) -> Any:
                    from ..engine.jobs import ProofJob
                    merge_builder = ExecutorEnvBuilder()
                    merge_builder.write({"query": sql,
                                         "num_partitions": count})
                    for result in results:
                        part_receipt = resolve(result.receipt,
                                               agg_receipt)
                        resolved.append(part_receipt)
                        merge_builder.write(
                            make_receipt_binding(part_receipt))
                    return ProofJob.from_parts(
                        query_merge_guest, merge_builder.build(),
                        self._opts)

                schedule = self._engine.submit_fanout(jobs, build_merge)
                partition_results = []
                for index, future in enumerate(
                        schedule.partition_futures):
                    with obs.tracer().span(
                            obs_names.SPAN_QUERY_PARALLEL_PARTITION,
                            partition=index) as span:
                        result = future.result()
                        span.add_cycles(result.stats.total_cycles)
                        span.set("cached", result.cached)
                    partition_results.append(result)
                schedule.merge_ready.wait()
                if schedule.merge_future is None:
                    raise ProofError("query merge was never submitted")
                with obs.tracer().span(
                        obs_names.SPAN_QUERY_PARALLEL_MERGE,
                        partitions=count) as span:
                    merge_result = schedule.merge_future.result()
                    span.add_cycles(merge_result.stats.total_cycles)
                    receipt = resolve_all(merge_result.receipt,
                                          resolved)
            outer.add_cycles(
                sum(r.stats.total_cycles for r in partition_results)
                + merge_result.stats.total_cycles)
        registry = obs.registry()
        registry.counter(obs_names.QUERY_PROOFS).inc()
        registry.counter(obs_names.QUERY_PARTITIONS).inc(count)
        registry.histogram(obs_names.QUERY_SECONDS).observe(
            time.perf_counter() - start)
        info = PartitionedQueryInfo(
            receipt=receipt,
            partition_infos=tuple(partition_results),
            merge_info=merge_result,
            num_partitions=count,
            chunk_po2=chunk_po2,
        )
        return _build_response(sql, receipt), info

    def _partition_job(self, sql: str, binding: dict[str, Any],
                       entries: list[Any], index: int, count: int,
                       chunk_po2: int,
                       siblings: tuple[Digest, ...]) -> Any:
        from ..engine.jobs import ProofJob
        builder = ExecutorEnvBuilder()
        builder.write({
            "query": sql,
            "partition": index,
            "num_partitions": count,
            "chunk_po2": chunk_po2,
            "start": index << chunk_po2,
            "count": len(entries),
            "siblings": list(siblings),
        })
        builder.write(binding)
        for entry in entries:
            builder.write({"key": entry.key.pack(),
                           "payload": entry.to_payload()})
        return ProofJob.from_parts(query_partition_guest,
                                   builder.build(), self._opts)


def _build_response(sql: str, receipt: Receipt) -> QueryResponse:
    journal = _query_journal(receipt)
    return QueryResponse(
        sql=sql,
        labels=tuple(journal["labels"]),
        values=tuple(journal["values"]),
        matched=journal["matched"],
        scanned=journal["scanned"],
        round=journal["round"],
        root=journal["root"],
        receipt=receipt,
        group_by=journal.get("group_by"),
        groups=tuple((key, tuple(values))
                     for key, values in journal.get("groups", [])),
    )


def _query_journal(receipt: Receipt) -> dict[str, Any]:
    journal = receipt.journal.decode_one()
    if not isinstance(journal, dict):
        raise ProofError("query journal is not a dict")
    return journal


__all__ = [
    "ENV_QUERY_PARTITIONS",
    "PartitionedQueryInfo",
    "QueryProver",
    "QueryResponse",
    "env_query_partitions",
]
