"""Query proving (§4.2): run a SQL query in the zkVM, bound to the
latest aggregation claim.

The returned :class:`QueryResponse` is what the provider ships to the
client: the result values plus an unconditional receipt whose journal
binds (query text, aggregation root, result).  The client never sees a
CLog entry — only the public journal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from ..errors import ProofError
from ..hashing import Digest
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..zkvm import ExecutorEnvBuilder, ProveInfo, Prover, ProverOpts, Receipt
from ..zkvm.recursion import resolve
from .aggregation import make_receipt_binding
from .clog import CLogState
from .guest_programs import query_guest


@dataclass(frozen=True)
class QueryResponse:
    """What the client receives for a query."""

    sql: str
    labels: tuple[str, ...]
    values: tuple[int | float | None, ...]
    matched: int
    scanned: int
    round: int
    root: Digest
    receipt: Receipt
    group_by: str | None = None
    groups: tuple[tuple[Any, tuple[int | float | None, ...]], ...] = ()

    def value(self, label: str | None = None) -> int | float | None:
        if self.group_by is not None:
            raise ProofError("grouped query: read .groups instead")
        if label is None:
            if len(self.values) != 1:
                raise ProofError("query has multiple result columns; "
                                 "name one")
            return self.values[0]
        try:
            return self.values[self.labels.index(label)]
        except ValueError:
            raise ProofError(f"no result column {label!r}") from None

    def as_dict(self) -> dict[str, int | float | None]:
        if self.group_by is not None:
            raise ProofError("grouped query: read .groups instead")
        return dict(zip(self.labels, self.values))

    def group(self, key: Any) -> dict[str, int | float | None]:
        for group_key, values in self.groups:
            if group_key == key:
                return dict(zip(self.labels, values))
        raise ProofError(f"no group {key!r}")


class QueryProver:
    """Generates query proofs against the current CLog state.

    ``prover`` optionally injects a pool-routed prover (see
    :class:`repro.engine.pool.PooledProver`); the default proves
    in-process.
    """

    def __init__(self, prover_opts: ProverOpts | None = None,
                 prover: Any | None = None) -> None:
        self._prover = prover if prover is not None \
            else Prover(prover_opts or ProverOpts.groth16())

    def prove_query(self, sql: str, state: CLogState,
                    agg_receipt: Receipt) -> tuple[QueryResponse,
                                                   ProveInfo]:
        """Prove ``sql`` over ``state``, which ``agg_receipt`` attests.

        The guest receives the *full* entry set and re-derives the
        committed root, so the prover cannot hide or substitute entries.
        """
        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_QUERY_PROVE, sql=sql,
                               entries=len(state)) as span:
            builder = ExecutorEnvBuilder()
            builder.write({"query": sql, "num_entries": len(state)})
            builder.write(make_receipt_binding(agg_receipt))
            for entry in state.entries_in_slot_order():
                builder.write({"key": entry.key.pack(),
                               "payload": entry.to_payload()})
            info = self._prover.prove(query_guest, builder.build())
            receipt = resolve(info.receipt, agg_receipt)
            span.add_cycles(info.stats.total_cycles)
        registry = obs.registry()
        registry.counter(obs_names.QUERY_PROOFS).inc()
        registry.histogram(obs_names.QUERY_SECONDS).observe(
            time.perf_counter() - start)
        journal = _query_journal(receipt)
        return QueryResponse(
            sql=sql,
            labels=tuple(journal["labels"]),
            values=tuple(journal["values"]),
            matched=journal["matched"],
            scanned=journal["scanned"],
            round=journal["round"],
            root=journal["root"],
            receipt=receipt,
            group_by=journal.get("group_by"),
            groups=tuple((key, tuple(values))
                         for key, values in journal.get("groups", [])),
        ), info


def _query_journal(receipt: Receipt) -> dict[str, Any]:
    journal = receipt.journal.decode_one()
    if not isinstance(journal, dict):
        raise ProofError("query journal is not a dict")
    return journal
