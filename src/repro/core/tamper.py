"""Tamper injection and the Figure 3 / §6 detection experiment.

§5: "even a single post-commitment modification to a log entry causes a
mismatch in the hash commitments or break[s] Merkle inclusion
consistency — both of which invalidate the generated proofs."

These helpers mutate the *stored* raw logs after the router has
published its commitment — exactly the adversary of the threat model
(§3: "a malicious service provider may attempt to retroactively modify
logs") — and :func:`run_tamper_experiment` confirms that proof
generation subsequently fails.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import GuestAbort, IntegrityError, ReproError, StorageError
from ..netflow.records import NetFlowRecord
from ..serialization import decode
from ..storage.backend import LogStore


class TamperKind(enum.Enum):
    """The post-commitment manipulations the experiment exercises."""

    MODIFY_FIELD = "modify-field"     # rewrite a counter (hide loss, ...)
    CORRUPT_BYTES = "corrupt-bytes"   # flip raw bytes in the store
    TRUNCATE = "truncate"             # drop records from a window
    REORDER = "reorder"               # permute records within a window
    INJECT = "inject"                 # add records never committed


@dataclass(frozen=True)
class TamperOutcome:
    """Result of one tamper-then-prove attempt."""

    kind: TamperKind
    detected: bool
    error_type: str | None
    detail: str

    def __str__(self) -> str:
        status = "DETECTED" if self.detected else "UNDETECTED"
        return f"[{self.kind.value}] {status}: {self.detail}"


# ---------------------------------------------------------------------------
# Injection primitives
# ---------------------------------------------------------------------------

def modify_record_field(store: LogStore, router_id: str,
                        window_index: int, seq: int,
                        **changes: Any) -> NetFlowRecord:
    """Decode a stored record, change fields, write it back.

    This is the 'plausible' adversary: the tampered record is perfectly
    well-formed (e.g. ``lost_packets=0`` to hide an SLA violation); only
    the hash commitment betrays it.  Returns the tampered record.
    """
    blobs = store.window_blobs(router_id, window_index)
    if not 0 <= seq < len(blobs):
        raise StorageError(
            f"no record {seq} in ({router_id!r}, {window_index})")
    record = NetFlowRecord.from_wire(decode(blobs[seq]))
    tampered = record.with_updates(**changes)
    store.overwrite_raw(router_id, window_index, seq,
                        tampered.to_bytes())
    return tampered


def corrupt_record_bytes(store: LogStore, router_id: str,
                         window_index: int, seq: int,
                         byte_index: int = 0) -> None:
    """Flip one bit of a stored record's raw bytes."""
    blobs = store.window_blobs(router_id, window_index)
    if not 0 <= seq < len(blobs):
        raise StorageError(
            f"no record {seq} in ({router_id!r}, {window_index})")
    raw = bytearray(blobs[seq])
    raw[byte_index % len(raw)] ^= 0x01
    store.overwrite_raw(router_id, window_index, seq, bytes(raw))


def truncate_window(store: LogStore, router_id: str, window_index: int,
                    keep: int) -> None:
    """Drop all but the first ``keep`` records of a window."""
    blobs = store.window_blobs(router_id, window_index)
    store.replace_window(router_id, window_index, blobs[:keep])


def reorder_window(store: LogStore, router_id: str,
                   window_index: int) -> None:
    """Swap the first and last records of a window."""
    blobs = store.window_blobs(router_id, window_index)
    if len(blobs) < 2:
        raise StorageError("need at least two records to reorder")
    blobs[0], blobs[-1] = blobs[-1], blobs[0]
    store.replace_window(router_id, window_index, blobs)


def inject_record(store: LogStore, router_id: str, window_index: int,
                  record: NetFlowRecord) -> None:
    """Append a record that was never committed."""
    blobs = store.window_blobs(router_id, window_index)
    blobs.append(record.to_bytes())
    store.replace_window(router_id, window_index, blobs)


# ---------------------------------------------------------------------------
# The experiment harness
# ---------------------------------------------------------------------------

def run_tamper_experiment(kind: TamperKind,
                          tamper: Callable[[], None],
                          prove: Callable[[], Any]) -> TamperOutcome:
    """Tamper, then attempt to prove; classify the outcome.

    Detection means proof generation *failed* with an integrity-class
    error (guest abort on hash/Merkle mismatch, commitment errors, or a
    decode failure on corrupted bytes).  A successful proof after
    tampering would be a soundness bug.
    """
    tamper()
    try:
        prove()
    except (GuestAbort, IntegrityError) as exc:
        return TamperOutcome(kind=kind, detected=True,
                             error_type=type(exc).__name__,
                             detail=str(exc))
    except ReproError as exc:
        # e.g. SerializationError when corrupted bytes fail to decode
        # host-side, before the guest even runs — still a hard failure
        # of proof generation, i.e. detection.
        return TamperOutcome(kind=kind, detected=True,
                             error_type=type(exc).__name__,
                             detail=f"proof generation failed: {exc}")
    return TamperOutcome(
        kind=kind, detected=False, error_type=None,
        detail="proof generation SUCCEEDED over tampered data")
