"""The zkVM guest programs (what would be the Rust guest crate).

The circuits:

* :data:`aggregation_guest` — Algorithm 1: verify the previous round's
  claim (via ``env.verify`` recursion), recompute every router window's
  hash against its published commitment, then fold each record into the
  CLog under verified Merkle updates, producing the new root.
* :data:`query_guest` — §4.2: bind to an aggregation claim, re-derive
  the committed root from the full entry set, evaluate the SQL query,
  and commit (query, root, result) to the journal.
* :data:`partition_guest` / :data:`merge_guest` — §7 "Proof
  parallelization": per-partition partial aggregation proofs merged by a
  guest that verifies each partition claim.
* :data:`query_partition_guest` / :data:`query_merge_guest` — the same
  decomposition applied to queries: each partition proves partial
  aggregates over an aligned slot range of the committed tree (bound to
  the aggregation root through a subtree sibling path) and the merge
  guest folds the partials into a journal byte-identical to
  :data:`query_guest`'s.

Everything the guests hash or verify is charged to the cycle meter; the
constants below set the generic-compute costs (decode, merge, predicate
evaluation) that the RISC-V instruction stream would incur.

The module also hosts the **guest registry**: proof jobs cross process
boundaries as data (:mod:`repro.engine`), so a worker needs to map a
guest *name* back to the in-process :class:`GuestProgram` object.  All
guests defined here register themselves; out-of-module guests (the
rebuild strategy) are resolved lazily on first miss.
"""

from __future__ import annotations

from typing import Any

from ..hashing import (
    TAG_ASSUMPTION,
    TAG_CLAIM,
    TAG_COMMITMENT,
    TAG_JOURNAL,
    TAG_RLOG,
    Digest,
)
from ..errors import ConfigurationError
from ..merkle import MerkleTree
from ..merkle.tree import EMPTY_ROOTS
from ..netflow.records import NetFlowRecord
from ..query import evaluate, evaluate_partial, merge_partials, parse_query
from ..serialization import decode, decode_stream
from ..zkvm.guest import GuestEnv, GuestProgram, guest_program
from .clog import CLogEntry, entry_view_from_wire
from .policy import AggregationPolicy
from .witness import OP_GROW, OP_INSERT, OP_UPDATE

# Generic-compute cycle charges (RISC-V work outside the sha accelerator).
DECODE_CYCLES_PER_BYTE = 2
MERGE_CYCLES = 120
QUERY_VIEW_CYCLES = 400
QUERY_NODE_CYCLES = 20
PARSE_CYCLES_PER_BYTE = 8
RECORD_TAG_BYTES = 16


def _guest_claim_digest(env: GuestEnv, binding: dict[str, Any]) -> Digest:
    """Recompute another receipt's claim digest from its components.

    Byte-for-byte the same construction as
    :meth:`repro.zkvm.receipt.ReceiptClaim.digest` (with no assumptions —
    chained receipts must be resolved/unconditional).  The caller then
    passes the digest to ``env.verify``, so assumption resolution forces
    the actual previous receipt to carry exactly these components —
    including the journal bytes provided here, which is how journal
    contents (e.g. the previous root) become trusted inside this guest.
    """
    journal_digest = env.tagged_hash(TAG_JOURNAL, binding["journal"],
                                     category="verify")
    assumptions_digest = env.hash_many(TAG_ASSUMPTION, [],
                                       category="verify")
    return env.tagged_hash(
        TAG_CLAIM,
        binding["image_id"].raw,
        binding["input_digest"].raw,
        journal_digest.raw,
        int(binding["exit_code"]).to_bytes(4, "big"),
        binding["total_cycles"].to_bytes(8, "big"),
        binding["segment_count"].to_bytes(4, "big"),
        assumptions_digest.raw,
        category="verify",
    )


def _read_entry_views(
        env: GuestEnv, hasher: Any, count: int,
) -> tuple[list[Digest], list[dict[str, Any]]]:
    """Read ``count`` (key, payload) entry frames; hash leaves, build views.

    Buffered: the frames come through one ``read_batch`` syscall and the
    decode ticks are charged in two batch calls with the same totals as
    the per-entry loop this replaces (``len(payload) * DECODE_CYCLES_PER_
    BYTE`` plus ``QUERY_VIEW_CYCLES`` per entry, both to "decode").
    """
    frames = env.read_batch(count)
    leaves: list[Digest] = []
    views: list[dict[str, Any]] = []
    payload_bytes = 0
    for frame in frames:
        key_bytes: bytes = frame["key"]
        payload: bytes = frame["payload"]
        leaves.append(hasher.leaf(key_bytes + payload))
        payload_bytes += len(payload)
        wire = decode(payload)
        if wire["key"] != key_bytes:
            env.abort("entry payload key does not match frame key")
        views.append(entry_view_from_wire(wire))
    env.tick(payload_bytes * DECODE_CYCLES_PER_BYTE, "decode")
    env.tick(len(frames) * QUERY_VIEW_CYCLES, "decode")
    return leaves, views


def _path_root(hasher: Any, leaf: Digest, index: int,
               siblings: list[Digest]) -> Digest:
    """Recompute the root implied by a sibling path (metered)."""
    digest = leaf
    pos = index
    for sibling in siblings:
        if pos & 1:
            digest = hasher.node(sibling, digest)
        else:
            digest = hasher.node(digest, sibling)
        pos >>= 1
    return digest


@guest_program("telemetry-aggregation-v1")
def aggregation_guest(env: GuestEnv) -> None:
    """Algorithm 1, exactly as the paper lays it out.

    Input frames, in order:

    1. header: round, policy, prev root/size/depth, router and op counts;
    2. (round > 0 only) previous-receipt binding for Step 1;
    3. one frame per router: id, window, published commitment, raw blobs;
    4. one frame per witness op (grow/update/insert).

    Journal: a round header (public roots, sizes, window commitments)
    followed by one compact item per aggregated record.
    """
    header = env.read()
    round_index = header["round"]
    policy = AggregationPolicy.from_wire(header["policy"])
    current_root: Digest = header["prev_root"]
    size: int = header["prev_size"]
    depth: int = header["prev_depth"]
    hasher = env.merkle_hasher()

    # -- Step 1: Verify Previous Aggregation (lines 1-4) --------------------
    if round_index > 0:
        binding = env.read()
        env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
                 "verify")
        claim_digest = _guest_claim_digest(env, binding)
        prev_values = decode_stream(binding["journal"])
        prev_header = next(prev_values, None)
        if not isinstance(prev_header, dict):
            env.abort("previous journal has no header")
        if prev_header.get("new_root") != current_root \
                or prev_header.get("size") != size \
                or prev_header.get("depth") != depth \
                or prev_header.get("round") != round_index - 1:
            env.abort("previous journal does not match claimed prev state")
        env.verify(binding["image_id"], claim_digest)
    else:
        if size != 0 or current_root != EMPTY_ROOTS[0] or depth != 0:
            env.abort("genesis round must start from an empty CLog")

    # -- Step 2: Verify Authenticity of Raw Logs (lines 5-11) -----------------
    windows: list[dict[str, Any]] = []
    batch: list[tuple[bytes, dict[str, Any]]] = []
    for _ in range(header["num_routers"]):
        router_input = env.read()
        recomputed = env.hash_many(TAG_COMMITMENT, router_input["blobs"],
                                   category="commitment")
        if recomputed != router_input["commitment"]:
            env.abort(
                f"integrity check failed for router "
                f"{router_input['router_id']!r} window "
                f"{router_input['window_index']}: commitment mismatch")
        windows.append({
            "r": router_input["router_id"],
            "w": router_input["window_index"],
            "c": recomputed,
        })
        for blob in router_input["blobs"]:
            env.tick(len(blob) * DECODE_CYCLES_PER_BYTE, "decode")
            wire = decode(blob)
            batch.append((blob, wire))

    # -- Step 3: Verify, Aggregate, and Update Merkle Tree (lines 12-23) -------
    items: list[dict[str, Any]] = []
    ops_remaining = header["num_ops"]
    for blob, record_wire in batch:
        if ops_remaining <= 0:
            env.abort("witness exhausted before all records aggregated")
        op = env.read()
        ops_remaining -= 1
        if op["op"] == OP_GROW:
            current_root = hasher.node(current_root, EMPTY_ROOTS[depth])
            depth += 1
            if ops_remaining <= 0:
                env.abort("grow op not followed by an insert")
            op = env.read()
            ops_remaining -= 1
        siblings: list[Digest] = op["siblings"]
        if len(siblings) != depth:
            env.abort("witness path length does not match tree depth")
        slot: int = op["slot"]
        key_bytes: bytes = record_wire["key"]
        env.tick(MERGE_CYCLES, "aggregate")
        record = NetFlowRecord.from_wire(record_wire)
        if op["op"] == OP_UPDATE:
            old_payload: bytes = op["old_payload"]
            old_leaf = hasher.leaf(key_bytes + old_payload)
            if _path_root(hasher, old_leaf, slot, siblings) \
                    != current_root:
                env.abort("integrity check for existing CLog entry "
                          "failed (line 17)")
            env.tick(len(old_payload) * DECODE_CYCLES_PER_BYTE, "decode")
            entry = CLogEntry.from_payload(old_payload)
            if entry.key != record.key:
                env.abort("witness entry key does not match record key")
            new_entry = entry.merge(record, policy)
        elif op["op"] == OP_INSERT:
            if slot != size:
                env.abort("insert must target the append slot")
            if _path_root(hasher, EMPTY_ROOTS[0], slot, siblings) \
                    != current_root:
                env.abort("vacant-slot proof failed")
            new_entry = CLogEntry.fresh(record)
            size += 1
        else:
            env.abort(f"unknown witness op {op['op']!r}")
        new_payload = new_entry.to_payload()
        new_leaf = hasher.leaf(key_bytes + new_payload)
        current_root = _path_root(hasher, new_leaf, slot, siblings)
        record_tag = env.tagged_hash(
            TAG_RLOG, blob, category="commitment").raw[:RECORD_TAG_BYTES]
        items.append({"s": slot, "l": new_leaf, "t": record_tag})
    if ops_remaining != 0:
        env.abort("witness has more ops than records")

    env.commit({
        "round": round_index,
        "prev_root": header["prev_root"],
        "new_root": current_root,
        "size": size,
        "depth": depth,
        "windows": windows,
        "policy": policy.digest(),
        "entries": len(items),
    })
    env.commit_many(items)


@guest_program("telemetry-query-v1")
def query_guest(env: GuestEnv) -> None:
    """§4.2: prove a query result over the committed aggregation state.

    Input frames: query header; aggregation-receipt binding; then every
    CLog entry (key, payload) in slot order.  The guest re-derives the
    Merkle root from the full entry set and aborts unless it matches the
    root the bound aggregation claim committed to — so the query
    provably ran over exactly the attested dataset.
    """
    header = env.read()
    binding = env.read()
    env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE, "verify")
    claim_digest = _guest_claim_digest(env, binding)
    agg_values = decode_stream(binding["journal"])
    agg_header = next(agg_values, None)
    if not isinstance(agg_header, dict):
        env.abort("aggregation journal has no header")
    env.verify(binding["image_id"], claim_digest)
    root: Digest = agg_header["new_root"]
    size: int = agg_header["size"]
    if header["num_entries"] != size:
        env.abort(
            f"prover supplied {header['num_entries']} entries, "
            f"aggregation state holds {size}")

    hasher = env.merkle_hasher()
    leaves, views = _read_entry_views(env, hasher, size)
    tree = MerkleTree(leaves, hasher=hasher)
    if tree.root != root:
        env.abort("CLog entries do not reproduce the committed root")

    sql: str = header["query"]
    env.tick(len(sql) * PARSE_CYCLES_PER_BYTE, "parse")
    query = parse_query(sql)
    result = evaluate(
        query, views,
        cost_hook=lambda nodes: env.tick(nodes * QUERY_NODE_CYCLES,
                                         "evaluate"))
    env.commit({
        "query": sql,
        "root": root,
        "round": agg_header["round"],
        "labels": list(result.labels),
        "values": list(result.values),
        "matched": result.matched,
        "scanned": result.scanned,
        "group_by": result.group_by,
        "groups": [[key, list(values)]
                   for key, values in result.groups],
    })


@guest_program("telemetry-partition-v1")
def partition_guest(env: GuestEnv) -> None:
    """§7 parallelization: partial aggregation over one partition.

    Verifies the partition's window commitments and folds its records
    into *partial* per-flow aggregates (no Merkle state — partials are
    public journal outputs merged downstream).
    """
    header = env.read()
    policy = AggregationPolicy.from_wire(header["policy"])
    windows: list[dict[str, Any]] = []
    partials: dict[bytes, CLogEntry] = {}
    order: list[bytes] = []
    for _ in range(header["num_routers"]):
        router_input = env.read()
        recomputed = env.hash_many(TAG_COMMITMENT, router_input["blobs"],
                                   category="commitment")
        if recomputed != router_input["commitment"]:
            env.abort(
                f"integrity check failed for router "
                f"{router_input['router_id']!r}")
        windows.append({
            "r": router_input["router_id"],
            "w": router_input["window_index"],
            "c": recomputed,
        })
        for blob in router_input["blobs"]:
            env.tick(len(blob) * DECODE_CYCLES_PER_BYTE, "decode")
            env.tick(MERGE_CYCLES, "aggregate")
            record = NetFlowRecord.from_wire(decode(blob))
            key_bytes = record.key.pack()
            existing = partials.get(key_bytes)
            if existing is None:
                partials[key_bytes] = CLogEntry.fresh(record)
                order.append(key_bytes)
            else:
                partials[key_bytes] = existing.merge(record, policy)
    env.commit({
        "partition": header["partition"],
        "windows": windows,
        "policy": policy.digest(),
        "entries": len(order),
    })
    env.commit_many([{"k": key_bytes,
                      "p": partials[key_bytes].to_payload()}
                     for key_bytes in order])


@guest_program("telemetry-merge-v1")
def merge_guest(env: GuestEnv) -> None:
    """§7 parallelization: merge partition proofs into one final proof.

    Verifies each partition claim via ``env.verify``, combines the
    partial aggregates (associative policies only), builds the full
    Merkle tree in-guest, and commits the combined root — a single
    receipt standing for the whole round.
    """
    header = env.read()
    policy = AggregationPolicy.from_wire(header["policy"])
    combined: dict[bytes, CLogEntry] = {}
    order: list[bytes] = []
    windows: list[dict[str, Any]] = []
    for _ in range(header["num_partitions"]):
        binding = env.read()
        env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
                 "verify")
        claim_digest = _guest_claim_digest(env, binding)
        values = list(decode_stream(binding["journal"]))
        part_header = values[0] if values else None
        if not isinstance(part_header, dict):
            env.abort("partition journal has no header")
        if part_header["policy"] != policy.digest():
            env.abort("partition used a different aggregation policy")
        if binding["image_id"] != partition_guest.image_id:
            env.abort("partition receipt was not produced by the "
                      "partition guest")
        env.verify(binding["image_id"], claim_digest)
        windows.extend(part_header["windows"])
        for item in values[1:]:
            env.tick(len(item["p"]) * DECODE_CYCLES_PER_BYTE, "decode")
            env.tick(MERGE_CYCLES, "aggregate")
            partial = CLogEntry.from_payload(item["p"])
            existing = combined.get(item["k"])
            if existing is None:
                combined[item["k"]] = partial
                order.append(item["k"])
            else:
                combined[item["k"]] = existing.combine(partial, policy)
    hasher = env.merkle_hasher()
    leaves = [hasher.leaf(key_bytes + combined[key_bytes].to_payload())
              for key_bytes in order]
    tree = MerkleTree(leaves, hasher=hasher)
    env.commit({
        "round": header["round"],
        "new_root": tree.root,
        "size": len(order),
        "depth": tree.depth,
        "windows": windows,
        "policy": policy.digest(),
        "entries": len(order),
    })


@guest_program("telemetry-query-partition-v1")
def query_partition_guest(env: GuestEnv) -> None:
    """Partitioned §4.2 query proving: partial aggregates over one
    aligned slot range of the committed CLog.

    Input frames: partition header (query, partition geometry, subtree
    sibling path); aggregation-receipt binding; then the partition's
    entries (key, payload) in slot order.  The guest rebuilds the
    partition's aligned-subtree node from its entries (padding with
    empty-subtree roots, mirroring the main tree's right-padding rule)
    and folds it up the sibling path to the aggregation root — proving
    the entries are exactly slots ``[start, start + count)`` of the
    attested dataset, so partitions that each verify and together tile
    ``[0, size)`` give the same completeness guarantee as a full scan.
    The journal carries mergeable accumulator states, not final values.
    """
    header = env.read()
    binding = env.read()
    env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE, "verify")
    claim_digest = _guest_claim_digest(env, binding)
    agg_values = decode_stream(binding["journal"])
    agg_header = next(agg_values, None)
    if not isinstance(agg_header, dict):
        env.abort("aggregation journal has no header")
    env.verify(binding["image_id"], claim_digest)
    root: Digest = agg_header["new_root"]
    size: int = agg_header["size"]
    if size <= 0:
        env.abort("cannot partition an empty CLog")

    partition: int = header["partition"]
    num_partitions: int = header["num_partitions"]
    chunk_po2: int = header["chunk_po2"]
    start: int = header["start"]
    count: int = header["count"]
    siblings: list[Digest] = header["siblings"]

    depth = 0
    while (1 << depth) < size:
        depth += 1
    if not 0 <= chunk_po2 <= depth:
        env.abort("chunk size out of range for the committed tree")
    chunk = 1 << chunk_po2
    if num_partitions != (size + chunk - 1) // chunk:
        env.abort("partition count does not tile the committed tree")
    if not 0 <= partition < num_partitions:
        env.abort("partition index out of range")
    if start != partition << chunk_po2 \
            or count != min(size - start, chunk) or count <= 0:
        env.abort("partition range does not match its slot alignment")
    if len(siblings) != depth - chunk_po2:
        env.abort("sibling path length does not match partition depth")

    hasher = env.merkle_hasher()
    leaves, views = _read_entry_views(env, hasher, count)
    subtree = MerkleTree(leaves, hasher=hasher)
    sub_root = subtree.root
    for height in range(subtree.depth, chunk_po2):
        sub_root = hasher.node(sub_root, EMPTY_ROOTS[height])
    if _path_root(hasher, sub_root, partition, siblings) != root:
        env.abort("partition entries do not reproduce the committed root")

    sql: str = header["query"]
    env.tick(len(sql) * PARSE_CYCLES_PER_BYTE, "parse")
    query = parse_query(sql)
    partial = evaluate_partial(
        query, views,
        cost_hook=lambda nodes: env.tick(nodes * QUERY_NODE_CYCLES,
                                         "evaluate"))
    journal = {
        "query": sql,
        "root": root,
        "round": agg_header["round"],
        "size": size,
        "partition": partition,
        "num_partitions": num_partitions,
        "chunk_po2": chunk_po2,
        "start": start,
        "group_by": partial.group_by,
    }
    journal.update(partial.to_wire())
    env.commit(journal)


@guest_program("telemetry-query-merge-v1")
def query_merge_guest(env: GuestEnv) -> None:
    """Fold per-partition partial query aggregates into the final §4.2
    query journal.

    Verifies one resolved partition receipt per partition — pinning the
    partition guest's image id, so a journal of the right shape from
    any *other* guest cannot be folded in — checks the partials tile
    the committed entry set exactly (same query/root/round/size, every
    partition index exactly once, scanned counts summing to the size),
    and commits a journal byte-identical to the single-pass
    :data:`query_guest`'s.
    """
    header = env.read()
    sql: str = header["query"]
    num_partitions: int = header["num_partitions"]
    if num_partitions < 1:
        env.abort("merge needs at least one partition")
    root: Digest | None = None
    round_index = None
    size = None
    chunk_po2 = None
    seen: set[int] = set()
    scanned_total = 0
    partials: list[dict[str, Any]] = []
    for _ in range(num_partitions):
        binding = env.read()
        if binding["image_id"] != query_partition_guest.image_id:
            env.abort("partition receipt was not produced by the "
                      "query partition guest")
        env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
                 "verify")
        claim_digest = _guest_claim_digest(env, binding)
        env.verify(binding["image_id"], claim_digest)
        values = list(decode_stream(binding["journal"]))
        part = values[0] if len(values) == 1 else None
        if not isinstance(part, dict):
            env.abort("partition journal is not a single header")
        if part["query"] != sql:
            env.abort("partition proved a different query")
        if part["num_partitions"] != num_partitions:
            env.abort("partition disagrees on the partition count")
        if root is None:
            root = part["root"]
            round_index = part["round"]
            size = part["size"]
            chunk_po2 = part["chunk_po2"]
        elif part["root"] != root or part["round"] != round_index \
                or part["size"] != size \
                or part["chunk_po2"] != chunk_po2:
            env.abort("partitions bind different aggregation states")
        index = part["partition"]
        if index in seen:
            env.abort(f"partition {index} appears twice")
        seen.add(index)
        if part["start"] != index << chunk_po2:
            env.abort("partition start does not match its index")
        scanned_total += part["scanned"]
        partials.append(part)
    if len(seen) != num_partitions or scanned_total != size:
        env.abort("partitions do not cover the committed entry set")

    env.tick(len(sql) * PARSE_CYCLES_PER_BYTE, "parse")
    query = parse_query(sql)
    result = merge_partials(
        query, partials,
        cost_hook=lambda states: env.tick(states * MERGE_CYCLES,
                                          "merge"))
    env.commit({
        "query": sql,
        "root": root,
        "round": round_index,
        "labels": list(result.labels),
        "values": list(result.values),
        "matched": result.matched,
        "scanned": result.scanned,
        "group_by": result.group_by,
        "groups": [[key, list(values)]
                   for key, values in result.groups],
    })


@guest_program("telemetry-query-batch-partition-v1")
def query_batch_partition_guest(env: GuestEnv) -> None:
    """Batched partitioned query proving: partial aggregates for
    *several* queries over one aligned slot range, in one scan.

    Identical binding discipline to :data:`query_partition_guest` —
    the same geometry checks, the same subtree-to-root fold — but the
    header carries a ``queries`` list and the expensive work (decoding
    every entry, hashing the subtree against the committed root) is
    paid once for the whole batch.  Each query is then evaluated over
    the shared entry views, so per-query marginal cost is evaluation
    only.

    Journal: one *batch header* frame (partition geometry + the shared
    root/round/size and the scanned count), then one frame per query in
    header order carrying that query's text and mergeable partial
    state.  The multi-frame journal is what forces a dedicated merge
    guest: :data:`query_merge_guest` requires single-header partition
    journals.
    """
    header = env.read()
    binding = env.read()
    env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE, "verify")
    claim_digest = _guest_claim_digest(env, binding)
    agg_values = decode_stream(binding["journal"])
    agg_header = next(agg_values, None)
    if not isinstance(agg_header, dict):
        env.abort("aggregation journal has no header")
    env.verify(binding["image_id"], claim_digest)
    root: Digest = agg_header["new_root"]
    size: int = agg_header["size"]
    if size <= 0:
        env.abort("cannot partition an empty CLog")

    queries: list[str] = header["queries"]
    if not queries:
        env.abort("batch partition needs at least one query")
    partition: int = header["partition"]
    num_partitions: int = header["num_partitions"]
    chunk_po2: int = header["chunk_po2"]
    start: int = header["start"]
    count: int = header["count"]
    siblings: list[Digest] = header["siblings"]

    depth = 0
    while (1 << depth) < size:
        depth += 1
    if not 0 <= chunk_po2 <= depth:
        env.abort("chunk size out of range for the committed tree")
    chunk = 1 << chunk_po2
    if num_partitions != (size + chunk - 1) // chunk:
        env.abort("partition count does not tile the committed tree")
    if not 0 <= partition < num_partitions:
        env.abort("partition index out of range")
    if start != partition << chunk_po2 \
            or count != min(size - start, chunk) or count <= 0:
        env.abort("partition range does not match its slot alignment")
    if len(siblings) != depth - chunk_po2:
        env.abort("sibling path length does not match partition depth")

    hasher = env.merkle_hasher()
    leaves, views = _read_entry_views(env, hasher, count)
    subtree = MerkleTree(leaves, hasher=hasher)
    sub_root = subtree.root
    for height in range(subtree.depth, chunk_po2):
        sub_root = hasher.node(sub_root, EMPTY_ROOTS[height])
    if _path_root(hasher, sub_root, partition, siblings) != root:
        env.abort("partition entries do not reproduce the committed root")

    env.commit({
        "root": root,
        "round": agg_header["round"],
        "size": size,
        "partition": partition,
        "num_partitions": num_partitions,
        "chunk_po2": chunk_po2,
        "start": start,
        "num_queries": len(queries),
        "scanned": count,
    })
    for sql in queries:
        env.tick(len(sql) * PARSE_CYCLES_PER_BYTE, "parse")
        query = parse_query(sql)
        partial = evaluate_partial(
            query, views,
            cost_hook=lambda nodes: env.tick(nodes * QUERY_NODE_CYCLES,
                                             "evaluate"))
        frame = {"query": sql, "group_by": partial.group_by}
        frame.update(partial.to_wire())
        env.commit(frame)


@guest_program("telemetry-query-batch-merge-v1")
def query_batch_merge_guest(env: GuestEnv) -> None:
    """Fold *one query's* partials out of batched partition receipts.

    The batch emits one merge receipt per query, so every client still
    gets a standalone proof: this guest verifies every batch-partition
    receipt (pinning :data:`query_batch_partition_guest`'s image id),
    checks the partitions tile the committed entry set exactly — same
    root/round/size/chunk, every partition index once, scanned counts
    summing to the size — selects its query's partial frame from each
    multi-frame journal (cross-checking the frame's query text), and
    commits a journal byte-identical to the single-pass
    :data:`query_guest`'s for that query.
    """
    header = env.read()
    sql: str = header["query"]
    query_index: int = header["query_index"]
    num_partitions: int = header["num_partitions"]
    if num_partitions < 1:
        env.abort("merge needs at least one partition")
    if query_index < 0:
        env.abort("query index must be non-negative")
    root: Digest | None = None
    round_index = None
    size = None
    chunk_po2 = None
    seen: set[int] = set()
    scanned_total = 0
    partials: list[dict[str, Any]] = []
    for _ in range(num_partitions):
        binding = env.read()
        if binding["image_id"] != query_batch_partition_guest.image_id:
            env.abort("partition receipt was not produced by the "
                      "batch query partition guest")
        env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
                 "verify")
        claim_digest = _guest_claim_digest(env, binding)
        env.verify(binding["image_id"], claim_digest)
        values = list(decode_stream(binding["journal"]))
        part = values[0] if values else None
        if not isinstance(part, dict) or "num_queries" not in part:
            env.abort("partition journal has no batch header")
        if len(values) != 1 + part["num_queries"]:
            env.abort("partition journal frame count does not match "
                      "its batch header")
        if query_index >= part["num_queries"]:
            env.abort("query index out of range for the batch")
        if part["num_partitions"] != num_partitions:
            env.abort("partition disagrees on the partition count")
        if root is None:
            root = part["root"]
            round_index = part["round"]
            size = part["size"]
            chunk_po2 = part["chunk_po2"]
        elif part["root"] != root or part["round"] != round_index \
                or part["size"] != size \
                or part["chunk_po2"] != chunk_po2:
            env.abort("partitions bind different aggregation states")
        index = part["partition"]
        if index in seen:
            env.abort(f"partition {index} appears twice")
        seen.add(index)
        if part["start"] != index << chunk_po2:
            env.abort("partition start does not match its index")
        scanned_total += part["scanned"]
        frame = values[1 + query_index]
        if not isinstance(frame, dict) or frame.get("query") != sql:
            env.abort("selected batch frame proves a different query")
        partials.append(frame)
    if len(seen) != num_partitions or scanned_total != size:
        env.abort("partitions do not cover the committed entry set")

    env.tick(len(sql) * PARSE_CYCLES_PER_BYTE, "parse")
    query = parse_query(sql)
    result = merge_partials(
        query, partials,
        cost_hook=lambda states: env.tick(states * MERGE_CYCLES,
                                          "merge"))
    env.commit({
        "query": sql,
        "root": root,
        "round": round_index,
        "labels": list(result.labels),
        "values": list(result.values),
        "matched": result.matched,
        "scanned": result.scanned,
        "group_by": result.group_by,
        "groups": [[key, list(values)]
                   for key, values in result.groups],
    })


@guest_program("telemetry-delta-aggregation-v1")
def delta_aggregation_guest(env: GuestEnv) -> None:
    """Algorithm 1 over one *batch* of freshly committed RLogs.

    Identical to :data:`aggregation_guest` steps 2-3, but starting from
    an intermediate (root, size, depth) rather than the round boundary:
    a round's records are split across several deltas, proven as their
    windows commit, and folded by :data:`fold_guest` into one receipt
    whose journal is byte-identical to the monolithic guest's.

    The header carries ``seq`` — this delta's position in the round.
    Only delta 0 binds the previous round's receipt (step 1); every
    later delta trusts nothing about its starting root by itself, and
    becomes sound only once a fold chains it to delta 0 through the
    intermediate-root continuity checks.  The journal is a *streamed*
    header (the monolithic fields plus ``prev_size`` / ``prev_depth`` /
    ``seq``) followed by the same per-record items.
    """
    header = env.read()
    round_index = header["round"]
    seq: int = header["seq"]
    policy = AggregationPolicy.from_wire(header["policy"])
    current_root: Digest = header["prev_root"]
    size: int = header["prev_size"]
    depth: int = header["prev_depth"]
    hasher = env.merkle_hasher()

    # -- Step 1 (delta 0 only): Verify Previous Aggregation ------------------
    if seq < 0:
        env.abort("delta sequence number must be non-negative")
    if seq == 0:
        if round_index > 0:
            binding = env.read()
            env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
                     "verify")
            claim_digest = _guest_claim_digest(env, binding)
            prev_values = decode_stream(binding["journal"])
            prev_header = next(prev_values, None)
            if not isinstance(prev_header, dict):
                env.abort("previous journal has no header")
            if prev_header.get("new_root") != current_root \
                    or prev_header.get("size") != size \
                    or prev_header.get("depth") != depth \
                    or prev_header.get("round") != round_index - 1:
                env.abort(
                    "previous journal does not match claimed prev state")
            env.verify(binding["image_id"], claim_digest)
        else:
            if size != 0 or current_root != EMPTY_ROOTS[0] or depth != 0:
                env.abort("genesis round must start from an empty CLog")

    # -- Step 2: Verify Authenticity of Raw Logs -----------------------------
    windows: list[dict[str, Any]] = []
    batch: list[tuple[bytes, dict[str, Any]]] = []
    for _ in range(header["num_routers"]):
        router_input = env.read()
        recomputed = env.hash_many(TAG_COMMITMENT, router_input["blobs"],
                                   category="commitment")
        if recomputed != router_input["commitment"]:
            env.abort(
                f"integrity check failed for router "
                f"{router_input['router_id']!r} window "
                f"{router_input['window_index']}: commitment mismatch")
        windows.append({
            "r": router_input["router_id"],
            "w": router_input["window_index"],
            "c": recomputed,
        })
        for blob in router_input["blobs"]:
            env.tick(len(blob) * DECODE_CYCLES_PER_BYTE, "decode")
            wire = decode(blob)
            batch.append((blob, wire))

    # -- Step 3: Verify, Aggregate, and Update Merkle Tree -------------------
    items: list[dict[str, Any]] = []
    ops_remaining = header["num_ops"]
    for blob, record_wire in batch:
        if ops_remaining <= 0:
            env.abort("witness exhausted before all records aggregated")
        op = env.read()
        ops_remaining -= 1
        if op["op"] == OP_GROW:
            current_root = hasher.node(current_root, EMPTY_ROOTS[depth])
            depth += 1
            if ops_remaining <= 0:
                env.abort("grow op not followed by an insert")
            op = env.read()
            ops_remaining -= 1
        siblings: list[Digest] = op["siblings"]
        if len(siblings) != depth:
            env.abort("witness path length does not match tree depth")
        slot: int = op["slot"]
        key_bytes: bytes = record_wire["key"]
        env.tick(MERGE_CYCLES, "aggregate")
        record = NetFlowRecord.from_wire(record_wire)
        if op["op"] == OP_UPDATE:
            old_payload: bytes = op["old_payload"]
            old_leaf = hasher.leaf(key_bytes + old_payload)
            if _path_root(hasher, old_leaf, slot, siblings) \
                    != current_root:
                env.abort("integrity check for existing CLog entry "
                          "failed (line 17)")
            env.tick(len(old_payload) * DECODE_CYCLES_PER_BYTE, "decode")
            entry = CLogEntry.from_payload(old_payload)
            if entry.key != record.key:
                env.abort("witness entry key does not match record key")
            new_entry = entry.merge(record, policy)
        elif op["op"] == OP_INSERT:
            if slot != size:
                env.abort("insert must target the append slot")
            if _path_root(hasher, EMPTY_ROOTS[0], slot, siblings) \
                    != current_root:
                env.abort("vacant-slot proof failed")
            new_entry = CLogEntry.fresh(record)
            size += 1
        else:
            env.abort(f"unknown witness op {op['op']!r}")
        new_payload = new_entry.to_payload()
        new_leaf = hasher.leaf(key_bytes + new_payload)
        current_root = _path_root(hasher, new_leaf, slot, siblings)
        record_tag = env.tagged_hash(
            TAG_RLOG, blob, category="commitment").raw[:RECORD_TAG_BYTES]
        items.append({"s": slot, "l": new_leaf, "t": record_tag})
    if ops_remaining != 0:
        env.abort("witness has more ops than records")

    env.commit({
        "round": round_index,
        "prev_root": header["prev_root"],
        "prev_size": header["prev_size"],
        "prev_depth": header["prev_depth"],
        "new_root": current_root,
        "size": size,
        "depth": depth,
        "windows": windows,
        "policy": policy.digest(),
        "entries": len(items),
        "seq": [seq, seq],
    })
    env.commit_many(items)


@guest_program("telemetry-fold-v1")
def fold_guest(env: GuestEnv) -> None:
    """Recursive fold: merge one or two streamed child receipts.

    Each child is a :data:`delta_aggregation_guest` or :data:`fold_guest`
    receipt over a contiguous run of the round's deltas — its image id
    is pinned, so a journal of the right shape from any other guest
    cannot enter the tree.  Two children must be *adjacent*: the right
    child's starting (root, size, depth) is the left child's ending
    state and their sequence ranges abut, which by induction chains
    every item back to delta 0's verification of the previous round.

    A non-final fold re-commits the merged streamed journal.  The
    ``final`` fold additionally requires the merged run to start at
    delta 0 and commits exactly the monolithic :data:`aggregation_guest`
    journal — byte-identical, so clients and caches cannot tell a
    streamed round from a monolithic one.
    """
    header = env.read()
    round_index = header["round"]
    policy = AggregationPolicy.from_wire(header["policy"])
    policy_digest = policy.digest()
    num_children: int = header["num_children"]
    final: bool = header["final"]
    if num_children not in (1, 2):
        env.abort("fold takes one or two children")
    children: list[tuple[dict[str, Any], list[Any]]] = []
    for _ in range(num_children):
        binding = env.read()
        if binding["image_id"] != delta_aggregation_guest.image_id \
                and binding["image_id"] != fold_guest.image_id:
            env.abort("fold child receipt was not produced by the "
                      "delta or fold guest")
        env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
                 "verify")
        claim_digest = _guest_claim_digest(env, binding)
        env.verify(binding["image_id"], claim_digest)
        values = list(decode_stream(binding["journal"]))
        child = values[0] if values else None
        if not isinstance(child, dict) or "seq" not in child:
            env.abort("fold child journal is not a streamed header")
        if child["round"] != round_index:
            env.abort("fold child proves a different round")
        if child["policy"] != policy_digest:
            env.abort("fold child used a different aggregation policy")
        if child["entries"] != len(values) - 1:
            env.abort("fold child item count does not match its header")
        children.append((child, values[1:]))

    left = children[0][0]
    last = children[-1][0]
    if num_children == 2:
        right = children[1][0]
        if right["prev_root"] != left["new_root"] \
                or right["prev_size"] != left["size"] \
                or right["prev_depth"] != left["depth"]:
            env.abort("fold children are not contiguous: the right "
                      "child does not start where the left child ended")
        if right["seq"][0] != left["seq"][1] + 1:
            env.abort("fold children sequence ranges do not abut")
    env.tick(MERGE_CYCLES, "merge")

    windows = [window for child, _ in children
               for window in child["windows"]]
    entries = sum(child["entries"] for child, _ in children)
    if final:
        if left["seq"][0] != 0:
            env.abort("final fold must cover the round from delta 0")
        env.commit({
            "round": round_index,
            "prev_root": left["prev_root"],
            "new_root": last["new_root"],
            "size": last["size"],
            "depth": last["depth"],
            "windows": windows,
            "policy": policy_digest,
            "entries": entries,
        })
    else:
        env.commit({
            "round": round_index,
            "prev_root": left["prev_root"],
            "prev_size": left["prev_size"],
            "prev_depth": left["prev_depth"],
            "new_root": last["new_root"],
            "size": last["size"],
            "depth": last["depth"],
            "windows": windows,
            "policy": policy_digest,
            "entries": entries,
            "seq": [left["seq"][0], last["seq"][1]],
        })
    for _, items in children:
        env.commit_many(items)


# The one query every provider proves for a federation round: total
# traffic, total loss, flow count.  The join guest pins the exact SQL so
# no provider can substitute a filtered view of its own round.
FEDERATION_TOTALS_SQL = \
    "SELECT SUM(packets), SUM(lost_packets), COUNT(*) FROM clogs"
JOIN_CYCLES_PER_PROVIDER = 150
PPM = 1_000_000


@guest_program("telemetry-federation-join-v1")
def federation_join_guest(env: GuestEnv) -> None:
    """ROADMAP item 4: prove a cross-provider join from K verified
    query receipts — the auditor checks one receipt instead of trusting
    its own arithmetic over K query responses.

    Input frames: a federation header (provider names in delivery-chain
    order, their published round roots, join thresholds); then one
    *resolved* query-receipt binding per provider, each proving the
    canonical :data:`FEDERATION_TOTALS_SQL` over that provider's
    committed round.  The guest verifies every binding (image id pinned
    to the query guests), checks each proven root against the published
    root in the header — a provider whose published root does not match
    its proven round deterministically aborts the join — and computes
    end-to-end path loss, the inter-domain traffic matrix and an SLA
    attestation over the proven totals.

    Traffic model (the shape ``build_federation_scenario`` constructs):
    providers hand traffic down the chain in header order; per provider
    ``SUM(packets)`` is what arrived at its ingress and ``SUM(packets)
    − SUM(lost_packets)`` what it delivered downstream (each egress
    link's loss is charged to the upstream domain, as in the two-party
    peering model).  All arithmetic is exact-integer in parts-per-
    million, so the attestation is deterministic across hosts.
    """
    header = env.read()
    num_providers: int = header["num_providers"]
    providers: list[str] = list(header["providers"])
    roots: list[Digest] = list(header["roots"])
    tolerance_ppm: int = header["tolerance_ppm"]
    sla_loss_ppm: int = header["sla_loss_ppm"]
    if num_providers < 2:
        env.abort("a federation join needs at least two providers")
    if len(providers) != num_providers \
            or len(roots) != num_providers:
        env.abort("provider names/roots do not match num_providers")
    if tolerance_ppm < 0 or sla_loss_ppm < 0:
        env.abort("federation thresholds must be non-negative")

    rounds: list[int] = []
    packets: list[int] = []
    lost: list[int] = []
    flows: list[int] = []
    for index in range(num_providers):
        binding = env.read()
        if binding["image_id"] not in (query_guest.image_id,
                                       query_merge_guest.image_id):
            env.abort("federation join input was not produced by a "
                      "query guest")
        env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
                 "verify")
        claim_digest = _guest_claim_digest(env, binding)
        env.verify(binding["image_id"], claim_digest)
        values = list(decode_stream(binding["journal"]))
        journal = values[0] if len(values) == 1 else None
        if not isinstance(journal, dict):
            env.abort("provider journal is not a single query header")
        if journal["query"] != FEDERATION_TOTALS_SQL:
            env.abort(f"provider {providers[index]!r} proved a "
                      "different query than the federation totals")
        if journal["root"] != roots[index]:
            env.abort(f"provider {providers[index]!r} published a "
                      "root that does not match its proven round")
        prov_packets, prov_lost, prov_flows = journal["values"]
        prov_packets = int(prov_packets or 0)
        prov_lost = int(prov_lost or 0)
        prov_flows = int(prov_flows or 0)
        if prov_lost < 0 or prov_packets < prov_lost:
            env.abort(f"provider {providers[index]!r} proved more "
                      "loss than traffic")
        rounds.append(int(journal["round"]))
        packets.append(prov_packets)
        lost.append(prov_lost)
        flows.append(prov_flows)
    env.tick(num_providers * JOIN_CYCLES_PER_PROVIDER, "merge")

    delivered = [packets[i] - lost[i] for i in range(num_providers)]
    boundaries: list[list[Any]] = []
    matrix: list[list[Any]] = []
    boundaries_ok = True
    for i in range(num_providers - 1):
        sent = delivered[i]
        received = packets[i + 1]
        gap = sent - received
        larger = max(sent, received)
        within = larger == 0 \
            or abs(gap) * PPM <= tolerance_ppm * larger
        ok = within and flows[i] == flows[i + 1]
        boundaries_ok = boundaries_ok and ok
        boundaries.append([providers[i], providers[i + 1], sent,
                           received, gap, ok])
        matrix.append([providers[i], providers[i + 1], sent])

    offered = packets[0]
    end_delivered = delivered[-1]
    path_lost = offered - end_delivered
    loss_ppm = path_lost * PPM // offered if offered else 0
    provider_ok: list[bool] = []
    for i in range(num_providers):
        internal_ppm = lost[i] * PPM // packets[i] if packets[i] else 0
        provider_ok.append(internal_ppm <= sla_loss_ppm)
    sla_ok = boundaries_ok and all(provider_ok)

    env.commit({
        "providers": providers,
        "roots": roots,
        "rounds": rounds,
        "totals": [[packets[i], lost[i], flows[i]]
                   for i in range(num_providers)],
        "boundaries": boundaries,
        "matrix": matrix,
        "path": {
            "offered": offered,
            "delivered": end_delivered,
            "lost": path_lost,
            "loss_ppm": loss_ppm,
        },
        "sla": {
            "tolerance_ppm": tolerance_ppm,
            "loss_ppm_limit": sla_loss_ppm,
            "providers": provider_ok,
            "ok": sla_ok,
        },
    })


# -- guest registry ----------------------------------------------------------

GUEST_REGISTRY: dict[str, GuestProgram] = {}


def register_guest(program: GuestProgram) -> GuestProgram:
    """Make ``program`` resolvable by name (idempotent for the same
    object; re-registering a *different* program under a taken name is a
    configuration error — silent shadowing would break the receipt↔code
    binding)."""
    existing = GUEST_REGISTRY.get(program.name)
    if existing is not None and existing is not program:
        raise ConfigurationError(
            f"guest name {program.name!r} already registered with image "
            f"{existing.image_id.short()}…")
    GUEST_REGISTRY[program.name] = program
    return program


def resolve_guest(name: str) -> GuestProgram:
    """Look up a guest by name, loading lazy out-of-module guests.

    ``repro.core.rebuild`` imports *this* module, so its guest cannot
    register at import time without a cycle; a first miss triggers the
    import, after which the registry is complete.
    """
    program = GUEST_REGISTRY.get(name)
    if program is None:
        from . import rebuild  # noqa: F401  (registers its guest)
        program = GUEST_REGISTRY.get(name)
    if program is None:
        raise ConfigurationError(
            f"unknown guest program {name!r}; registered: "
            f"{sorted(GUEST_REGISTRY)}")
    return program


for _program in (aggregation_guest, query_guest, partition_guest,
                 merge_guest, query_partition_guest, query_merge_guest,
                 query_batch_partition_guest, query_batch_merge_guest,
                 delta_aggregation_guest, fold_guest,
                 federation_join_guest):
    register_guest(_program)
