"""The client-side verifier (Figure 1, right).

Clients hold only public material: the bulletin board of router
commitments and the known guest image ids (the aggregation and query
programs are public code).  From a chain of aggregation receipts plus a
query receipt they establish, without seeing any log entry, that

* every aggregation round executed Algorithm 1 over windows whose
  hashes match the published commitments,
* the rounds form an unbroken chain from the empty CLog, with no window
  consumed twice, and
* the query result was computed over exactly the latest committed root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..commitments import BulletinBoard
from ..errors import ChainError, VerificationError
from ..hashing import Digest
from ..merkle.tree import EMPTY_ROOTS
from ..zkvm import Receipt, Verifier
from .guest_programs import (
    aggregation_guest,
    query_batch_merge_guest,
    query_guest,
    query_merge_guest,
)
from .query_proof import QueryResponse


@dataclass(frozen=True)
class VerifiedAggregation:
    """What a verified aggregation round publicly establishes."""

    round: int
    prev_root: Digest
    new_root: Digest
    size: int
    windows: tuple[tuple[str, int], ...]  # (router_id, window_index)
    entries: int


@dataclass(frozen=True)
class VerifiedQuery:
    """What a verified query response publicly establishes."""

    sql: str
    labels: tuple[str, ...]
    values: tuple[int | float | None, ...]
    matched: int
    scanned: int
    root: Digest
    round: int
    group_by: str | None = None
    groups: tuple[tuple[Any, tuple[int | float | None, ...]], ...] = ()


class VerifierClient:
    """Independent verification from public material only."""

    def __init__(self, bulletin: BulletinBoard) -> None:
        self.bulletin = bulletin
        self._verifier = Verifier()
        # Clients know the published guest programs' image ids.  All
        # three aggregation strategies — update-path, full-rebuild, and
        # streamed composition (whose final fold receipt commits the
        # same journal byte-for-byte) — are trusted code with
        # interchangeable journal layouts.
        from .guest_programs import fold_guest
        from .rebuild import rebuild_aggregation_guest
        self.aggregation_image_ids = (
            aggregation_guest.image_id,
            rebuild_aggregation_guest.image_id,
            fold_guest.image_id,
        )
        self.aggregation_image_id = aggregation_guest.image_id
        # A query answer arrives as a full-scan receipt, a partitioned
        # merge receipt, or a batched-merge receipt (one per query of a
        # proving batch); all three commit the same journal layout, and
        # each merge guest pins its partition image id internally, so
        # the client only needs the outer image.
        self.query_image_ids = (
            query_guest.image_id,
            query_merge_guest.image_id,
            query_batch_merge_guest.image_id,
        )
        self.query_image_id = query_guest.image_id

    # -- aggregation receipts ------------------------------------------------

    def verify_aggregation(self, receipt: Receipt,
                           prev: VerifiedAggregation | None = None
                           ) -> VerifiedAggregation:
        """Verify one aggregation receipt and cross-check the bulletin.

        ``prev`` (the previous round's verified view) enforces linkage;
        pass ``None`` only for round 0, which must start from the empty
        CLog.
        """
        if receipt.claim.image_id not in self.aggregation_image_ids:
            raise VerificationError(
                f"receipt image {receipt.claim.image_id.short()}... is "
                "not a trusted aggregation program")
        self._verifier.verify(receipt, receipt.claim.image_id)
        header = self._journal_header(receipt)
        verified = VerifiedAggregation(
            round=header["round"],
            prev_root=header["prev_root"],
            new_root=header["new_root"],
            size=header["size"],
            windows=tuple((w["r"], w["w"]) for w in header["windows"]),
            entries=header["entries"],
        )
        # Window commitments in the journal must match the public board.
        for window_info in header["windows"]:
            published = self.bulletin.get(window_info["r"],
                                          window_info["w"])
            if published.digest != window_info["c"]:
                raise VerificationError(
                    f"aggregation consumed a commitment for "
                    f"({window_info['r']!r}, {window_info['w']}) that "
                    "differs from the published one")
        # Chain linkage.
        if prev is None:
            if verified.round != 0:
                raise ChainError(
                    f"round {verified.round} verified without its "
                    "predecessor")
            if verified.prev_root != EMPTY_ROOTS[0]:
                raise ChainError(
                    "round 0 does not start from the empty CLog root")
        else:
            if verified.round != prev.round + 1:
                raise ChainError(
                    f"round {verified.round} does not follow round "
                    f"{prev.round}")
            if verified.prev_root != prev.new_root:
                raise ChainError(
                    f"round {verified.round} prev_root does not match "
                    f"round {prev.round} new_root")
        return verified

    def verify_chain(self, receipts: list[Receipt]
                     ) -> list[VerifiedAggregation]:
        """Verify a full aggregation history from genesis.

        Also rejects double-consumption: no (router, window) pair may be
        aggregated twice across the chain (a replaying prover would
        double-count committed traffic).
        """
        if not receipts:
            raise ChainError("empty receipt chain")
        verified: list[VerifiedAggregation] = []
        seen_windows: set[tuple[str, int]] = set()
        prev: VerifiedAggregation | None = None
        for receipt in receipts:
            current = self.verify_aggregation(receipt, prev)
            duplicates = seen_windows.intersection(current.windows)
            if duplicates:
                raise ChainError(
                    f"windows consumed twice across the chain: "
                    f"{sorted(duplicates)}")
            seen_windows.update(current.windows)
            verified.append(current)
            prev = current
        return verified

    # -- query receipts ------------------------------------------------------------

    def verify_query(self, response: QueryResponse,
                     aggregation: VerifiedAggregation) -> VerifiedQuery:
        """Verify a query response against a verified aggregation round.

        Checks both properties §4.2 promises: the computation was
        correct (receipt verifies against the public query image) and it
        ran over the committed data (journal root equals the verified
        aggregation root).  Accepts both proving strategies — a
        full-scan receipt and a partitioned merge receipt carry
        identical journals and differ only in which trusted query
        image produced them.
        """
        image_id = response.receipt.claim.image_id
        if image_id not in self.query_image_ids:
            raise VerificationError(
                f"receipt image {image_id.short()}... is not a trusted "
                "query program")
        self._verifier.verify(response.receipt, image_id)
        journal = response.receipt.journal.decode_one()
        if not isinstance(journal, dict):
            raise VerificationError("query journal is not a dict")
        if journal["root"] != aggregation.new_root:
            raise VerificationError(
                "query was proven against a different aggregation root")
        if journal["round"] != aggregation.round:
            raise VerificationError(
                "query round does not match the aggregation round")
        if journal["query"] != response.sql:
            raise VerificationError(
                "receipt proves a different query text than claimed")
        if tuple(journal["values"]) != tuple(response.values) \
                or tuple(journal["labels"]) != tuple(response.labels):
            raise VerificationError(
                "response values do not match the proven journal")
        journal_groups = tuple((key, tuple(values)) for key, values in
                               journal.get("groups", []))
        if journal.get("group_by") != response.group_by \
                or journal_groups != response.groups:
            raise VerificationError(
                "response groups do not match the proven journal")
        return VerifiedQuery(
            sql=journal["query"],
            labels=tuple(journal["labels"]),
            values=tuple(journal["values"]),
            matched=journal["matched"],
            scanned=journal["scanned"],
            root=journal["root"],
            round=journal["round"],
            group_by=journal.get("group_by"),
            groups=journal_groups,
        )

    def verify_response(self, response: QueryResponse,
                        receipts: list[Receipt]) -> VerifiedQuery:
        """Verify a query response against a full receipt chain.

        This is the remote-deployment entry point: a client that
        fetched ``receipts`` and ``response`` over the wire
        (:class:`repro.net.QueryClient`) verifies them with exactly the
        in-process checks — chain from genesis, then the query bound to
        the round it claims.
        """
        chain = self.verify_chain(receipts)
        if not 0 <= response.round < len(chain):
            raise VerificationError(
                f"response claims round {response.round} but the "
                f"chain has {len(chain)} round(s)")
        return self.verify_query(response, chain[response.round])

    # -- internals --------------------------------------------------------------------

    @staticmethod
    def _journal_header(receipt: Receipt) -> dict[str, Any]:
        header = next(receipt.journal.values(), None)
        if not isinstance(header, dict):
            raise VerificationError("aggregation journal missing header")
        return header
