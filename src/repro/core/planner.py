"""Query cost planning (paper §7, "Query complexity").

"While our ZKP framework is general-purpose and in principle supports
arbitrary queries, the cost of proof generation increases with query
complexity."  A provider therefore wants to *predict* a query's proving
cost before running the prover — for admission control, pricing, or
picking a backend.

The planner mirrors the query guest's metering analytically: it walks
the same cost constants (`repro.core.guest_programs`,
`repro.zkvm.cycles`) over the current CLog statistics, yielding a cycle
estimate the cost model converts to seconds per backend.  Accuracy is
checked in the tests (within a few percent of the metered execution).

It also prices the *partitioned* strategy (`estimate_partitioned`):
per-partition partial-query proofs plus the merge guest, with the
end-to-end latency modeled as ``max(partition) + merge`` — which is how
``choose_strategy`` decides whether splitting a query across the
proving engine pays for a given entry count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..query import parse_query
from ..query.ast import AggFunc, Aggregate, Query
from ..query.fields import QUERYABLE_FIELDS, FieldKind
from ..serialization import encode
from ..zkvm import cycles as cy
from ..zkvm.costmodel import CostModel, ProverBackend
from .clog import CLogState
from .guest_programs import (
    DECODE_CYCLES_PER_BYTE,
    MERGE_CYCLES,
    PARSE_CYCLES_PER_BYTE,
    QUERY_NODE_CYCLES,
    QUERY_VIEW_CYCLES,
)

# Bytes of a leaf-hash preimage beyond the payload (the packed key).
_KEY_BYTES = 13
# Encoded entry-frame overhead beyond key+payload ({'key':…,'payload':…}).
_FRAME_OVERHEAD = 24
# Encoded size of a Digest (tag + 32 raw bytes).
_DIGEST_BYTES = 33
# Per-row structural overhead of a journal group row ([key, [values]]).
_GROUP_ROW_OVERHEAD = 4
# Encoded per-term result values: small ints (COUNT), wider ints
# (SUM/MIN/MAX over int columns), tag + 8-byte doubles.
_COUNT_VALUE_BYTES = 4
_INT_VALUE_BYTES = 7
_FLOAT_VALUE_BYTES = 9
# Encoded per-term *partial accumulator state* ({"c","t","mn","mx"}):
# int totals stay ints; float totals are exact [numerator, denominator]
# fraction pairs, which dominate the row.
_COUNT_STATE_BYTES = 24
_INT_STATE_BYTES = 40
_FLOAT_STATE_BYTES = 65


@dataclass(frozen=True)
class QueryCostEstimate:
    """Predicted proving cost for one query (or one partition of one)."""

    sql: str
    entries: int
    predicted_cycles: int
    predicted_segments: int

    def seconds(self, model: CostModel | None = None,
                backend: ProverBackend = ProverBackend.CPU_ZKVM
                ) -> float:
        model = model or CostModel()
        # One segmentation drives both the padded-cycle sum and the
        # per-segment overhead count — the same `_segment_sizes` walk
        # that produced `predicted_segments` at estimate time, so the
        # two can never disagree.
        segments = _segment_sizes(self.predicted_cycles)
        padded = sum(1 << _po2(size) for size in segments)
        if backend is ProverBackend.SPECIALIZED_HASH:
            # Rough: compressions ≈ hash cycles / cost-per-block.
            compressions = self.predicted_cycles \
                // cy.SHA256_COMPRESS_CYCLES
            return compressions / model.specialized_hashes_per_second \
                + model.base_overhead
        seconds = padded / model.cpu_cycles_per_second \
            + len(segments) * model.segment_overhead \
            + model.base_overhead
        if backend is ProverBackend.GPU_ZKVM:
            seconds /= model.gpu_speedup
        return seconds

    def minutes(self, model: CostModel | None = None) -> float:
        return self.seconds(model) / 60.0


@dataclass(frozen=True)
class PartitionedQueryCostEstimate:
    """Predicted cost of proving one query as partitions + merge."""

    sql: str
    entries: int
    num_partitions: int
    chunk_po2: int
    partition_estimates: tuple[QueryCostEstimate, ...]
    merge_estimate: QueryCostEstimate

    @property
    def predicted_cycles(self) -> int:
        return sum(p.predicted_cycles for p in self.partition_estimates) \
            + self.merge_estimate.predicted_cycles

    def modeled_seconds(self, model: CostModel | None = None,
                        backend: ProverBackend =
                        ProverBackend.CPU_ZKVM) -> float:
        """End-to-end latency with partitions proven concurrently."""
        model = model or CostModel()
        slowest = max(p.seconds(model, backend)
                      for p in self.partition_estimates)
        return slowest + self.merge_estimate.seconds(model, backend)

    def sequential_seconds(self, model: CostModel | None = None,
                           backend: ProverBackend =
                           ProverBackend.CPU_ZKVM) -> float:
        """The same proofs generated one at a time."""
        model = model or CostModel()
        total = sum(p.seconds(model, backend)
                    for p in self.partition_estimates)
        return total + self.merge_estimate.seconds(model, backend)


def partition_layout(size: int, num_partitions: int) -> tuple[int, int]:
    """Aligned-chunk geometry for partitioned query proving.

    Picks the smallest power-of-two chunk that covers ``size`` leaves
    in at most ``num_partitions`` chunks; returns ``(chunk_po2,
    actual_partitions)``.  Chunks are subtree-aligned so each partition
    binds to the committed root through a single sibling path, and only
    the last chunk may be partial.
    """
    if size < 1:
        raise ConfigurationError("cannot partition an empty entry set")
    if num_partitions < 1:
        raise ConfigurationError("num_partitions must be >= 1")
    chunk_po2 = 0
    while _chunk_count(size, chunk_po2) > num_partitions:
        chunk_po2 += 1
    return chunk_po2, _chunk_count(size, chunk_po2)


def _chunk_count(size: int, chunk_po2: int) -> int:
    return (size + (1 << chunk_po2) - 1) >> chunk_po2


def _segment_sizes(total: int) -> list[int]:
    sizes = []
    remaining = max(total, 1)
    while remaining > 0:
        chunk = min(remaining, cy.SEGMENT_CYCLE_LIMIT)
        sizes.append(chunk)
        remaining -= chunk
    return sizes


def _po2(count: int) -> int:
    po2 = cy.SEGMENT_MIN_PO2
    while (1 << po2) < count:
        po2 += 1
    return po2


def _tagged_hash_cycles(payload_bytes: int) -> int:
    return ((payload_bytes + 9 + 63) // 64) * cy.SHA256_COMPRESS_CYCLES


def _tree_depth(size: int) -> int:
    depth = 0
    while (1 << depth) < max(size, 1):
        depth += 1
    return depth


def _subtree_hashes(count: int) -> int:
    """Internal node hashes to rebuild a tree over ``count`` leaves."""
    hashes = 0
    width = count
    while width > 1:
        width = (width + 1) // 2
        hashes += width
    return hashes


class QueryPlanner:
    """Predicts query-guest cycles from CLog statistics."""

    def __init__(self, state: CLogState,
                 agg_journal_bytes: int) -> None:
        self.entries = len(state)
        self.agg_journal_bytes = agg_journal_bytes
        self._state = state
        payload_sizes = [len(entry.to_payload())
                         for entry in state.entries_in_slot_order()]
        self.avg_payload = (sum(payload_sizes) / len(payload_sizes)
                            if payload_sizes else 0.0)
        self._views: list[dict] | None = None
        self._group_profiles: dict[str, tuple[int, float]] = {}

    def estimate(self, sql: str) -> QueryCostEstimate:
        query = parse_query(sql)
        return self._estimate(sql, query)

    def estimate_partitioned(self, sql: str, num_partitions: int
                             ) -> PartitionedQueryCostEstimate:
        """Price the partitioned strategy at ``num_partitions``."""
        query = parse_query(sql)
        chunk_po2, count = partition_layout(max(self.entries, 1),
                                            num_partitions)
        chunk = 1 << chunk_po2
        partition_estimates = []
        partial_bytes = []
        for index in range(count):
            lo = index << chunk_po2
            hi = min(self.entries, lo + chunk)
            journal_bytes = self._partial_journal_bytes(
                sql, query, lo, hi)
            partial_bytes.append(journal_bytes)
            partition_estimates.append(self._estimate_partition(
                sql, query, hi - lo, chunk_po2, journal_bytes))
        merge_estimate = self._estimate_merge(sql, query, partial_bytes,
                                              lo_hi_pairs=[
                                                  (i << chunk_po2,
                                                   min(self.entries,
                                                       (i + 1) << chunk_po2))
                                                  for i in range(count)])
        return PartitionedQueryCostEstimate(
            sql=sql,
            entries=self.entries,
            num_partitions=count,
            chunk_po2=chunk_po2,
            partition_estimates=tuple(partition_estimates),
            merge_estimate=merge_estimate,
        )

    def choose_strategy(self, sql: str, num_partitions: int | None,
                        model: CostModel | None = None) -> str:
        """``"partitioned"`` when splitting at ``num_partitions`` is
        modeled faster end-to-end than the full scan, else
        ``"full-scan"``.  Per-proof base overhead means partitioning
        only pays once the scan dominates — small states full-scan.
        """
        if num_partitions is None or num_partitions < 2 \
                or self.entries < 2:
            return "full-scan"
        model = model or CostModel()
        serial = self.estimate(sql).seconds(model)
        partitioned = self.estimate_partitioned(
            sql, num_partitions).modeled_seconds(model)
        return "partitioned" if partitioned < serial else "full-scan"

    # -- per-strategy estimates ---------------------------------------------

    def _estimate(self, sql: str, query: Query) -> QueryCostEstimate:
        n = self.entries
        cycles = cy.EXECUTION_BASE_CYCLES
        cycles += self._binding_cycles()

        # Per-entry work: frame I/O, leaf hash, payload decode, view.
        cycles += n * self._per_entry_cycles()

        # Tree reconstruction: n-1 node hashes (64-byte inputs) padded
        # to the power-of-two tree shape; approximate with n nodes.
        cycles += max(n, 1) * _tagged_hash_cycles(64)

        # Parse + evaluate.
        cycles += len(sql) * PARSE_CYCLES_PER_BYTE
        cycles += n * query.node_count * QUERY_NODE_CYCLES

        # Journal commit: fixed header/labels plus — the part that
        # grows with group cardinality — one encoded row per distinct
        # group key.
        result_bytes = 200 + 40 * len(query.labels) \
            + self._group_rows_bytes(query, 0, n)
        cycles += cy.io_cycles(result_bytes) \
            + _tagged_hash_cycles(result_bytes)

        total = int(cycles)
        return QueryCostEstimate(
            sql=sql,
            entries=n,
            predicted_cycles=total,
            predicted_segments=len(_segment_sizes(total)),
        )

    def _estimate_partition(self, sql: str, query: Query, count: int,
                            chunk_po2: int,
                            journal_bytes: int) -> QueryCostEstimate:
        """Mirror `query_partition_guest` for one ``count``-entry chunk."""
        depth = _tree_depth(self.entries)
        path_len = depth - chunk_po2
        cycles = cy.EXECUTION_BASE_CYCLES
        # Partition header frame (query + geometry + sibling path).
        cycles += cy.io_cycles(90 + len(sql)
                               + _DIGEST_BYTES * path_len)
        cycles += self._binding_cycles()
        cycles += count * self._per_entry_cycles()
        # Subtree rebuild, fold-up to chunk height, then sibling path.
        sub_depth = _tree_depth(max(count, 1))
        node_hashes = _subtree_hashes(count) \
            + (chunk_po2 - sub_depth) + path_len
        cycles += node_hashes * _tagged_hash_cycles(64)
        cycles += len(sql) * PARSE_CYCLES_PER_BYTE
        cycles += count * query.node_count * QUERY_NODE_CYCLES
        cycles += cy.io_cycles(journal_bytes) \
            + _tagged_hash_cycles(journal_bytes)
        total = int(cycles)
        return QueryCostEstimate(
            sql=sql,
            entries=count,
            predicted_cycles=total,
            predicted_segments=len(_segment_sizes(total)),
        )

    def _estimate_merge(self, sql: str, query: Query,
                        partial_bytes: list[int],
                        lo_hi_pairs: list[tuple[int, int]]
                        ) -> QueryCostEstimate:
        """Mirror `query_merge_guest` over the partition journals."""
        cycles = cy.EXECUTION_BASE_CYCLES
        cycles += cy.io_cycles(40 + len(sql))  # merge header frame
        terms = len(query.aggregates)
        for journal_bytes, (lo, hi) in zip(partial_bytes, lo_hi_pairs):
            # Binding frame I/O + journal hash/decode + claim recompute
            # + the recorded assumption.
            cycles += cy.io_cycles(journal_bytes + 160)
            cycles += _tagged_hash_cycles(journal_bytes)
            cycles += journal_bytes * DECODE_CYCLES_PER_BYTE
            cycles += 3 * _tagged_hash_cycles(96)
            cycles += cy.ASSUMPTION_CYCLES
            rows = self._group_cardinality(query, lo, hi) \
                if query.group_by is not None else 1
            cycles += rows * terms * MERGE_CYCLES
        cycles += len(sql) * PARSE_CYCLES_PER_BYTE
        result_bytes = 200 + 40 * len(query.labels) \
            + self._group_rows_bytes(query, 0, self.entries)
        cycles += cy.io_cycles(result_bytes) \
            + _tagged_hash_cycles(result_bytes)
        total = int(cycles)
        return QueryCostEstimate(
            sql=sql,
            entries=self.entries,
            predicted_cycles=total,
            predicted_segments=len(_segment_sizes(total)),
        )

    # -- shared terms --------------------------------------------------------

    def _binding_cycles(self) -> int:
        """Verify the aggregation binding: hash + decode the journal,
        recompute the claim digest, record the assumption."""
        return (_tagged_hash_cycles(self.agg_journal_bytes)
                + self.agg_journal_bytes * DECODE_CYCLES_PER_BYTE
                + 3 * _tagged_hash_cycles(96)  # claim + assumptions
                + cy.ASSUMPTION_CYCLES
                + cy.io_cycles(self.agg_journal_bytes + 200))

    def _per_entry_cycles(self) -> int:
        frame_bytes = _KEY_BYTES + self.avg_payload + _FRAME_OVERHEAD
        return (cy.io_cycles(int(frame_bytes))
                + _tagged_hash_cycles(int(_KEY_BYTES + self.avg_payload))
                + int(self.avg_payload) * DECODE_CYCLES_PER_BYTE
                + QUERY_VIEW_CYCLES)

    # -- group statistics ----------------------------------------------------

    def _slot_views(self) -> list[dict]:
        if self._views is None:
            self._views = self._state.entry_views()
        return self._views

    def _group_profile(self, field: str, lo: int,
                       hi: int) -> tuple[int, float]:
        """(distinct keys, average encoded key bytes) over a slot range."""
        cache_key = f"{field}:{lo}:{hi}"
        cached = self._group_profiles.get(cache_key)
        if cached is None:
            keys = {view[field] for view in self._slot_views()[lo:hi]}
            if keys:
                avg = sum(len(encode(key)) for key in keys) / len(keys)
            else:
                avg = 0.0
            cached = (len(keys), avg)
            self._group_profiles[cache_key] = cached
        return cached

    def _group_cardinality(self, query: Query, lo: int, hi: int) -> int:
        if query.group_by is None:
            return 0
        cardinality, _ = self._group_profile(query.group_by.name, lo, hi)
        return cardinality

    def _group_rows_bytes(self, query: Query, lo: int, hi: int) -> int:
        """Encoded bytes of the final journal's group rows."""
        if query.group_by is None:
            return 0
        cardinality, key_bytes = self._group_profile(
            query.group_by.name, lo, hi)
        per_row = _GROUP_ROW_OVERHEAD + key_bytes \
            + sum(_value_bytes(a) for a in query.aggregates)
        return int(cardinality * per_row)

    def _partial_journal_bytes(self, sql: str, query: Query, lo: int,
                               hi: int) -> int:
        """Encoded bytes of one partition's partial-state journal."""
        base = 160 + len(sql) + _DIGEST_BYTES
        if query.group_by is None:
            return base + sum(_state_bytes(a) for a in query.aggregates)
        cardinality, key_bytes = self._group_profile(
            query.group_by.name, lo, hi)
        per_row = _GROUP_ROW_OVERHEAD + key_bytes \
            + sum(_state_bytes(a) for a in query.aggregates)
        return int(base + cardinality * per_row)


def _term_kind(aggregate: Aggregate) -> FieldKind | None:
    if aggregate.field is None:
        return None
    return QUERYABLE_FIELDS[aggregate.field.name]


def _value_bytes(aggregate: Aggregate) -> int:
    if aggregate.func is AggFunc.COUNT:
        return _COUNT_VALUE_BYTES
    if aggregate.func is AggFunc.AVG:
        return _FLOAT_VALUE_BYTES
    if _term_kind(aggregate) is FieldKind.FLOAT:
        return _FLOAT_VALUE_BYTES
    return _INT_VALUE_BYTES


def _state_bytes(aggregate: Aggregate) -> int:
    if aggregate.func is AggFunc.COUNT:
        return _COUNT_STATE_BYTES
    if _term_kind(aggregate) is FieldKind.FLOAT:
        return _FLOAT_STATE_BYTES
    return _INT_STATE_BYTES


def estimate_query_cost(service, sql: str) -> QueryCostEstimate:
    """Convenience: plan a query against a prover service's state."""
    journal_bytes = service.chain.latest.receipt.journal_size \
        if len(service.chain) else 0
    return QueryPlanner(service.state, journal_bytes).estimate(sql)


# -- round planning: monolithic vs streamed composition ----------------------

@dataclass(frozen=True)
class RoundCostEstimate:
    """Predicted proving cost for one aggregation proof (a monolithic
    round, one delta, or one fold)."""

    records: int
    predicted_cycles: int
    predicted_segments: int

    def seconds(self, model: CostModel | None = None,
                backend: ProverBackend = ProverBackend.CPU_ZKVM
                ) -> float:
        model = model or CostModel()
        segments = _segment_sizes(self.predicted_cycles)
        padded = sum(1 << _po2(size) for size in segments)
        seconds = padded / model.cpu_cycles_per_second \
            + len(segments) * model.segment_overhead \
            + model.base_overhead
        if backend is ProverBackend.GPU_ZKVM:
            seconds /= model.gpu_speedup
        return seconds


@dataclass(frozen=True)
class StreamedRoundCostEstimate:
    """Predicted cost of proving one round as deltas + a fold tree.

    ``close_path`` marks the proofs that cannot overlap the stream: the
    last delta (its batch only exists at the round boundary) and every
    fold triggered by that final push or by closing the frontier.  All
    earlier deltas and carries prove while the window is still filling,
    so the *boundary latency* a streamed round adds is the close path,
    not the total.
    """

    delta_estimates: tuple[RoundCostEstimate, ...]
    fold_estimates: tuple[RoundCostEstimate, ...]
    close_fold_start: int

    @property
    def records(self) -> int:
        return sum(d.records for d in self.delta_estimates)

    @property
    def predicted_cycles(self) -> int:
        return sum(d.predicted_cycles for d in self.delta_estimates) \
            + sum(f.predicted_cycles for f in self.fold_estimates)

    def close_path_seconds(self, model: CostModel | None = None,
                           backend: ProverBackend =
                           ProverBackend.CPU_ZKVM) -> float:
        """Modeled latency from the round boundary to the final receipt."""
        model = model or CostModel()
        seconds = self.delta_estimates[-1].seconds(model, backend)
        for estimate in self.fold_estimates[self.close_fold_start:]:
            seconds += estimate.seconds(model, backend)
        return seconds

    def total_seconds(self, model: CostModel | None = None,
                      backend: ProverBackend = ProverBackend.CPU_ZKVM
                      ) -> float:
        """Every delta and fold priced sequentially (total prover work)."""
        model = model or CostModel()
        return sum(e.seconds(model, backend)
                   for e in self.delta_estimates + self.fold_estimates)


class RoundPlanner:
    """Prices a round's two proving strategies before proving it.

    Unlike the query planner (whose analytic walk avoids touching the
    entries), round shapes vary too much for a closed form to stay
    honest — so the round planner *executes* the guests (milliseconds
    of host work, metered cycles, no proving) on exactly the frames the
    aggregators would build, then prices the metered cycles through the
    cost model.  The estimate is exact by construction, which is what
    keeps it inside the planner's ±10% accuracy contract.
    """

    def __init__(self, policy=None) -> None:
        from .policy import DEFAULT_POLICY
        self.policy = policy or DEFAULT_POLICY

    def estimate_monolithic(self, state: CLogState, windows,
                            prev_receipt=None) -> RoundCostEstimate:
        """Price the round as one ``aggregation_guest`` proof."""
        from ..netflow.records import NetFlowRecord
        from ..serialization import decode
        from ..stream.pipeline import order_windows
        from ..zkvm import Executor, ExecutorEnvBuilder
        from .aggregation import make_receipt_binding
        from .guest_programs import aggregation_guest
        from .witness import build_witness
        ordered = order_windows(list(windows))
        records = [NetFlowRecord.from_wire(decode(blob))
                   for window in ordered for blob in window.blobs]
        witness = build_witness(state, records, self.policy)
        builder = ExecutorEnvBuilder()
        builder.write({
            "round": state.round,
            "policy": self.policy.to_wire(),
            "prev_root": witness.prev_root,
            "prev_size": witness.prev_size,
            "prev_depth": witness.prev_depth,
            "num_routers": len(ordered),
            "num_ops": witness.op_count,
        })
        if state.round > 0:
            builder.write(self._binding(prev_receipt, state.round,
                                        make_receipt_binding))
        for window in ordered:
            builder.write({
                "router_id": window.router_id,
                "window_index": window.window_index,
                "commitment": window.commitment,
                "blobs": list(window.blobs),
            })
        for op in witness.ops:
            builder.write(op)
        session = self._execute(Executor(), aggregation_guest,
                                builder.build())
        return RoundCostEstimate(
            records=len(records),
            predicted_cycles=session.total_cycles,
            predicted_segments=session.segment_count,
        )

    def estimate_streamed(self, state: CLogState, batches,
                          prev_receipt=None) -> StreamedRoundCostEstimate:
        """Price the round as per-batch deltas folded over a frontier.

        Replays the exact delta/fold schedule the
        :class:`~repro.stream.pipeline.StreamingAggregator` would run —
        fold children bind the *executed* child sessions, so journal
        sizes (the part that grows) are exact.
        """
        from ..netflow.records import NetFlowRecord
        from ..serialization import decode
        from ..stream.pipeline import (
            build_delta_input,
            build_fold_input,
            order_windows,
        )
        from ..zkvm import Executor
        from .aggregation import make_receipt_binding
        from .guest_programs import delta_aggregation_guest, fold_guest
        from .witness import build_witness
        executor = Executor()
        batches = list(batches) or [[]]
        work = state.clone()
        round_index = state.round
        delta_estimates: list[RoundCostEstimate] = []
        fold_estimates: list[RoundCostEstimate] = []
        fold_push_indices: list[int] = []
        # (height, synthetic child binding) — the executed analogue of
        # the pipeline's FoldFrontier.
        frontier: list[tuple[int, dict]] = []

        def fold(children: list[dict], final: bool,
                 push_index: int) -> dict:
            env_input = build_fold_input(self.policy, round_index,
                                         children, final)
            session = self._execute(executor, fold_guest, env_input)
            fold_estimates.append(RoundCostEstimate(
                records=0,
                predicted_cycles=session.total_cycles,
                predicted_segments=session.segment_count,
            ))
            fold_push_indices.append(push_index)
            return self._session_binding(fold_guest, env_input, session)

        for seq, batch in enumerate(batches):
            ordered = order_windows(list(batch))
            records = [NetFlowRecord.from_wire(decode(blob))
                       for window in ordered for blob in window.blobs]
            witness = build_witness(work, records, self.policy)
            binding = None
            if seq == 0 and round_index > 0:
                binding = self._binding(prev_receipt, round_index,
                                        make_receipt_binding)
            env_input = build_delta_input(self.policy, round_index, seq,
                                          witness, ordered, binding)
            session = self._execute(executor, delta_aggregation_guest,
                                    env_input)
            delta_estimates.append(RoundCostEstimate(
                records=len(records),
                predicted_cycles=session.total_cycles,
                predicted_segments=session.segment_count,
            ))
            frontier.append((0, self._session_binding(
                delta_aggregation_guest, env_input, session)))
            while len(frontier) >= 2 \
                    and frontier[-1][0] == frontier[-2][0]:
                right_height, right = frontier.pop()
                _, left = frontier.pop()
                frontier.append((right_height + 1,
                                 fold([left, right], False, seq)))
            witness.new_state.round = round_index
            work = witness.new_state

        close_fold_start = len(fold_estimates)
        last_push = len(batches) - 1
        while fold_push_indices and close_fold_start > 0 \
                and fold_push_indices[close_fold_start - 1] == last_push:
            close_fold_start -= 1
        if len(frontier) == 1:
            fold([frontier[0][1]], True, last_push)
        else:
            height, acc = frontier[0]
            for next_height, nxt in frontier[1:-1]:
                acc = fold([acc, nxt], False, last_push)
                height = max(height, next_height) + 1
            fold([acc, frontier[-1][1]], True, last_push)
        return StreamedRoundCostEstimate(
            delta_estimates=tuple(delta_estimates),
            fold_estimates=tuple(fold_estimates),
            close_fold_start=close_fold_start,
        )

    def choose(self, state: CLogState, batches, prev_receipt=None,
               model: CostModel | None = None,
               backend: ProverBackend = ProverBackend.CPU_ZKVM) -> str:
        """``"streamed"`` when the close path beats the monolithic
        proof, else ``"monolithic"``.  Per-proof base overhead means a
        round with few batches (or a tiny window) proves faster as one
        monolithic guest run; streaming wins once the round's full
        window dwarfs its final batch.
        """
        batches = [list(batch) for batch in batches]
        if len(batches) < 2:
            return "monolithic"
        model = model or CostModel()
        windows = [window for batch in batches for window in batch]
        monolithic = self.estimate_monolithic(
            state, windows, prev_receipt).seconds(model, backend)
        streamed = self.estimate_streamed(
            state, batches, prev_receipt).close_path_seconds(
            model, backend)
        return "streamed" if streamed < monolithic else "monolithic"

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _binding(prev_receipt, round_index: int, make_binding) -> dict:
        from ..errors import ChainError
        if prev_receipt is None:
            raise ChainError(
                f"estimating round {round_index} requires the round "
                f"{round_index - 1} receipt")
        return make_binding(prev_receipt)

    @staticmethod
    def _execute(executor, program, env_input):
        from ..errors import ProofError
        from ..zkvm.receipt import ExitCode
        session = executor.execute(program, env_input)
        if session.exit_code is not ExitCode.HALTED:
            raise ProofError(
                f"round estimate aborted in {program.name}: "
                f"{session.abort_reason}")
        return session

    @staticmethod
    def _session_binding(program, env_input, session) -> dict:
        """A receipt binding for a child that was executed, not proven
        — claim fields come from the metered session, so fold frames
        (and their journal-size-driven cycle counts) match the real
        pipeline's."""
        return {
            "image_id": program.image_id,
            "input_digest": env_input.digest,
            "exit_code": int(session.exit_code),
            "total_cycles": session.total_cycles,
            "segment_count": session.segment_count,
            "journal": session.journal.data,
        }


def choose_round_strategy(state: CLogState, batches, policy=None,
                          prev_receipt=None,
                          model: CostModel | None = None,
                          backend: ProverBackend =
                          ProverBackend.CPU_ZKVM) -> str:
    """Convenience wrapper over :meth:`RoundPlanner.choose`."""
    return RoundPlanner(policy).choose(state, batches, prev_receipt,
                                       model, backend)
