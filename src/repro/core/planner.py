"""Query cost planning (paper §7, "Query complexity").

"While our ZKP framework is general-purpose and in principle supports
arbitrary queries, the cost of proof generation increases with query
complexity."  A provider therefore wants to *predict* a query's proving
cost before running the prover — for admission control, pricing, or
picking a backend.

The planner mirrors the query guest's metering analytically: it walks
the same cost constants (`repro.core.guest_programs`,
`repro.zkvm.cycles`) over the current CLog statistics, yielding a cycle
estimate the cost model converts to seconds per backend.  Accuracy is
checked in the tests (within a few percent of the metered execution).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..query import parse_query
from ..query.ast import Query
from ..zkvm import cycles as cy
from ..zkvm.costmodel import CostModel, ProverBackend
from .clog import CLogState
from .guest_programs import (
    DECODE_CYCLES_PER_BYTE,
    PARSE_CYCLES_PER_BYTE,
    QUERY_NODE_CYCLES,
    QUERY_VIEW_CYCLES,
)

# Bytes of a leaf-hash preimage beyond the payload (the packed key).
_KEY_BYTES = 13
# Encoded entry-frame overhead beyond key+payload ({'key':…,'payload':…}).
_FRAME_OVERHEAD = 24


@dataclass(frozen=True)
class QueryCostEstimate:
    """Predicted proving cost for one query."""

    sql: str
    entries: int
    predicted_cycles: int
    predicted_segments: int

    def seconds(self, model: CostModel | None = None,
                backend: ProverBackend = ProverBackend.CPU_ZKVM
                ) -> float:
        model = model or CostModel()
        padded = sum(
            1 << _po2(min(cy.SEGMENT_CYCLE_LIMIT, remaining))
            for remaining in _segment_sizes(self.predicted_cycles))
        if backend is ProverBackend.SPECIALIZED_HASH:
            # Rough: compressions ≈ hash cycles / cost-per-block.
            compressions = self.predicted_cycles \
                // cy.SHA256_COMPRESS_CYCLES
            return compressions / model.specialized_hashes_per_second \
                + model.base_overhead
        seconds = padded / model.cpu_cycles_per_second \
            + self.predicted_segments * model.segment_overhead \
            + model.base_overhead
        if backend is ProverBackend.GPU_ZKVM:
            seconds /= model.gpu_speedup
        return seconds

    def minutes(self, model: CostModel | None = None) -> float:
        return self.seconds(model) / 60.0


def _segment_sizes(total: int) -> list[int]:
    sizes = []
    remaining = max(total, 1)
    while remaining > 0:
        chunk = min(remaining, cy.SEGMENT_CYCLE_LIMIT)
        sizes.append(chunk)
        remaining -= chunk
    return sizes


def _po2(count: int) -> int:
    po2 = cy.SEGMENT_MIN_PO2
    while (1 << po2) < count:
        po2 += 1
    return po2


def _tagged_hash_cycles(payload_bytes: int) -> int:
    return ((payload_bytes + 9 + 63) // 64) * cy.SHA256_COMPRESS_CYCLES


class QueryPlanner:
    """Predicts query-guest cycles from CLog statistics."""

    def __init__(self, state: CLogState,
                 agg_journal_bytes: int) -> None:
        self.entries = len(state)
        self.agg_journal_bytes = agg_journal_bytes
        payload_sizes = [len(entry.to_payload())
                         for entry in state.entries_in_slot_order()]
        self.avg_payload = (sum(payload_sizes) / len(payload_sizes)
                            if payload_sizes else 0.0)

    def estimate(self, sql: str) -> QueryCostEstimate:
        query = parse_query(sql)
        return self._estimate(sql, query)

    def _estimate(self, sql: str, query: Query) -> QueryCostEstimate:
        n = self.entries
        cycles = cy.EXECUTION_BASE_CYCLES

        # Binding verification: hash + decode the aggregation journal,
        # recompute the claim digest, record the assumption.
        cycles += _tagged_hash_cycles(self.agg_journal_bytes)
        cycles += self.agg_journal_bytes * DECODE_CYCLES_PER_BYTE
        cycles += 3 * _tagged_hash_cycles(96)  # claim + assumptions
        cycles += cy.ASSUMPTION_CYCLES
        cycles += cy.io_cycles(self.agg_journal_bytes + 200)

        # Per-entry work: frame I/O, leaf hash, payload decode, view.
        frame_bytes = _KEY_BYTES + self.avg_payload + _FRAME_OVERHEAD
        per_entry = (
            cy.io_cycles(int(frame_bytes))
            + _tagged_hash_cycles(int(_KEY_BYTES + self.avg_payload))
            + int(self.avg_payload) * DECODE_CYCLES_PER_BYTE
            + QUERY_VIEW_CYCLES
        )
        cycles += n * per_entry

        # Tree reconstruction: n-1 node hashes (64-byte inputs) padded
        # to the power-of-two tree shape; approximate with n nodes.
        cycles += max(n, 1) * _tagged_hash_cycles(64)

        # Parse + evaluate.
        cycles += len(sql) * PARSE_CYCLES_PER_BYTE
        cycles += n * query.node_count * QUERY_NODE_CYCLES

        # Journal commit (result output) — small, bounded by groups.
        result_bytes = 200 + 40 * len(query.labels)
        cycles += cy.io_cycles(result_bytes) \
            + _tagged_hash_cycles(result_bytes)

        total = int(cycles)
        return QueryCostEstimate(
            sql=sql,
            entries=n,
            predicted_cycles=total,
            predicted_segments=cy.segment_count(total),
        )


def estimate_query_cost(service, sql: str) -> QueryCostEstimate:
    """Convenience: plan a query against a prover service's state."""
    journal_bytes = service.chain.latest.receipt.journal_size \
        if len(service.chain) else 0
    return QueryPlanner(service.state, journal_bytes).estimate(sql)
