"""Audit bundles: one portable artifact for a complete audit.

Everything a regulator needs to independently re-verify a provider's
telemetry claims, in a single JSON document:

* the bulletin board (every router window commitment),
* the full aggregation receipt chain,
* any number of query receipts,
* a transparency-log checkpoint over the chain.

:func:`verify_bundle` replays the client-side checks from the bundle
alone — no store access, no provider interaction — and returns a
structured report.  Bundles are self-describing and versioned, so they
can be archived for the retention periods compliance regimes require
(long after the raw logs are gone, which is the point: §2.2 "network
logs are typically ephemeral").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..commitments import BulletinBoard, Commitment
from ..errors import ReproError, VerificationError
from ..hashing import Digest
from ..zkvm import Receipt
from .prover_service import ProverService
from .query_proof import QueryResponse
from .transparency import LogCheckpoint, ReceiptTransparencyLog
from .verifier_client import VerifierClient

BUNDLE_VERSION = 1


@dataclass
class AuditBundle:
    """The portable audit artifact."""

    commitments: list[Commitment]
    chain: list[Receipt]
    query_receipts: list[Receipt] = field(default_factory=list)
    checkpoint: LogCheckpoint | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_service(cls, service: ProverService,
                     query_responses: list[QueryResponse] | None = None,
                     metadata: dict[str, Any] | None = None
                     ) -> "AuditBundle":
        """Snapshot a prover service's public material."""
        log = ReceiptTransparencyLog()
        receipts = service.chain.receipts()
        for receipt in receipts:
            log.append(receipt)
        return cls(
            commitments=list(service.bulletin),
            chain=receipts,
            query_receipts=[response.receipt for response in
                            (query_responses or [])],
            checkpoint=log.checkpoint(),
            metadata=dict(metadata or {}),
        )

    # -- serialization -------------------------------------------------------------

    def to_json_bytes(self) -> bytes:
        document = {
            "version": BUNDLE_VERSION,
            "metadata": self.metadata,
            "commitments": [{
                "router_id": c.router_id,
                "window_index": c.window_index,
                "digest": c.digest.hex(),
                "record_count": c.record_count,
                "published_at_ms": c.published_at_ms,
            } for c in self.commitments],
            "chain": [receipt.to_json_bytes().decode()
                      for receipt in self.chain],
            "query_receipts": [receipt.to_json_bytes().decode()
                               for receipt in self.query_receipts],
            "checkpoint": ({"size": self.checkpoint.size,
                            "root": self.checkpoint.root.hex()}
                           if self.checkpoint else None),
        }
        return json.dumps(document, indent=1).encode()

    @classmethod
    def from_json_bytes(cls, data: bytes) -> "AuditBundle":
        try:
            document = json.loads(data.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise ReproError(f"malformed bundle: {exc}") from exc
        if document.get("version") != BUNDLE_VERSION:
            raise ReproError(
                f"unsupported bundle version {document.get('version')}")
        checkpoint = None
        if document.get("checkpoint"):
            checkpoint = LogCheckpoint(
                size=document["checkpoint"]["size"],
                root=Digest.from_hex(document["checkpoint"]["root"]))
        return cls(
            commitments=[Commitment(
                router_id=entry["router_id"],
                window_index=entry["window_index"],
                digest=Digest.from_hex(entry["digest"]),
                record_count=entry["record_count"],
                published_at_ms=entry["published_at_ms"],
            ) for entry in document["commitments"]],
            chain=[Receipt.from_json_bytes(blob.encode())
                   for blob in document["chain"]],
            query_receipts=[Receipt.from_json_bytes(blob.encode())
                            for blob in document["query_receipts"]],
            checkpoint=checkpoint,
            metadata=document.get("metadata", {}),
        )


@dataclass(frozen=True)
class BundleReport:
    """Outcome of a standalone bundle verification."""

    rounds: int
    final_root: Digest
    final_size: int
    windows: tuple[tuple[str, int], ...]
    queries: tuple[dict[str, Any], ...]
    checkpoint_ok: bool

    def summary(self) -> str:
        lines = [f"{self.rounds} aggregation rounds verified; final "
                 f"root {self.final_root.short()}… over "
                 f"{self.final_size} flows"]
        lines.append(f"windows consumed: {len(self.windows)}; "
                     f"transparency checkpoint "
                     f"{'OK' if self.checkpoint_ok else 'ABSENT'}")
        for query in self.queries:
            lines.append(f"query OK: {query['query']!r} -> "
                         f"{query['values']}")
        return "\n".join(lines)


def verify_bundle(bundle: AuditBundle) -> BundleReport:
    """Re-verify everything in a bundle from its own contents.

    Raises a :class:`~repro.errors.ReproError` subclass on any failure:
    bad receipt, broken chain, commitment mismatch, query bound to a
    root outside the chain, or a checkpoint that does not match the
    chain's claims.
    """
    bulletin = BulletinBoard()
    for commitment in bundle.commitments:
        bulletin.publish(commitment)
    verifier = VerifierClient(bulletin)
    verified_chain = verifier.verify_chain(bundle.chain)
    by_round = {v.round: v for v in verified_chain}

    queries: list[dict[str, Any]] = []
    for receipt in bundle.query_receipts:
        journal = receipt.journal.decode_one()
        target = by_round.get(journal.get("round"))
        if target is None:
            raise VerificationError(
                "query receipt references a round outside the chain")
        response = QueryResponse(
            sql=journal["query"],
            labels=tuple(journal["labels"]),
            values=tuple(journal["values"]),
            matched=journal["matched"],
            scanned=journal["scanned"],
            round=journal["round"],
            root=journal["root"],
            receipt=receipt,
            group_by=journal.get("group_by"),
            groups=tuple((key, tuple(values)) for key, values in
                         journal.get("groups", [])),
        )
        verified = verifier.verify_query(response, target)
        queries.append({"query": verified.sql,
                        "values": list(verified.values),
                        "groups": [[key, list(values)] for key, values
                                   in verified.groups],
                        "round": verified.round})

    checkpoint_ok = False
    if bundle.checkpoint is not None:
        log = ReceiptTransparencyLog()
        for receipt in bundle.chain:
            log.append(receipt)
        if log.checkpoint() != bundle.checkpoint:
            raise VerificationError(
                "bundle checkpoint does not match the receipt chain")
        checkpoint_ok = True

    windows: list[tuple[str, int]] = []
    for verified in verified_chain:
        windows.extend(verified.windows)
    last = verified_chain[-1]
    return BundleReport(
        rounds=len(verified_chain),
        final_root=last.new_root,
        final_size=last.size,
        windows=tuple(windows),
        queries=tuple(queries),
        checkpoint_ok=checkpoint_ok,
    )
