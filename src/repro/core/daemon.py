"""Background aggregation daemon (§4: "The aggregation phase is
decoupled from query processing and runs independently in the
background.  This allows it to be scaled according to the available
resources of the provider.").

:class:`AggregationDaemon` watches the bulletin board and decides *when*
to spend a proving round, trading prover cost against staleness:

* batch up to ``batch_limit`` committed windows into one round
  (amortizing the fixed proving overhead — see the window-size
  ablation), but
* never let a committed window wait longer than ``max_lag_ms``
  (bounding how stale query answers can be).

Driven by explicit ``step`` calls (tests, simulations with a virtual
clock) or ``run_threaded`` for wall-clock deployments.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..netflow.clock import Clock
from .aggregation import AggregationResult
from .prover_service import ProverService

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DaemonPolicy:
    """When to spend a proving round."""

    batch_limit: int = 4          # aggregate as soon as this many wait
    max_lag_ms: int = 10_000      # ... or the oldest has waited this long
    min_windows: int = 1

    def __post_init__(self) -> None:
        if self.batch_limit < 1 or self.min_windows < 1:
            raise ConfigurationError("limits must be >= 1")
        if self.max_lag_ms < 0:
            raise ConfigurationError("max_lag_ms must be >= 0")


@dataclass
class DaemonStats:
    rounds: int = 0
    windows_consumed: int = 0
    records_aggregated: int = 0
    results: list[AggregationResult] = field(default_factory=list)


class AggregationDaemon:
    """Polls the bulletin, batches windows, runs proving rounds."""

    def __init__(self, service: ProverService, clock: Clock,
                 policy: DaemonPolicy | None = None) -> None:
        self.service = service
        self.clock = clock
        self.policy = policy or DaemonPolicy()
        self.stats = DaemonStats()
        self._first_seen_ms: dict[int, int] = {}

    # -- observation -----------------------------------------------------------

    def pending_windows(self) -> list[int]:
        """Committed windows not yet aggregated, oldest first."""
        consumed = self.service.aggregated_windows
        now = self.clock.now_ms()
        pending = [w for w in self.service.bulletin.windows()
                   if w not in consumed]
        for window in pending:
            self._first_seen_ms.setdefault(window, now)
        return pending

    def oldest_lag_ms(self) -> int:
        pending = self.pending_windows()
        if not pending:
            return 0
        now = self.clock.now_ms()
        return max(now - self._first_seen_ms[w] for w in pending)

    def should_run(self) -> bool:
        pending = self.pending_windows()
        if len(pending) < self.policy.min_windows:
            return False
        if len(pending) >= self.policy.batch_limit:
            return True
        return self.oldest_lag_ms() >= self.policy.max_lag_ms

    # -- driving -------------------------------------------------------------------

    def step(self) -> AggregationResult | None:
        """One scheduling decision: aggregate a batch, or do nothing."""
        if not self.should_run():
            return None
        batch = self.pending_windows()[:self.policy.batch_limit]
        logger.debug("daemon aggregating windows %s (lag %d ms)",
                     batch, self.oldest_lag_ms())
        result = self.service.aggregate_windows(batch)
        for window in batch:
            self._first_seen_ms.pop(window, None)
        self.stats.rounds += 1
        self.stats.windows_consumed += len(batch)
        self.stats.records_aggregated += result.record_count
        self.stats.results.append(result)
        return result

    def drain(self) -> int:
        """Aggregate everything pending regardless of policy timing;
        returns the number of rounds run."""
        rounds = 0
        while True:
            pending = self.pending_windows()
            if not pending:
                return rounds
            batch = pending[:self.policy.batch_limit]
            result = self.service.aggregate_windows(batch)
            for window in batch:
                self._first_seen_ms.pop(window, None)
            self.stats.rounds += 1
            self.stats.windows_consumed += len(batch)
            self.stats.records_aggregated += result.record_count
            self.stats.results.append(result)
            rounds += 1

    def run_threaded(self, stop: threading.Event,
                     poll_ms: int = 200) -> threading.Thread:
        """Run the daemon loop off-thread until ``stop`` is set."""
        def loop() -> None:
            while not stop.is_set():
                self.step()
                self.clock.sleep_ms(poll_ms)

        thread = threading.Thread(target=loop,
                                  name="aggregation-daemon",
                                  daemon=True)
        thread.start()
        return thread
