"""Background aggregation daemon (§4: "The aggregation phase is
decoupled from query processing and runs independently in the
background.  This allows it to be scaled according to the available
resources of the provider.").

:class:`AggregationDaemon` watches the bulletin board and decides *when*
to spend a proving round, trading prover cost against staleness:

* batch up to ``batch_limit`` committed windows into one round
  (amortizing the fixed proving overhead — see the window-size
  ablation), but
* never let a committed window wait longer than ``max_lag_ms``
  (bounding how stale query answers can be).

The daemon is **supervised**: a long-running delegated prover has to
outlive flaky stores, late routers, and proving failures.  Failed
windows retry with exponential backoff + jitter, windows that keep
failing are quarantined (dead-lettered) after ``max_attempts`` so the
rest of the pipeline keeps moving, a router whose commitment is late
past ``commitment_deadline_ms`` is skipped rather than allowed to stall
the window, and :meth:`health` reports a three-state machine
(``healthy`` / ``degraded`` / ``stalled``) that the net ``status``
endpoint and :mod:`repro.obs` gauges surface.

Driven by explicit ``step`` calls (tests, simulations with a virtual
clock) or ``run_threaded`` for wall-clock deployments; the thread
survives every exception — crashes are logged, counted, and retried,
never silently fatal.
"""

from __future__ import annotations

import logging
import random
import threading
from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError, MissingCommitment, ReproError
from ..netflow.clock import Clock
from ..obs import names as obs_names
from ..obs import runtime as obs
from .aggregation import AggregationResult
from .prover_service import ProverService

logger = logging.getLogger(__name__)

#: ``health()["state"]`` values, in order of the gauge encoding.
HEALTH_STATES = ("healthy", "degraded", "stalled")


@dataclass(frozen=True)
class DaemonPolicy:
    """When to spend a proving round, and how to survive failures."""

    batch_limit: int = 4          # aggregate as soon as this many wait
    max_lag_ms: int = 10_000      # ... or the oldest has waited this long
    min_windows: int = 1
    # Supervision: retry, quarantine, degrade.
    max_attempts: int = 5          # quarantine a window after N failures
    retry_base_ms: int = 200       # first backoff delay
    retry_multiplier: float = 2.0  # exponential growth per attempt
    retry_max_ms: int = 10_000     # backoff ceiling
    retry_jitter: float = 0.2      # ±fraction of the delay (seeded rng)
    commitment_deadline_ms: int = 30_000  # late router → skip, not stall
    stall_after: int = 10          # consecutive failed steps → stalled
    results_kept: int = 64         # bound on stats.results

    def __post_init__(self) -> None:
        if self.batch_limit < 1 or self.min_windows < 1:
            raise ConfigurationError("limits must be >= 1")
        if self.max_lag_ms < 0:
            raise ConfigurationError("max_lag_ms must be >= 0")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.retry_base_ms < 0 or self.retry_max_ms < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.retry_multiplier < 1.0:
            raise ConfigurationError("retry_multiplier must be >= 1")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ConfigurationError("retry_jitter must be in [0, 1]")
        if self.commitment_deadline_ms < 0:
            raise ConfigurationError(
                "commitment_deadline_ms must be >= 0")
        if self.stall_after < 1:
            raise ConfigurationError("stall_after must be >= 1")
        if self.results_kept < 1:
            raise ConfigurationError("results_kept must be >= 1")


@dataclass
class DaemonStats:
    rounds: int = 0
    windows_consumed: int = 0
    records_aggregated: int = 0
    faults: int = 0       # handled domain failures (gather/prove)
    retries: int = 0      # backoff reschedules issued
    crashes: int = 0      # unexpected exceptions survived by the loop
    results: deque[AggregationResult] = field(
        default_factory=lambda: deque(maxlen=64))

    def to_wire(self) -> dict:
        return {
            "rounds": self.rounds,
            "windows_consumed": self.windows_consumed,
            "records_aggregated": self.records_aggregated,
            "faults": self.faults,
            "retries": self.retries,
            "crashes": self.crashes,
            "results_kept": len(self.results),
        }


class AggregationDaemon:
    """Polls the bulletin, batches windows, runs supervised rounds."""

    def __init__(self, service: ProverService, clock: Clock,
                 policy: DaemonPolicy | None = None,
                 seed: int = 0) -> None:
        self.service = service
        self.clock = clock
        self.policy = policy or DaemonPolicy()
        self.stats = DaemonStats(
            results=deque(maxlen=self.policy.results_kept))
        self._rng = random.Random(seed)
        self._first_seen_ms: dict[int, int] = {}
        self._attempts: dict[int, int] = {}
        self._retry_at_ms: dict[int, int] = {}
        self._quarantined: dict[int, str] = {}
        self._isolate: set[int] = set()
        self._consecutive_failures = 0

    # -- observation -----------------------------------------------------------

    def pending_windows(self) -> list[int]:
        """Committed, non-quarantined windows not yet aggregated,
        oldest first."""
        consumed = self.service.aggregated_windows
        now = self.clock.now_ms()
        pending = [w for w in self.service.bulletin.windows()
                   if w not in consumed and w not in self._quarantined]
        for window in pending:
            self._first_seen_ms.setdefault(window, now)
        return pending

    def due_windows(self) -> list[int]:
        """Pending windows whose backoff delay (if any) has elapsed."""
        now = self.clock.now_ms()
        return [w for w in self.pending_windows()
                if self._retry_at_ms.get(w, 0) <= now]

    def oldest_lag_ms(self) -> int:
        pending = self.pending_windows()
        if not pending:
            return 0
        now = self.clock.now_ms()
        return max(now - self._first_seen_ms[w] for w in pending)

    def should_run(self) -> bool:
        due = self.due_windows()
        if len(due) < self.policy.min_windows:
            return False
        if len(due) >= self.policy.batch_limit:
            return True
        now = self.clock.now_ms()
        return any(now - self._first_seen_ms[w] >= self.policy.max_lag_ms
                   for w in due)

    @property
    def quarantined(self) -> dict[int, str]:
        """window_index → reason for every dead-lettered window."""
        return dict(self._quarantined)

    def health(self) -> dict:
        """The daemon's three-state health view.

        * ``stalled`` — ``stall_after`` consecutive steps attempted
          work and none produced a round; the pipeline is not moving.
        * ``degraded`` — making progress overall, but some windows are
          quarantined or waiting out a retry backoff.
        * ``healthy`` — nothing is failing.
        """
        if self._consecutive_failures >= self.policy.stall_after:
            state = "stalled"
        elif self._quarantined or self._attempts \
                or self._consecutive_failures > 0:
            state = "degraded"
        else:
            state = "healthy"
        engine = getattr(self.service, "engine", None)
        return {
            "state": state,
            "consecutive_failures": self._consecutive_failures,
            "quarantined": dict(self._quarantined),
            "retrying": sorted(self._attempts),
            "pending": len(self.pending_windows()),
            "oldest_lag_ms": self.oldest_lag_ms(),
            "stats": self.stats.to_wire(),
            "engine": engine.snapshot() if engine is not None else None,
        }

    # -- driving -------------------------------------------------------------------

    def step(self) -> AggregationResult | None:
        """One supervised scheduling decision.

        Handled faults (:class:`~repro.errors.ReproError` from gather or
        prove) never escape: they feed the retry/quarantine machinery
        and the step returns ``None``.  Anything else is a genuine bug
        and propagates — :meth:`run_threaded` catches, counts, and
        survives those too.
        """
        if not self.should_run():
            self._set_gauges()
            return None
        batch = self._choose_batch()
        inputs, gathered = self._gather_batch(batch)
        if not gathered:
            self._finish_step(success=False)
            return None
        try:
            result = self.service.prove_round(gathered, inputs)
        except ReproError as exc:
            self._on_prove_failure(gathered, exc)
            self._finish_step(success=False)
            return None
        for window in gathered:
            self._forget(window)
        self.stats.rounds += 1
        self.stats.windows_consumed += len(gathered)
        self.stats.records_aggregated += result.record_count
        self.stats.results.append(result)
        obs.registry().counter(obs_names.DAEMON_STEPS,
                               ("outcome",)).inc(outcome="round")
        self._finish_step(success=True)
        return result

    def drain(self) -> int:
        """Aggregate everything pending regardless of policy timing;
        returns the number of rounds run.  Quarantined windows stay
        quarantined; faults propagate (drain is the *strict* driver —
        use :meth:`step` for supervised operation)."""
        rounds = 0
        while True:
            pending = self.pending_windows()
            if not pending:
                return rounds
            batch = pending[:self.policy.batch_limit]
            result = self.service.aggregate_windows(batch)
            for window in batch:
                self._forget(window)
            self.stats.rounds += 1
            self.stats.windows_consumed += len(batch)
            self.stats.records_aggregated += result.record_count
            self.stats.results.append(result)
            rounds += 1

    def requeue(self, window_index: int) -> bool:
        """Operator hook: pull a window out of quarantine for another
        round of attempts (e.g. after the underlying outage is fixed).
        Returns True if the window was quarantined."""
        was = self._quarantined.pop(window_index, None) is not None
        if was:
            self._attempts.pop(window_index, None)
            self._retry_at_ms.pop(window_index, None)
            self._set_gauges()
        return was

    def run_threaded(self, stop: threading.Event,
                     poll_ms: int = 200) -> threading.Thread:
        """Run the supervised loop off-thread until ``stop`` is set.

        The loop survives *every* exception: handled faults are already
        absorbed by :meth:`step`; anything unexpected is logged with a
        traceback, counted (``stats.crashes`` and the
        ``repro_daemon_steps_total{outcome="crash"}`` series), and the
        loop continues after the normal poll delay.
        """
        def loop() -> None:
            while not stop.is_set():
                try:
                    self.step()
                except Exception as exc:  # noqa: BLE001 — supervisor
                    self.stats.crashes += 1
                    obs.registry().counter(
                        obs_names.DAEMON_STEPS,
                        ("outcome",)).inc(outcome="crash")
                    logger.exception(
                        "daemon step crashed (%s); continuing", exc)
                self.clock.sleep_ms(poll_ms)

        thread = threading.Thread(target=loop,
                                  name="aggregation-daemon",
                                  daemon=True)
        thread.start()
        return thread

    # -- supervision internals ---------------------------------------------------

    def _choose_batch(self) -> list[int]:
        """Next batch, oldest first.  Windows flagged for isolation
        (after a batched prove failed) go one at a time, so one poisoned
        window cannot keep sinking its batch-mates."""
        due = self.due_windows()
        isolated = [w for w in due if w in self._isolate]
        if isolated:
            return isolated[:1]
        return due[:self.policy.batch_limit]

    def _gather_batch(self, batch: list[int]
                      ) -> tuple[list, list[int]]:
        """Gather each window separately so one window's fault cannot
        take down the whole batch."""
        inputs: list = []
        gathered: list[int] = []
        now = self.clock.now_ms()
        for window in sorted(batch):
            lag = now - self._first_seen_ms.get(window, now)
            past_deadline = lag >= self.policy.commitment_deadline_ms
            try:
                inputs.extend(self.service.gather_window(
                    window, skip_uncommitted=past_deadline))
                gathered.append(window)
            except MissingCommitment as exc:
                if past_deadline:
                    # Even the degraded gather found nothing usable:
                    # that is a real fault, count it toward quarantine.
                    self._record_fault(window, exc)
                else:
                    # A router is late but within its deadline — wait,
                    # at no attempt cost.
                    logger.debug(
                        "window %d waiting on late commitment "
                        "(lag %d ms < deadline %d ms)", window, lag,
                        self.policy.commitment_deadline_ms)
            except ReproError as exc:
                self._record_fault(window, exc)
        return inputs, gathered

    def _on_prove_failure(self, gathered: list[int],
                          exc: ReproError) -> None:
        if len(gathered) == 1:
            self._record_fault(gathered[0], exc)
            return
        # A batched round failed: any one window could be the poison.
        # Re-prove them individually (binary attribution would prove
        # log n rounds; individually is simpler and each round still
        # makes progress).
        logger.warning(
            "round over windows %s failed (%s); isolating for "
            "individual proving", gathered, exc)
        self.stats.faults += 1
        obs.registry().counter(
            obs_names.DAEMON_FAULTS, ("error",)).inc(
            error=type(exc).__name__)
        self._isolate.update(gathered)

    def _record_fault(self, window: int, exc: ReproError) -> None:
        """One window failed: back off, or quarantine at the limit."""
        self.stats.faults += 1
        obs.registry().counter(
            obs_names.DAEMON_FAULTS, ("error",)).inc(
            error=type(exc).__name__)
        attempts = self._attempts.get(window, 0) + 1
        self._attempts[window] = attempts
        if attempts >= self.policy.max_attempts:
            reason = f"{type(exc).__name__}: {exc}"
            logger.error(
                "window %d quarantined after %d attempts: %s",
                window, attempts, reason)
            self._quarantined[window] = reason
            self._forget(window, keep_quarantine=True)
            return
        delay = min(
            self.policy.retry_base_ms
            * self.policy.retry_multiplier ** (attempts - 1),
            self.policy.retry_max_ms)
        delay *= 1.0 + self.policy.retry_jitter \
            * self._rng.uniform(-1.0, 1.0)
        self._retry_at_ms[window] = self.clock.now_ms() + int(delay)
        self.stats.retries += 1
        obs.registry().counter(obs_names.DAEMON_RETRIES, ()).inc()
        logger.warning(
            "window %d failed (attempt %d/%d): %s — retrying in "
            "%d ms", window, attempts, self.policy.max_attempts, exc,
            int(delay))

    def _forget(self, window: int,
                keep_quarantine: bool = False) -> None:
        self._first_seen_ms.pop(window, None)
        self._attempts.pop(window, None)
        self._retry_at_ms.pop(window, None)
        self._isolate.discard(window)
        if not keep_quarantine:
            self._quarantined.pop(window, None)

    def _finish_step(self, success: bool) -> None:
        if success:
            self._consecutive_failures = 0
        else:
            self._consecutive_failures += 1
            obs.registry().counter(obs_names.DAEMON_STEPS,
                                   ("outcome",)).inc(outcome="faulted")
        self._set_gauges()

    def _set_gauges(self) -> None:
        registry = obs.registry()
        registry.gauge(obs_names.DAEMON_QUARANTINED).set(
            len(self._quarantined))
        if self._consecutive_failures >= self.policy.stall_after:
            code = 2
        elif self._quarantined or self._attempts \
                or self._consecutive_failures > 0:
            code = 1
        else:
            code = 0
        registry.gauge(obs_names.DAEMON_HEALTH).set(code)
