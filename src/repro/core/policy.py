"""Aggregation policies: how per-router observations combine per flow.

§4: "The service provider collects RLogs ... and aggregates them into a
unified dataset (CLogs) based on a predefined aggregation policy.  For
instance, packet loss counts from each router for the same flows can be
summed to produce a total loss count per flow."

A policy assigns a combinator to each counter field.  The default policy
sums loss (per the paper's example), takes the maximum for offered
packets/octets (the ingress router sees the full flow; summing across
vantage points would multiply-count), and the maximum hop count (the
egress observation carries the full path length).  Timestamps take
min/max; RTT and jitter accumulate as (sum, count) pairs for averaging.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError
from ..hashing import Digest, hash_many


class AggOp(enum.Enum):
    """Field combinators available to a policy."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"
    LAST = "last"

    def combine(self, old: int, new: int) -> int:
        if self is AggOp.SUM:
            return old + new
        if self is AggOp.MIN:
            return min(old, new)
        if self is AggOp.MAX:
            return max(old, new)
        return new  # LAST


# The counter fields a policy governs (record field -> CLog field).
POLICY_FIELDS = ("packets", "octets", "lost_packets", "hop_count")


@dataclass(frozen=True)
class AggregationPolicy:
    """Per-field combinators for CLog aggregation."""

    packets: AggOp = AggOp.MAX
    octets: AggOp = AggOp.MAX
    lost_packets: AggOp = AggOp.SUM
    hop_count: AggOp = AggOp.MAX

    def op_for(self, field: str) -> AggOp:
        if field not in POLICY_FIELDS:
            raise ConfigurationError(f"{field!r} is not a policy field")
        return getattr(self, field)

    def to_wire(self) -> dict[str, Any]:
        return {field: self.op_for(field).value
                for field in POLICY_FIELDS}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "AggregationPolicy":
        try:
            return cls(**{field: AggOp(wire[field])
                          for field in POLICY_FIELDS})
        except (KeyError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid policy wire {wire!r}") from exc

    def digest(self) -> Digest:
        """Commitment to the policy (bound into aggregation journals)."""
        return hash_many(
            "repro/core/policy",
            [f"{field}={self.op_for(field).value}".encode("utf-8")
             for field in POLICY_FIELDS],
        )


DEFAULT_POLICY = AggregationPolicy()

# §4's literal example: sum everything, including loss counts.
SUM_ALL_POLICY = AggregationPolicy(
    packets=AggOp.SUM, octets=AggOp.SUM,
    lost_packets=AggOp.SUM, hop_count=AggOp.SUM,
)
