"""The aggregation proof chain (§4.1 step 1).

Every round's receipt is chained to the previous one through in-guest
claim verification, so the provider's history forms a verifiable linked
list: genesis (empty CLog) → round 0 → round 1 → ...  The chain object
is the provider-side ledger of those links; clients re-verify it with
:meth:`repro.core.verifier_client.VerifierClient.verify_chain`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import ChainError
from ..hashing import Digest
from ..zkvm import Receipt


@dataclass(frozen=True)
class ChainLink:
    """One aggregation round's public artifacts."""

    round: int
    receipt: Receipt
    new_root: Digest
    size: int
    record_count: int

    @property
    def journal_header(self) -> dict[str, Any]:
        header = next(self.receipt.journal.values(), None)
        if not isinstance(header, dict):
            raise ChainError(
                f"round {self.round} journal missing header")
        return header

    def to_wire(self) -> dict[str, Any]:
        return {
            "round": self.round,
            "receipt": self.receipt.to_wire(),
            "new_root": self.new_root,
            "size": self.size,
            "record_count": self.record_count,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "ChainLink":
        return cls(
            round=wire["round"],
            receipt=Receipt.from_wire(wire["receipt"]),
            new_root=wire["new_root"],
            size=wire["size"],
            record_count=wire["record_count"],
        )


class AggregationChain:
    """Append-only ledger of aggregation rounds."""

    def __init__(self) -> None:
        self._links: list[ChainLink] = []

    def append(self, link: ChainLink) -> None:
        expected = len(self._links)
        if link.round != expected:
            raise ChainError(
                f"cannot append round {link.round}; expected {expected}")
        if self._links:
            prev_root = link.journal_header.get("prev_root")
            if prev_root != self._links[-1].new_root:
                raise ChainError(
                    f"round {link.round} does not extend round "
                    f"{expected - 1}: prev_root mismatch")
        self._links.append(link)

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[ChainLink]:
        return iter(self._links)

    def __getitem__(self, index: int) -> ChainLink:
        return self._links[index]

    @property
    def latest(self) -> ChainLink:
        if not self._links:
            raise ChainError("chain is empty; aggregate first")
        return self._links[-1]

    @property
    def latest_receipt(self) -> Receipt:
        return self.latest.receipt

    def receipts(self) -> list[Receipt]:
        return [link.receipt for link in self._links]
