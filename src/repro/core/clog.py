"""CLog entries and the authenticated CLog state (paper §4, Figure 2).

A :class:`CLogEntry` is the per-flow aggregate row; :class:`CLogState` is
the provider-side authoritative dataset — entries plus the Merkle map
committing to them.  Entry merge logic is pure-dict-friendly so the zkVM
guest executes the exact same code the host uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ConfigurationError, StorageError
from ..hashing import Digest
from ..merkle import MerkleMap
from ..merkle.hasher import MerkleHasher
from ..netflow.records import FlowKey, NetFlowRecord
from ..serialization import decode, encode
from .policy import AggregationPolicy, POLICY_FIELDS


@dataclass(frozen=True)
class CLogEntry:
    """One per-flow row of the aggregated dataset."""

    key: FlowKey
    packets: int
    octets: int
    lost_packets: int
    hop_count: int
    first_ms: int
    last_ms: int
    rtt_sum_us: int
    jitter_sum_us: int
    record_count: int
    routers: tuple[str, ...]  # sorted distinct vantage points

    # -- construction ------------------------------------------------------------

    @classmethod
    def fresh(cls, record: NetFlowRecord) -> "CLogEntry":
        """The entry created when a flow is first seen (Alg. 1 line 21)."""
        return cls(
            key=record.key,
            packets=record.packets,
            octets=record.octets,
            lost_packets=record.lost_packets,
            hop_count=record.hop_count,
            first_ms=record.first_switched_ms,
            last_ms=record.last_switched_ms,
            rtt_sum_us=record.rtt_us,
            jitter_sum_us=record.jitter_us,
            record_count=1,
            routers=(record.router_id,),
        )

    def merge(self, record: NetFlowRecord,
              policy: AggregationPolicy) -> "CLogEntry":
        """Aggregate one more observation (Alg. 1 line 19)."""
        if record.key != self.key:
            raise ConfigurationError(
                f"cannot merge record for {record.key} into entry for "
                f"{self.key}")
        policy_values = {
            field: policy.op_for(field).combine(
                getattr(self, field), getattr(record, _RECORD_FIELD[field]))
            for field in POLICY_FIELDS
        }
        routers = self.routers if record.router_id in self.routers \
            else tuple(sorted((*self.routers, record.router_id)))
        return CLogEntry(
            key=self.key,
            first_ms=min(self.first_ms, record.first_switched_ms),
            last_ms=max(self.last_ms, record.last_switched_ms),
            rtt_sum_us=self.rtt_sum_us + record.rtt_us,
            jitter_sum_us=self.jitter_sum_us + record.jitter_us,
            record_count=self.record_count + 1,
            routers=routers,
            **policy_values,
        )

    def combine(self, other: "CLogEntry",
                policy: AggregationPolicy) -> "CLogEntry":
        """Merge two *partial* aggregates for the same flow.

        Used by the parallel-aggregation merge guest (§7).  Requires an
        associative policy — ``LAST`` depends on observation order and
        cannot be combined across partitions.
        """
        if other.key != self.key:
            raise ConfigurationError(
                f"cannot combine entries for {self.key} and {other.key}")
        from .policy import AggOp
        policy_values = {}
        for field in POLICY_FIELDS:
            op = policy.op_for(field)
            if op is AggOp.LAST:
                raise ConfigurationError(
                    f"policy op LAST on {field!r} is not associative; "
                    "parallel aggregation is unavailable")
            policy_values[field] = op.combine(getattr(self, field),
                                              getattr(other, field))
        return CLogEntry(
            key=self.key,
            first_ms=min(self.first_ms, other.first_ms),
            last_ms=max(self.last_ms, other.last_ms),
            rtt_sum_us=self.rtt_sum_us + other.rtt_sum_us,
            jitter_sum_us=self.jitter_sum_us + other.jitter_sum_us,
            record_count=self.record_count + other.record_count,
            routers=tuple(sorted(set(self.routers) | set(other.routers))),
            **policy_values,
        )

    # -- canonical payload ---------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "key": self.key.pack(),
            "packets": self.packets,
            "octets": self.octets,
            "lost_packets": self.lost_packets,
            "hop_count": self.hop_count,
            "first_ms": self.first_ms,
            "last_ms": self.last_ms,
            "rtt_sum_us": self.rtt_sum_us,
            "jitter_sum_us": self.jitter_sum_us,
            "record_count": self.record_count,
            "routers": list(self.routers),
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "CLogEntry":
        from ..errors import SerializationError
        try:
            kwargs = dict(wire)
            kwargs["key"] = FlowKey.unpack(kwargs["key"])
            kwargs["routers"] = tuple(kwargs["routers"])
            return cls(**kwargs)
        except (TypeError, KeyError, ConfigurationError) as exc:
            raise SerializationError(
                f"malformed CLogEntry wire: {exc}") from exc

    def to_payload(self) -> bytes:
        """Canonical leaf payload bytes."""
        return encode(self.to_wire())

    @classmethod
    def from_payload(cls, payload: bytes) -> "CLogEntry":
        wire = decode(payload)
        if not isinstance(wire, dict):
            raise StorageError("CLog payload does not decode to a dict")
        return cls.from_wire(wire)

    # -- query schema -----------------------------------------------------------------

    def query_view(self) -> dict[str, Any]:
        """The row the query evaluator sees (schema in
        :mod:`repro.query.fields`)."""
        return entry_view_from_wire(self.to_wire())


# CLog field -> NetFlowRecord attribute for policy-governed counters.
_RECORD_FIELD = {
    "packets": "packets",
    "octets": "octets",
    "lost_packets": "lost_packets",
    "hop_count": "hop_count",
}


def entry_view_from_wire(wire: dict[str, Any]) -> dict[str, Any]:
    """Query view straight from a wire dict.

    This is what the zkVM guest uses — it avoids constructing dataclass
    instances in-guest and keeps the view derivation in exactly one
    place for host and guest.
    """
    key = FlowKey.unpack(wire["key"]) if isinstance(wire["key"], bytes) \
        else wire["key"]
    count = wire["record_count"]
    duration_ms = wire["last_ms"] - wire["first_ms"]
    octets = key.src_addr.split(".")
    return {
        "src_ip": key.src_addr,
        "dst_ip": key.dst_addr,
        "src_net16": f"{octets[0]}.{octets[1]}.0.0/16",
        "src_port": key.src_port,
        "dst_port": key.dst_port,
        "protocol": key.protocol,
        "packets": wire["packets"],
        "octets": wire["octets"],
        "lost_packets": wire["lost_packets"],
        "hop_count": wire["hop_count"],
        "record_count": count,
        "router_count": len(wire["routers"]),
        "first_ms": wire["first_ms"],
        "last_ms": wire["last_ms"],
        "rtt_avg_us": wire["rtt_sum_us"] / count if count else 0.0,
        "jitter_avg_us": wire["jitter_sum_us"] / count if count else 0.0,
        "loss_rate": (wire["lost_packets"]
                      / (wire["packets"] + wire["lost_packets"])
                      if wire["packets"] + wire["lost_packets"] else 0.0),
        "throughput_bps": (wire["octets"] * 8 / (duration_ms / 1000.0)
                           if duration_ms > 0 else 0.0),
    }


class CLogState:
    """The provider's authoritative CLog dataset + Merkle commitment."""

    def __init__(self, hasher: MerkleHasher | None = None) -> None:
        self._entries: dict[FlowKey, CLogEntry] = {}
        self._map = MerkleMap(hasher=hasher)
        self.round = 0

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._entries

    @property
    def root(self) -> Digest:
        return self._map.root

    @property
    def depth(self) -> int:
        return self._map.depth

    @property
    def merkle_map(self) -> MerkleMap:
        return self._map

    def get(self, key: FlowKey) -> CLogEntry | None:
        return self._entries.get(key)

    def entries_in_slot_order(self) -> list[CLogEntry]:
        ordered = sorted(self._entries,
                         key=lambda k: self._map.index_of(k))
        return [self._entries[k] for k in ordered]

    def entry_views(self) -> list[dict[str, Any]]:
        return [e.query_view() for e in self.entries_in_slot_order()]

    # -- mutation -------------------------------------------------------------------

    def set_entry(self, entry: CLogEntry) -> int:
        """Insert or update one entry; returns its leaf slot."""
        self._entries[entry.key] = entry
        return self._map.set(entry.key, entry.to_payload())

    def clone(self) -> "CLogState":
        """Deep copy for witness building (host-side, cheap)."""
        other = CLogState()
        for entry in self.entries_in_slot_order():
            other.set_entry(entry)
        other.round = self.round
        return other
