"""Full-rebuild aggregation strategy (design-choice ablation).

The default :class:`~repro.core.aggregation.Aggregator` proves each
record as a verified Merkle *path update* — ≈ 2·depth hashes per record,
the access pattern the paper profiles (§7's ≈35k hashes at 3,000
records).  The alternative this module implements receives the **whole**
previous CLog in-guest, recomputes the previous root from scratch (one
hash per entry plus tree construction), applies the batch, and rebuilds
the new tree.

Cost comparison per round (hashes, ignoring constants):

* update-path:  ``records × 2·depth``
* full-rebuild: ``2 × (3·size + records)``  (leaf + construction, twice)

so rebuild wins when the batch is large relative to the dataset
(``records ≳ 3·size / depth``) and loses badly for small batches over a
large CLog.  ``benchmarks/bench_ablation_strategy.py`` sweeps the ratio
and locates the crossover.
"""

from __future__ import annotations

import time
from typing import Any

from ..errors import ChainError, ProofError
from ..merkle import MerkleTree
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..merkle.tree import EMPTY_ROOTS
from ..netflow.records import NetFlowRecord
from ..serialization import decode, decode_stream
from ..zkvm import ExecutorEnvBuilder, Prover, ProverOpts, Receipt
from ..zkvm.guest import GuestEnv, guest_program
from ..zkvm.recursion import resolve
from .aggregation import (
    AggregationResult,
    RouterWindowInput,
    make_receipt_binding,
)
from .clog import CLogEntry, CLogState
from .guest_programs import (
    DECODE_CYCLES_PER_BYTE,
    MERGE_CYCLES,
    RECORD_TAG_BYTES,
    _guest_claim_digest,
    register_guest,
)
from .policy import DEFAULT_POLICY, AggregationPolicy


@guest_program("telemetry-aggregation-rebuild-v1")
def rebuild_aggregation_guest(env: GuestEnv) -> None:
    """Algorithm 1 with Step 3 done by full tree reconstruction.

    Input frames: header; (round > 0) previous-receipt binding; every
    previous CLog entry in slot order; one frame per router window.
    The journal layout is identical to the update-path guest, so rounds
    of either strategy chain interchangeably.
    """
    from ..hashing import TAG_COMMITMENT, TAG_RLOG

    header = env.read()
    round_index = header["round"]
    policy = AggregationPolicy.from_wire(header["policy"])
    prev_root = header["prev_root"]
    prev_size: int = header["prev_size"]
    hasher = env.merkle_hasher()

    # -- Step 1: Verify Previous Aggregation ---------------------------------
    if round_index > 0:
        binding = env.read()
        env.tick(len(binding["journal"]) * DECODE_CYCLES_PER_BYTE,
                 "verify")
        claim_digest = _guest_claim_digest(env, binding)
        prev_header = next(decode_stream(binding["journal"]), None)
        if not isinstance(prev_header, dict):
            env.abort("previous journal has no header")
        if prev_header.get("new_root") != prev_root \
                or prev_header.get("size") != prev_size \
                or prev_header.get("round") != round_index - 1:
            env.abort("previous journal does not match claimed prev "
                      "state")
        env.verify(binding["image_id"], claim_digest)
    else:
        if prev_size != 0 or prev_root != EMPTY_ROOTS[0]:
            env.abort("genesis round must start from an empty CLog")

    # -- Reconstruct and check the previous CLog -------------------------------
    slot_keys: list[bytes] = []
    entries: dict[bytes, dict[str, Any]] = {}
    prev_leaves = []
    payload_bytes = 0
    for frame in env.read_batch(prev_size):
        key_bytes: bytes = frame["key"]
        payload: bytes = frame["payload"]
        prev_leaves.append(hasher.leaf(key_bytes + payload))
        payload_bytes += len(payload)
        wire = decode(payload)
        if wire["key"] != key_bytes:
            env.abort("entry payload key does not match frame key")
        slot_keys.append(key_bytes)
        entries[key_bytes] = wire
    env.tick(payload_bytes * DECODE_CYCLES_PER_BYTE, "decode")
    if MerkleTree(prev_leaves, hasher=hasher).root != prev_root:
        env.abort("previous entries do not reproduce the committed "
                  "root")

    # -- Step 2 + 3: verify windows, aggregate into the dict --------------------
    windows: list[dict[str, Any]] = []
    record_tags: list[tuple[bytes, bytes]] = []  # (key, tag)
    for _ in range(header["num_routers"]):
        router_input = env.read()
        recomputed = env.hash_many(TAG_COMMITMENT,
                                   router_input["blobs"],
                                   category="commitment")
        if recomputed != router_input["commitment"]:
            env.abort(
                f"integrity check failed for router "
                f"{router_input['router_id']!r} window "
                f"{router_input['window_index']}: commitment mismatch")
        windows.append({
            "r": router_input["router_id"],
            "w": router_input["window_index"],
            "c": recomputed,
        })
        for blob in router_input["blobs"]:
            env.tick(len(blob) * DECODE_CYCLES_PER_BYTE
                     + MERGE_CYCLES, "aggregate")
            record = NetFlowRecord.from_wire(decode(blob))
            key_bytes = record.key.pack()
            existing_wire = entries.get(key_bytes)
            if existing_wire is None:
                entry = CLogEntry.fresh(record)
                slot_keys.append(key_bytes)
            else:
                entry = CLogEntry.from_wire(existing_wire) \
                    .merge(record, policy)
            entries[key_bytes] = entry.to_wire()
            tag = env.tagged_hash(
                TAG_RLOG, blob,
                category="commitment").raw[:RECORD_TAG_BYTES]
            record_tags.append((key_bytes, tag))

    # -- Rebuild the new tree ----------------------------------------------------
    slot_of = {key: slot for slot, key in enumerate(slot_keys)}
    new_leaves = []
    payloads: dict[bytes, bytes] = {}
    for key_bytes in slot_keys:
        payload = _encode_wire(env, entries[key_bytes])
        payloads[key_bytes] = payload
        new_leaves.append(hasher.leaf(key_bytes + payload))
    new_tree = MerkleTree(new_leaves, hasher=hasher)

    env.commit({
        "round": round_index,
        "prev_root": prev_root,
        "new_root": new_tree.root,
        "size": len(slot_keys),
        "depth": new_tree.depth,
        "windows": windows,
        "policy": policy.digest(),
        "entries": len(record_tags),
    })
    env.commit_many([
        {"s": slot_of[key_bytes], "l": new_leaves[slot_of[key_bytes]],
         "t": tag}
        for key_bytes, tag in record_tags
    ])


def _encode_wire(env: GuestEnv, wire: dict[str, Any]) -> bytes:
    from ..serialization import encode
    payload = encode(wire)
    env.tick(len(payload) * DECODE_CYCLES_PER_BYTE, "decode")
    return payload


register_guest(rebuild_aggregation_guest)


class RebuildAggregator:
    """Drop-in alternative to :class:`~repro.core.aggregation.Aggregator`
    proving rounds by full reconstruction."""

    def __init__(self, policy: AggregationPolicy = DEFAULT_POLICY,
                 prover_opts: ProverOpts | None = None,
                 prover: Any | None = None) -> None:
        self.policy = policy
        self._prover = prover if prover is not None \
            else Prover(prover_opts or ProverOpts.groth16())

    def aggregate(self, state: CLogState,
                  windows: list[RouterWindowInput],
                  prev_receipt: Receipt | None) -> AggregationResult:
        if state.round > 0 and prev_receipt is None:
            raise ChainError(
                f"round {state.round} requires the round "
                f"{state.round - 1} receipt")
        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_AGG_ROUND,
                               round=state.round,
                               windows=len(windows),
                               strategy="rebuild") as span:
            result = self._aggregate_inner(state, windows,
                                           prev_receipt)
            span.add_cycles(result.info.stats.total_cycles)
            span.set("records", result.record_count)
        registry = obs.registry()
        registry.counter(obs_names.AGG_ROUNDS, ("strategy",)).inc(
            strategy="rebuild")
        registry.counter(obs_names.AGG_RECORDS, ("strategy",)).inc(
            result.record_count, strategy="rebuild")
        registry.histogram(obs_names.AGG_SECONDS,
                           ("strategy",)).observe(
            time.perf_counter() - start, strategy="rebuild")
        return result

    def _aggregate_inner(self, state: CLogState,
                         windows: list[RouterWindowInput],
                         prev_receipt: Receipt | None
                         ) -> AggregationResult:
        ordered = sorted(windows,
                         key=lambda w: (w.window_index, w.router_id))
        builder = ExecutorEnvBuilder()
        builder.write({
            "round": state.round,
            "policy": self.policy.to_wire(),
            "prev_root": state.root,
            "prev_size": len(state),
            "num_routers": len(ordered),
        })
        if state.round > 0:
            builder.write(make_receipt_binding(prev_receipt))
        for entry in state.entries_in_slot_order():
            builder.write({"key": entry.key.pack(),
                           "payload": entry.to_payload()})
        for window in ordered:
            builder.write({
                "router_id": window.router_id,
                "window_index": window.window_index,
                "commitment": window.commitment,
                "blobs": list(window.blobs),
            })
        info = self._prover.prove(rebuild_aggregation_guest,
                                  builder.build())
        receipt = info.receipt
        if state.round > 0:
            receipt = resolve(receipt, prev_receipt)

        # Advance the host state the same way the guest did.
        new_state = state.clone()
        record_count = 0
        for window in ordered:
            for blob in window.blobs:
                record = NetFlowRecord.from_wire(decode(blob))
                existing = new_state.get(record.key)
                new_state.set_entry(
                    existing.merge(record, self.policy) if existing
                    else CLogEntry.fresh(record))
                record_count += 1
        new_state.round = state.round + 1
        header = next(receipt.journal.values(), None)
        if not isinstance(header, dict) \
                or header.get("new_root") != new_state.root:
            raise ProofError(
                "rebuild guest root diverged from the host state — "
                "host/guest aggregation logic is out of sync")
        return AggregationResult(
            round=state.round,
            receipt=receipt,
            info=info,
            new_state=new_state,
            record_count=record_count,
            new_root=new_state.root,
        )
