"""Host-side witness construction for the aggregation guest.

The guest cannot hold the whole previous Merkle tree; instead, the host
prepares a *witness*: for each incoming record, in deterministic order,
either

* ``update`` — the flow exists: the entry's current payload plus the
  sibling path proving it sits under the *current* root (proofs are
  generated against the evolving intermediate tree, so sequential
  verified updates compose soundly), or
* ``insert`` — a vacant-slot proof for the append position, preceded by
  a ``grow`` step when the padded capacity is exhausted.

The guest verifies each step against its running root, applies the
policy merge, recomputes the root along the same siblings, and thereby
reproduces exactly the host's final root — or aborts (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..hashing import Digest
from ..merkle.tree import EMPTY_ROOTS
from ..netflow.records import NetFlowRecord
from .clog import CLogEntry, CLogState
from .policy import AggregationPolicy

OP_UPDATE = "update"
OP_INSERT = "insert"
OP_GROW = "grow"


@dataclass(frozen=True)
class AggregationWitness:
    """Everything the aggregation guest needs beyond the raw logs."""

    ops: tuple[dict[str, Any], ...]
    prev_root: Digest
    prev_size: int
    prev_depth: int
    new_root: Digest
    new_state: CLogState

    @property
    def op_count(self) -> int:
        return len(self.ops)


def build_witness(state: CLogState, records: list[NetFlowRecord],
                  policy: AggregationPolicy) -> AggregationWitness:
    """Build the per-record op list by replaying the round on a clone.

    ``records`` must be in the same deterministic order the guest will
    process them (sorted router ids, window-append order) — the guest
    pairs op *i* with record *i* and checks the keys match.
    """
    work = state.clone()
    prev_root = work.root
    prev_size = len(work)
    prev_depth = work.depth
    ops: list[dict[str, Any]] = []
    for record in records:
        key = record.key
        existing = work.get(key)
        if existing is not None:
            proof = work.merkle_map.prove(key)
            ops.append({
                "op": OP_UPDATE,
                "slot": proof.leaf_index,
                "old_payload": existing.to_payload(),
                "siblings": list(proof.siblings),
            })
            work.set_entry(existing.merge(record, policy))
        else:
            size = len(work)
            depth = work.merkle_map.depth
            if size > 0 and size >= (1 << depth):
                # Capacity exhausted: one grow step, then the vacant
                # proof in the grown tree is all-empty siblings plus the
                # old root at the top.
                ops.append({"op": OP_GROW})
                siblings = [EMPTY_ROOTS[i] for i in range(depth)]
                siblings.append(work.root)
            else:
                siblings = list(
                    work.merkle_map.tree.prove_vacant(size).siblings)
            ops.append({
                "op": OP_INSERT,
                "slot": size,
                "siblings": siblings,
            })
            work.set_entry(CLogEntry.fresh(record))
    work.round = state.round + 1
    return AggregationWitness(
        ops=tuple(ops),
        prev_root=prev_root,
        prev_size=prev_size,
        prev_depth=prev_depth,
        new_root=work.root,
        new_state=work,
    )
