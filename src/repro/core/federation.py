"""Inter-domain peering reconciliation (paper §1/§2.1).

"ISPs and CDN providers frequently establish SLAs with content
providers or *peering networks* ... When performance degradation
occurs, neither party is willing to reveal raw telemetry."

Two autonomous domains share a traffic boundary: domain A carries each
flow to the peering link, domain B onward.  Each domain runs its own
commitment/aggregation/proof pipeline over only its own routers.  A
neutral auditor reconciles the peering accounting from *proofs alone*:

    delivered_by_A  =  SUM(packets) − SUM(lost_packets)   (A's chain)
    received_by_B   =  SUM(packets)                        (B's chain)

With conservation (every packet A delivered arrives at B's ingress),
the two proven numbers must match; a discrepancy localizes the dispute
to the boundary without either side disclosing a single flow record.

The K-provider generalization — per-round published roots and a zkVM
guest proving the cross-provider join itself — lives in
:mod:`repro.federation`, which builds on the domain model here.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..commitments import BulletinBoard, Commitment, window_digest
from ..errors import ConfigurationError
from ..netflow.generator import TrafficConfig, TrafficGenerator
from ..netflow.records import NetFlowRecord
from ..netflow.topology import LinkSpec, NetworkTopology
from ..storage import MemoryLogStore
from .prover_service import ProverService
from .verifier_client import VerifierClient


@dataclass
class PeeringDomain:
    """One autonomous domain's full pipeline."""

    name: str
    router_ids: tuple[str, ...]
    store: MemoryLogStore
    bulletin: BulletinBoard
    prover: ProverService

    @classmethod
    def create(cls, name: str, router_ids: tuple[str, ...]) -> "PeeringDomain":
        store = MemoryLogStore()
        bulletin = BulletinBoard()
        return cls(
            name=name,
            router_ids=router_ids,
            store=store,
            bulletin=bulletin,
            prover=ProverService(store, bulletin),
        )

    def commit_window(self, window_index: int, records: list[NetFlowRecord]) -> None:
        by_router: dict[str, list[NetFlowRecord]] = {}
        for record in records:
            if record.router_id not in self.router_ids:
                raise ConfigurationError(
                    f"record from {record.router_id!r} does not belong "
                    f"to domain {self.name!r}"
                )
            by_router.setdefault(record.router_id, []).append(record)
        for router_id, router_records in by_router.items():
            self.store.append_records(router_id, window_index, router_records)
            self.bulletin.publish(
                Commitment(
                    router_id=router_id,
                    window_index=window_index,
                    digest=window_digest([r.to_bytes() for r in router_records]),
                    record_count=len(router_records),
                    published_at_ms=window_index * 5_000,
                )
            )


@dataclass
class PeeringScenario:
    """Two domains around one peering boundary, fed by shared flows."""

    domain_a: PeeringDomain
    domain_b: PeeringDomain
    topology: NetworkTopology
    total_flows: int


def build_peering_scenario(
    num_flows: int = 120,
    seed: int = 7,
    boundary_loss: float = 0.01,
    num_windows: int = 1,
) -> PeeringScenario:
    """A carries r1→r2, B carries r3→r4; every flow crosses r2—r3.

    ``boundary_loss`` is the loss rate of the peering link itself —
    the quantity the reconciliation surfaces.  ``num_windows`` spreads
    the flows round-robin over that many commitment windows (the
    multi-round shape the stale-window regression tests exercise).
    """
    if num_windows < 1:
        raise ConfigurationError("num_windows must be >= 1")
    topology = NetworkTopology()
    for router_id in ("r1", "r2", "r3", "r4"):
        topology.add_router(router_id)
    internal = LinkSpec(latency_us=1_500, jitter_us=150, loss_rate=0.002)
    topology.add_link("r1", "r2", internal)
    topology.add_link(
        "r2", "r3", LinkSpec(latency_us=4_000, jitter_us=400, loss_rate=boundary_loss)
    )
    topology.add_link("r3", "r4", internal)

    generator = TrafficGenerator(topology, TrafficConfig(seed=seed))
    domain_a = PeeringDomain.create("isp-a", ("r1", "r2"))
    domain_b = PeeringDomain.create("isp-b", ("r3", "r4"))
    records_a: dict[int, list[NetFlowRecord]] = {w: [] for w in range(num_windows)}
    records_b: dict[int, list[NetFlowRecord]] = {w: [] for w in range(num_windows)}
    for flow_index in range(num_flows):
        window = flow_index % num_windows
        flow = generator.generate_flow(now_ms=1_000 + window * 5_000)
        # Force the boundary crossing: ingress r1, egress r4.
        crossing = dataclasses.replace(flow, path=("r1", "r2", "r3", "r4"))
        for record in generator.observe(crossing):
            if record.router_id in domain_a.router_ids:
                records_a[window].append(record)
            else:
                records_b[window].append(record)
    for window in range(num_windows):
        domain_a.commit_window(window, records_a[window])
        domain_b.commit_window(window, records_b[window])
    return PeeringScenario(
        domain_a=domain_a,
        domain_b=domain_b,
        topology=topology,
        total_flows=num_flows,
    )


@dataclass(frozen=True)
class ReconciliationReport:
    """The auditor's verdict over two verified proof chains."""

    delivered_by_a: int
    received_by_b: int
    flows_a: int
    flows_b: int
    tolerance: float

    @property
    def gap(self) -> int:
        return self.delivered_by_a - self.received_by_b

    @property
    def relative_gap(self) -> float:
        # Guard on the *larger* side: a domain that delivered nothing
        # while the other received packets must surface as a full-size
        # gap (1.0), not divide-by-A's-zero into a clean 0.0.
        larger = max(self.delivered_by_a, self.received_by_b)
        if larger == 0:
            return 0.0
        return abs(self.gap) / larger

    @property
    def consistent(self) -> bool:
        return self.relative_gap <= self.tolerance and self.flows_a == self.flows_b

    def __str__(self) -> str:
        status = "CONSISTENT" if self.consistent else "DISPUTED"
        return (
            f"[{status}] A delivered {self.delivered_by_a:,} pkts "
            f"over {self.flows_a} flows; B received "
            f"{self.received_by_b:,} over {self.flows_b} "
            f"(gap {self.gap:+,}, {self.relative_gap:.3%})"
        )


class PeeringAuditor:
    """Neutral third party: verifies both chains, reconciles accounting.

    Holds only public material from each domain (bulletin + receipts +
    query responses); never sees either side's logs.
    """

    def __init__(self, tolerance: float = 0.0) -> None:
        if tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        self.tolerance = tolerance

    def reconcile(self, scenario: PeeringScenario) -> ReconciliationReport:
        a = scenario.domain_a
        b = scenario.domain_b
        for domain in (a, b):
            # Every committed-but-unproven window must enter the chain
            # before querying — a partially aggregated domain would
            # otherwise reconcile over stale state and mis-localize the
            # dispute to the boundary.
            if domain.prover.pending_windows():
                domain.prover.aggregate_all_committed()
        a_response = a.prover.answer_query(
            "SELECT SUM(packets), SUM(lost_packets), COUNT(*) FROM clogs"
        )
        b_response = b.prover.answer_query("SELECT SUM(packets), COUNT(*) FROM clogs")
        # Independent verification per domain.
        a_verified = self._verify(a, a_response)
        b_verified = self._verify(b, b_response)
        a_packets, a_lost, a_flows = a_verified.values
        b_packets, b_flows = b_verified.values
        return ReconciliationReport(
            delivered_by_a=(a_packets or 0) - (a_lost or 0),
            received_by_b=b_packets or 0,
            flows_a=a_flows or 0,
            flows_b=b_flows or 0,
            tolerance=self.tolerance,
        )

    @staticmethod
    def _verify(domain: PeeringDomain, response):
        verifier = VerifierClient(domain.bulletin)
        chain = verifier.verify_chain(domain.prover.chain.receipts())
        return verifier.verify_query(response, chain[-1])
