"""Receipt transparency log — public, append-only proof history.

The paper's bulletin board covers *router commitments*; this extends
the same idea to the provider's *receipts*: every aggregation round's
claim digest is appended to a Merkle-tree log whose root auditors can
gossip.  A provider that later rewrites history (forks the chain,
swaps a round's receipt) can no longer produce inclusion proofs
consistent with the root auditors already hold — the standard
certificate-transparency argument applied to telemetry proofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ChainError, IntegrityError
from ..hashing import Digest
from ..merkle import InclusionProof, MerkleTree
from ..merkle.hasher import default_hasher
from ..zkvm import Receipt


@dataclass(frozen=True)
class LogCheckpoint:
    """A signed-root analogue auditors hold: (size, root)."""

    size: int
    root: Digest

    def to_wire(self) -> dict[str, Any]:
        return {"size": self.size, "root": self.root}

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "LogCheckpoint":
        return cls(size=wire["size"], root=wire["root"])


class ReceiptTransparencyLog:
    """Append-only Merkle log of aggregation-receipt claim digests."""

    def __init__(self) -> None:
        self._tree = MerkleTree()
        self._claims: list[Digest] = []

    def __len__(self) -> int:
        return len(self._claims)

    def append(self, receipt: Receipt) -> int:
        """Append a receipt's claim digest; returns its log index.

        Entries must extend the round sequence — the log refuses a
        receipt for a round it already holds (history rewriting).
        """
        header = next(receipt.journal.values(), None)
        if isinstance(header, dict) and "round" in header:
            if header["round"] != len(self._claims):
                raise ChainError(
                    f"log holds {len(self._claims)} rounds; cannot "
                    f"append round {header['round']}")
        claim_digest = receipt.claim.digest()
        leaf = default_hasher().leaf(claim_digest.raw)
        index = self._tree.append(leaf)
        self._claims.append(claim_digest)
        return index

    @property
    def root(self) -> Digest:
        return self._tree.root

    def checkpoint(self) -> LogCheckpoint:
        """The (size, root) pair an auditor records."""
        return LogCheckpoint(size=len(self._claims), root=self.root)

    def claim_at(self, index: int) -> Digest:
        try:
            return self._claims[index]
        except IndexError:
            raise ChainError(f"log has no entry {index}") from None

    def prove_inclusion(self, index: int) -> InclusionProof:
        """Prove that entry ``index`` is in the current log."""
        return self._tree.prove(index)

    @staticmethod
    def verify_inclusion(checkpoint: LogCheckpoint,
                         claim_digest: Digest,
                         proof: InclusionProof) -> None:
        """Auditor-side check: the claim is in the checkpointed log."""
        expected_leaf = default_hasher().leaf(claim_digest.raw)
        if proof.leaf != expected_leaf:
            raise IntegrityError(
                "inclusion proof does not cover the stated claim")
        if proof.leaf_index >= checkpoint.size:
            raise IntegrityError(
                "inclusion proof points past the checkpointed size")
        proof.verify(checkpoint.root)

    def prove_consistency(self, old: LogCheckpoint):
        """A CT-style consistency proof from ``old`` to the current
        checkpoint (see :mod:`repro.merkle.consistency`)."""
        if old.size > len(self._claims):
            raise ChainError(
                f"cannot prove consistency back to size {old.size}; "
                f"log only has {len(self._claims)} entries")
        return self._tree.prove_consistency(old.size)

    @staticmethod
    def verify_consistency(old: LogCheckpoint, new: LogCheckpoint,
                           proof) -> None:
        """Auditor-side: ``new`` extends ``old`` without rewrites."""
        from ..merkle import verify_consistency as _verify
        if proof.old_size != old.size or proof.new_size != new.size:
            raise IntegrityError(
                "consistency proof sizes do not match the checkpoints")
        try:
            _verify(old.root, new.root, proof)
        except Exception as exc:
            raise IntegrityError(
                f"log consistency verification failed: {exc}") from exc

    def consistent_with(self, old: LogCheckpoint) -> bool:
        """Is an auditor's older checkpoint a prefix of this log?

        Convenience wrapper: builds and checks a real consistency
        proof (falls back to False on any failure).
        """
        if old.size > len(self._claims):
            return False
        if old.size == 0:
            return True
        try:
            proof = self.prove_consistency(old)
            self.verify_consistency(old, self.checkpoint(), proof)
        except Exception:
            return False
        return True
