"""The paper's contribution: verifiable telemetry prover and verifier.

Pipeline (Figure 1):

1. Routers commit RLog windows (:mod:`repro.commitments`).
2. The service provider's :class:`~repro.core.prover_service.ProverService`
   aggregates committed windows into CLogs inside the zkVM (Algorithm 1),
   chaining each round's proof to the previous one.
3. Clients hold a :class:`~repro.core.verifier_client.VerifierClient` and
   issue SQL queries; the provider returns the result plus a query proof
   bound to the latest aggregation root (§4.2).
4. Any post-commitment tampering makes proof generation abort
   (:mod:`repro.core.tamper` provides the injection tools, §5/Figure 3).
"""

from .aggregation import AggregationResult, Aggregator
from .clog import CLogEntry, CLogState
from .chain import AggregationChain, ChainLink
from .federation import (
    PeeringAuditor,
    PeeringScenario,
    ReconciliationReport,
    build_peering_scenario,
)
from .parallel import ParallelAggregationResult, ParallelAggregator
from .policy import AggOp, AggregationPolicy, DEFAULT_POLICY
from .prover_service import ProverService, QueryResponse
from .rebuild import RebuildAggregator
from .system import TelemetrySystem, build_paper_eval_system
from .tamper import (
    TamperKind,
    TamperOutcome,
    corrupt_record_bytes,
    modify_record_field,
    reorder_window,
    run_tamper_experiment,
    truncate_window,
)
from .verifier_client import VerifierClient

__all__ = [
    "AggOp",
    "AggregationChain",
    "AggregationPolicy",
    "AggregationResult",
    "Aggregator",
    "CLogEntry",
    "CLogState",
    "ChainLink",
    "DEFAULT_POLICY",
    "ParallelAggregationResult",
    "ParallelAggregator",
    "PeeringAuditor",
    "PeeringScenario",
    "ProverService",
    "ReconciliationReport",
    "build_peering_scenario",
    "RebuildAggregator",
    "QueryResponse",
    "TamperKind",
    "TamperOutcome",
    "TelemetrySystem",
    "VerifierClient",
    "build_paper_eval_system",
    "corrupt_record_bytes",
    "modify_record_field",
    "reorder_window",
    "run_tamper_experiment",
    "truncate_window",
]
