"""Host-side orchestration of one aggregation round (§4.1).

The :class:`Aggregator` gathers committed router windows, builds the
Merkle witness, runs the aggregation guest in the zkVM, and resolves the
recursion assumption against the previous round's receipt — producing an
*unconditional* receipt whose journal publicly binds the old root, the
new root, and the window commitments consumed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from ..errors import ChainError, ProofError
from ..hashing import Digest
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..zkvm import ExecutorEnvBuilder, ProveInfo, Prover, ProverOpts, Receipt
from ..zkvm.recursion import resolve
from .clog import CLogState
from .guest_programs import aggregation_guest
from .policy import DEFAULT_POLICY, AggregationPolicy
from .witness import AggregationWitness, build_witness


@dataclass(frozen=True)
class RouterWindowInput:
    """One committed router window handed to the aggregator."""

    router_id: str
    window_index: int
    commitment: Digest
    blobs: tuple[bytes, ...]


def make_receipt_binding(receipt: Receipt) -> dict[str, Any]:
    """The claim components a guest needs to recompute a claim digest.

    Must correspond field-for-field to
    :func:`repro.core.guest_programs._guest_claim_digest`.
    """
    if receipt.claim.assumptions:
        raise ChainError(
            "cannot bind a conditional receipt; resolve its assumptions "
            "first")
    return {
        "image_id": receipt.claim.image_id,
        "input_digest": receipt.claim.input_digest,
        "exit_code": int(receipt.claim.exit_code),
        "total_cycles": receipt.claim.total_cycles,
        "segment_count": receipt.claim.segment_count,
        "journal": receipt.journal.data,
    }


@dataclass(frozen=True)
class AggregationResult:
    """Outcome of one proven aggregation round.

    ``witness`` is populated by the update-path strategy
    (:class:`Aggregator`) and ``None`` for the full-rebuild strategy
    (:class:`repro.core.rebuild.RebuildAggregator`) — rebuild rounds
    carry no per-record Merkle witness.
    """

    round: int
    receipt: Receipt
    info: ProveInfo
    new_state: CLogState
    record_count: int
    new_root: Digest
    witness: AggregationWitness | None = None

    @property
    def journal_header(self) -> dict[str, Any]:
        header = next(self.receipt.journal.values(), None)
        if not isinstance(header, dict):
            raise ProofError("aggregation journal missing header")
        return header


class Aggregator:
    """Runs Algorithm 1 rounds through the zkVM prover.

    ``prover`` accepts any object with the ``prove(program, env_input)``
    contract — in particular :class:`repro.engine.pool.PooledProver`,
    which routes the round through the engine's worker pool and receipt
    cache.  Unset, a direct in-process :class:`Prover` is used.
    """

    def __init__(self, policy: AggregationPolicy = DEFAULT_POLICY,
                 prover_opts: ProverOpts | None = None,
                 prover: Any | None = None) -> None:
        self.policy = policy
        self._prover = prover if prover is not None \
            else Prover(prover_opts or ProverOpts.groth16())

    def aggregate(self, state: CLogState,
                  windows: list[RouterWindowInput],
                  prev_receipt: Receipt | None) -> AggregationResult:
        """Prove one round over ``windows`` starting from ``state``.

        Raises :class:`~repro.errors.GuestAbort` if any integrity check
        fails inside the guest (tampered logs, broken chain, bad
        witness) — an aborted round produces no receipt and leaves
        ``state`` untouched.
        """
        if state.round > 0 and prev_receipt is None:
            raise ChainError(
                f"round {state.round} requires the round "
                f"{state.round - 1} receipt")
        start = time.perf_counter()
        with obs.tracer().span(obs_names.SPAN_AGG_ROUND,
                               round=state.round,
                               windows=len(windows)) as span:
            result = self._aggregate_inner(state, windows,
                                           prev_receipt, span)
        registry = obs.registry()
        registry.counter(obs_names.AGG_ROUNDS, ("strategy",)).inc(
            strategy="update")
        registry.counter(obs_names.AGG_RECORDS, ("strategy",)).inc(
            result.record_count, strategy="update")
        registry.histogram(obs_names.AGG_SECONDS,
                           ("strategy",)).observe(
            time.perf_counter() - start, strategy="update")
        return result

    def _aggregate_inner(self, state: CLogState,
                         windows: list[RouterWindowInput],
                         prev_receipt: Receipt | None,
                         span) -> AggregationResult:
        ordered = sorted(windows,
                         key=lambda w: (w.window_index, w.router_id))
        records = []
        from ..serialization import decode
        from ..netflow.records import NetFlowRecord
        for window in ordered:
            for blob in window.blobs:
                records.append(NetFlowRecord.from_wire(decode(blob)))
        with obs.tracer().span(obs_names.SPAN_AGG_WITNESS,
                               records=len(records)) as witness_span:
            witness = build_witness(state, records, self.policy)
            witness_span.set("ops", witness.op_count)
        builder = ExecutorEnvBuilder()
        builder.write({
            "round": state.round,
            "policy": self.policy.to_wire(),
            "prev_root": witness.prev_root,
            "prev_size": witness.prev_size,
            "prev_depth": witness.prev_depth,
            "num_routers": len(ordered),
            "num_ops": witness.op_count,
        })
        if state.round > 0:
            builder.write(make_receipt_binding(prev_receipt))
        for window in ordered:
            builder.write({
                "router_id": window.router_id,
                "window_index": window.window_index,
                "commitment": window.commitment,
                "blobs": list(window.blobs),
            })
        for op in witness.ops:
            builder.write(op)
        info = self._prover.prove(aggregation_guest, builder.build())
        receipt = info.receipt
        if state.round > 0:
            receipt = resolve(receipt, prev_receipt)
        header = next(receipt.journal.values(), None)
        if not isinstance(header, dict) \
                or header.get("new_root") != witness.new_root:
            raise ProofError(
                "guest-computed root diverged from the host witness — "
                "host/guest aggregation logic is out of sync")
        span.add_cycles(info.stats.total_cycles)
        span.set("records", len(records))
        return AggregationResult(
            round=state.round,
            receipt=receipt,
            info=info,
            new_state=witness.new_state,
            record_count=len(records),
            new_root=witness.new_root,
            witness=witness,
        )
