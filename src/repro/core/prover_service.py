"""The service provider's prover (Figure 1, left).

Owns the authoritative CLog state and the proof chain; pulls committed
router windows from the shared store, runs aggregation rounds, and
answers client queries with proofs.  Aggregation is decoupled from both
logging and queries (§1, §4): it reads only *already committed* windows
and can run off-path, at whatever cadence resources allow.
"""

from __future__ import annotations

import logging

from ..commitments import BulletinBoard
from ..errors import (
    ChainError,
    CheckpointError,
    ConfigurationError,
    MissingCommitment,
    ProofError,
    ReproError,
)
from ..hashing import Digest
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..qserve.cache import QueryResultCache
from ..serialization import decode, encode
from ..storage.backend import LogStore
from ..zkvm import ProveInfo, ProverOpts, Verifier
from .aggregation import (
    AggregationResult,
    Aggregator,
    RouterWindowInput,
)
from .chain import AggregationChain, ChainLink
from .clog import CLogEntry, CLogState
from .policy import DEFAULT_POLICY, AggregationPolicy
from .query_proof import QueryProver, QueryResponse, env_query_partitions

logger = logging.getLogger(__name__)

#: Version tag inside every checkpoint payload; bump on layout changes.
CHECKPOINT_VERSION = 1

#: Default checkpoint slot used by auto-checkpointing and restore.
DEFAULT_CHECKPOINT = "prover-latest"


class ProverService:
    """Aggregates committed telemetry and answers verifiable queries."""

    def __init__(self, store: LogStore, bulletin: BulletinBoard,
                 policy: AggregationPolicy = DEFAULT_POLICY,
                 prover_opts: ProverOpts | None = None,
                 strategy: str = "update",
                 retain_history: bool = False,
                 auto_checkpoint: bool = False,
                 checkpoint_name: str = DEFAULT_CHECKPOINT,
                 query_cache_size: int = 256,
                 query_cache_persist: bool = False,
                 pool_backend: str | None = None,
                 prove_workers: int | None = None,
                 prove_nodes: Any = None,
                 query_partitions: int | None = None,
                 stream: bool | None = None,
                 stream_crossover: bool = False) -> None:
        if query_cache_size < 1:
            raise ConfigurationError("query_cache_size must be >= 1")
        if query_partitions is not None and query_partitions < 1:
            raise ConfigurationError("query_partitions must be >= 1")
        if stream and strategy != "update":
            raise ConfigurationError(
                "streaming composition requires the 'update' strategy "
                "(rebuild rounds have no delta decomposition)")
        self.store = store
        self.bulletin = bulletin
        self.policy = policy
        self.state = CLogState()
        self.chain = AggregationChain()
        self.retain_history = retain_history
        self._history: dict[int, CLogState] = {}
        # The engine is opt-in and *explicit*: ``serve --prove-workers``
        # or ProverOpts fields, never ambient environment — a default
        # service must prove exactly like the seed (the obs contract
        # pins its telemetry namespace).
        self.engine = self._build_engine(prover_opts, pool_backend,
                                         prove_workers, query_partitions,
                                         stream, prove_nodes)
        prover = self.engine.prover(prover_opts) \
            if self.engine is not None else None
        # REPRO_QUERY_PARTITIONS only tunes a service that *already*
        # opted into an engine — the env var alone must not change how
        # a default service proves.
        if query_partitions is None and self.engine is not None:
            query_partitions = env_query_partitions()
        self.query_partitions = query_partitions
        # Same gating for REPRO_STREAM: an env var alone never changes
        # how a default (engine-less) service proves.
        if stream is None and self.engine is not None:
            from ..stream.pipeline import env_stream
            stream = env_stream() and strategy == "update"
        self.stream_enabled = bool(stream)
        self._streamer = None
        self._stream_windows: list[int] = []
        if self.stream_enabled:
            from ..stream import StreamingAggregator
            self._streamer = StreamingAggregator(
                policy, prover_opts, engine=self.engine,
                crossover=stream_crossover)
        if strategy == "update":
            self._aggregator = Aggregator(policy, prover_opts,
                                          prover=prover)
        elif strategy == "rebuild":
            from .rebuild import RebuildAggregator
            self._aggregator = RebuildAggregator(policy, prover_opts,
                                                 prover=prover)
        else:
            raise ProofError(
                f"unknown aggregation strategy {strategy!r}; "
                "expected 'update' or 'rebuild'")
        self.strategy = strategy
        self.auto_checkpoint = auto_checkpoint
        self.checkpoint_name = checkpoint_name
        self.query_cache_size = query_cache_size
        self._query_prover = QueryProver(
            prover_opts, prover=prover, engine=self.engine,
            num_partitions=self.query_partitions)
        self._aggregated_windows: set[int] = set()
        # The tiered result cache replaced the PR 3 OrderedDict: that
        # dict was mutated unlocked by the server's concurrent executor
        # threads.  Persistence is opt-in (``query_cache_persist``) —
        # a default service keeps the seed's memory-only behaviour.
        self.query_cache = QueryResultCache(
            store=self.store if query_cache_persist else None,
            memory_entries=query_cache_size)
        self.last_prove_info: ProveInfo | None = None

    def _build_engine(self, prover_opts: ProverOpts | None,
                      pool_backend: str | None,
                      prove_workers: int | None,
                      query_partitions: int | None = None,
                      stream: bool | None = None,
                      prove_nodes: Any = None):
        backend = pool_backend
        if backend is None and prover_opts is not None:
            backend = prover_opts.pool_backend
        workers = prove_workers
        if workers is None and prover_opts is not None:
            workers = prover_opts.prove_workers
        if backend is None and prove_nodes:
            # An explicit node list opts into the cluster backend.
            backend = "remote"
        if backend is None and workers is None \
                and query_partitions is None and not stream:
            return None
        if workers is not None and workers < 1:
            raise ConfigurationError("prove_workers must be >= 1")
        if backend is None and workers is None:
            # --query-partitions (or --stream) alone: concurrency and
            # the receipt cache are wanted but nobody sized a worker
            # pool, so stay in-process with threads rather than forking.
            backend = "thread"
        from ..engine import ProvingEngine
        # The receipt cache's persistent tier rides the store's
        # checkpoint KV, so identical proofs replay across restarts —
        # and, for the remote backend, doubles as the shared tier any
        # worker on the same store can serve partitions from.
        return ProvingEngine(
            policy=self.policy,
            prover_opts=prover_opts or ProverOpts.groth16(),
            backend=backend or "process",
            max_workers=workers,
            store=self.store,
            nodes=prove_nodes)

    def close(self) -> None:
        """Release the engine's worker pool (if any)."""
        if self.engine is not None:
            self.engine.close()

    @property
    def aggregated_windows(self) -> frozenset[int]:
        """Window indices already consumed by a proven round."""
        return frozenset(self._aggregated_windows)

    def pending_windows(self) -> list[int]:
        """Committed-but-unproven windows, in commit order.

        A window stays pending until the round consuming it is *proven*
        — in stream mode an ingested (delta-proven but unclosed) window
        is still pending, because no chained receipt covers it yet.
        """
        return [window for window in self.bulletin.windows()
                if window not in self._aggregated_windows]

    def status(self) -> dict:
        """Operational snapshot (the wire health endpoint's body).

        ``pending_windows`` is the backlog: committed windows no proven
        round has consumed.  Health checks need it to tell a prover
        that is *catching up* (pending shrinking or empty) from one
        that *stalled* (pending growing while rounds stand still) —
        before it was added, both looked identical here.
        """
        status = {
            "rounds": len(self.chain),
            "flows": len(self.state),
            "strategy": self.strategy,
            "aggregated_windows": sorted(self._aggregated_windows),
            "committed_windows": self.bulletin.windows(),
            "pending_windows": self.pending_windows(),
            "cached_queries":
                self.query_cache.stats()["memory_entries"],
            "query_cache_max": self.query_cache_size,
            "query_cache": self.query_cache.stats(),
            "auto_checkpoint": self.auto_checkpoint,
            "query_partitions": self.query_partitions,
            "stream": self.stream_status(),
            "latest_root": (self.chain.latest.new_root.hex()
                            if len(self.chain) else None),
            "engine": (self.engine.snapshot()
                       if self.engine is not None else None),
        }
        return status

    def stream_status(self) -> dict | None:
        """Streaming-mode sub-status, or ``None`` when not enabled."""
        if self._streamer is None:
            return None
        return {
            "open_round": self._streamer.open_round,
            "pending_deltas": self._streamer.pending_deltas,
            "frontier_nodes": len(self._streamer.frontier),
            "ingested_windows": sorted(self._stream_windows),
        }

    # -- aggregation ------------------------------------------------------------

    def gather_window(self, window_index: int,
                      skip_uncommitted: bool = False
                      ) -> list[RouterWindowInput]:
        """Collect every router's committed blobs for one window.

        Routers with stored rows but no published commitment raise
        :class:`~repro.errors.MissingCommitment` — uncommitted data must
        never enter an aggregation round.  With ``skip_uncommitted=True``
        such routers are silently left out instead (the daemon's
        degrade-past-the-deadline path); the round then covers only the
        routers that did commit, which is still fully sound — it just
        aggregates less.
        """
        inputs = []
        for router_id in self.store.router_ids():
            if window_index not in self.store.window_indices(router_id):
                continue
            if skip_uncommitted:
                commitment = self.bulletin.try_get(router_id,
                                                   window_index)
                if commitment is None:
                    logger.warning(
                        "window %d: skipping router %r (no commitment "
                        "published)", window_index, router_id)
                    continue
            else:
                commitment = self.bulletin.get(router_id, window_index)
            blobs = tuple(self.store.window_blobs(router_id, window_index))
            inputs.append(RouterWindowInput(
                router_id=router_id,
                window_index=window_index,
                commitment=commitment.digest,
                blobs=blobs,
            ))
        if not inputs:
            raise MissingCommitment(
                f"no router has committed data for window {window_index}")
        return inputs

    def aggregate_window(self, window_index: int) -> AggregationResult:
        """Run one aggregation round over one committed window."""
        return self.aggregate_windows([window_index])

    def aggregate_windows(self,
                          window_indices: list[int]) -> AggregationResult:
        """Run one aggregation round over several windows at once."""
        inputs: list[RouterWindowInput] = []
        for window_index in sorted(window_indices):
            if window_index in self._aggregated_windows:
                raise ProofError(
                    f"window {window_index} was already aggregated")
            inputs.extend(self.gather_window(window_index))
        return self.prove_round(window_indices, inputs)

    def prove_round(self, window_indices: list[int],
                    inputs: list[RouterWindowInput]
                    ) -> AggregationResult:
        """Prove one round over pre-gathered inputs and commit it.

        The gather/prove split lets the supervised daemon collect each
        window separately (classifying per-window faults, skipping late
        routers) and still land everything in one proof.  State, chain,
        and the aggregated-window set change only after the proof
        exists — a failed round leaves the service exactly as it was.
        """
        for window_index in window_indices:
            if window_index in self._aggregated_windows:
                raise ProofError(
                    f"window {window_index} was already aggregated")
        prev_receipt = self.chain.latest_receipt if len(self.chain) \
            else None
        if self._streamer is not None:
            from ..stream.pipeline import batch_windows
            if self._streamer.open_round is not None:
                # Absorb these windows as further deltas of the open
                # round, then close it; the result also covers every
                # previously ingested window.  Guarded: a faulted fold
                # must not leave these windows half-ingested — the
                # retry re-ingests them with the deltas replaying from
                # the receipt cache.
                with self._streamer.guarded():
                    for batch in (batch_windows(inputs) if inputs
                                  else []):
                        self._streamer.ingest(self.state, batch,
                                              prev_receipt)
                    result = self._streamer.close()
                window_indices = sorted(set(window_indices)
                                        | set(self._stream_windows))
                self._stream_windows = []
            else:
                result = self._streamer.aggregate(self.state, inputs,
                                                  prev_receipt)
        else:
            result = self._aggregator.aggregate(self.state, inputs,
                                                prev_receipt)
        # Commit the round only after the proof exists.
        self.state = result.new_state
        if self.retain_history:
            self._history[result.round] = result.new_state
        self.chain.append(ChainLink(
            round=result.round,
            receipt=result.receipt,
            new_root=result.new_root,
            size=len(result.new_state),
            record_count=result.record_count,
        ))
        self._aggregated_windows.update(window_indices)
        self.last_prove_info = result.info
        registry = obs.registry()
        registry.gauge(obs_names.SERVICE_FLOWS).set(
            len(result.new_state))
        registry.gauge(obs_names.SERVICE_ROUNDS).set(len(self.chain))
        logger.info(
            "round %d proven: windows=%s records=%d flows=%d root=%s…",
            result.round, sorted(window_indices), result.record_count,
            len(result.new_state), result.new_root.short())
        if self.auto_checkpoint:
            self.checkpoint()
        return result

    # -- streaming ---------------------------------------------------------------

    def ingest_window(self, window_index: int,
                      skip_uncommitted: bool = False) -> int:
        """Stream mode: prove a delta for one committed window *now*.

        The window joins the open round's fold frontier; it is **not**
        yet covered by a chained receipt (it stays pending until
        :meth:`close_stream_round`), but its delta proof is done — the
        round boundary only pays the final folds.  Returns the number
        of deltas ingested into the open round so far.
        """
        if self._streamer is None:
            raise ConfigurationError(
                "ingest_window() requires stream mode (stream=True or "
                "REPRO_STREAM=1 on an engine-backed service)")
        if window_index in self._aggregated_windows:
            raise ProofError(
                f"window {window_index} was already aggregated")
        if window_index in self._stream_windows:
            raise ProofError(
                f"window {window_index} was already ingested into the "
                f"open round")
        inputs = self.gather_window(window_index, skip_uncommitted)
        prev_receipt = self.chain.latest_receipt if len(self.chain) \
            else None
        with self._streamer.guarded():
            self._streamer.ingest(self.state, inputs, prev_receipt)
        self._stream_windows.append(window_index)
        if self.auto_checkpoint:
            # Persist the frontier: a crash between here and the round
            # boundary resumes without re-proving this delta.
            self.checkpoint()
        return self._streamer.pending_deltas

    def close_stream_round(self) -> AggregationResult:
        """Close the open streamed round and commit its final receipt."""
        if self._streamer is None or self._streamer.open_round is None:
            raise ChainError("no streaming round is open")
        return self.prove_round([], [])

    def aggregate_all_committed(self) -> list[AggregationResult]:
        """Aggregate every committed-but-unaggregated window, in order."""
        results = []
        for window_index in self.bulletin.windows():
            if window_index not in self._aggregated_windows:
                results.append(self.aggregate_window(window_index))
        return results

    # -- queries -------------------------------------------------------------------

    def answer_query(self, sql: str,
                     round_index: int | None = None,
                     use_cache: bool = True) -> QueryResponse:
        """Prove ``sql`` over an aggregation state (§4.2).

        By default queries run against the latest round.  With
        ``retain_history=True`` the service keeps every round's state,
        and ``round_index`` proves the query against that *historical*
        root — a client auditing round ``n`` verifies the response
        against round ``n``'s receipt in the chain.

        Proving is deterministic, so identical (sql, round, root)
        triples yield bit-identical receipts — the service caches and
        replays them unless ``use_cache=False``.  The committed root is
        part of the key because a round *index* alone is not stable
        identity: after a restore or re-aggregation the same index can
        commit a different root, and a cache keyed on (sql, round)
        would replay a response whose receipt binds the stale state.
        """
        effective_round, committed_root = \
            self.resolve_query_round(round_index)
        if use_cache:
            cached = self.query_cache.get(sql, effective_round,
                                          committed_root)
            if cached is not None:
                obs.registry().counter(obs_names.SERVICE_QUERY_CACHE,
                                       ("result",)).inc(result="hit")
                return cached
        obs.registry().counter(obs_names.SERVICE_QUERY_CACHE,
                               ("result",)).inc(result="miss")
        state, receipt = self.query_state(round_index)
        response, info = self._query_prover.prove_query(
            sql, state, receipt)
        self.last_prove_info = info
        self.query_cache.put(response)
        logger.info(
            "query proven: %r round=%d matched=%d/%d cycles=%d",
            sql, response.round, response.matched, response.scanned,
            info.stats.total_cycles)
        return response

    def resolve_query_round(self, round_index: int | None = None
                            ) -> tuple[int, Digest]:
        """Validate a query round; return ``(round, committed_root)``.

        ``None`` means the latest proven round.  Raises the typed
        errors the wire protocol maps — :class:`ChainError` when
        nothing is proven yet, :class:`ProofError` for an out-of-range
        round — so the query service can reject bad requests at
        admission, before any proving resource is spent.
        """
        # ChainError (a ProofError) rather than the bare IndexError a
        # naive chain access would give: callers and the wire error
        # table can tell "nothing proven yet" apart from a server bug.
        if len(self.chain) == 0:
            raise ChainError(
                "no aggregation round has been proven yet; run "
                "aggregate_windows() (or start the daemon) before "
                "querying")
        if round_index is not None \
                and not 0 <= round_index < len(self.chain):
            raise ProofError(
                f"round {round_index} does not exist; the chain holds "
                f"{len(self.chain)} round(s)")
        effective_round = round_index if round_index is not None \
            else (len(self.chain) - 1)
        return effective_round, self.chain[effective_round].new_root

    def query_state(self, round_index: int | None = None):
        """The ``(state, aggregation receipt)`` a query proves against.

        Shared by :meth:`answer_query` and the batched prover in
        :mod:`repro.qserve` — both must bind a query to exactly the
        state the chain's receipt attests.  Historical rounds need
        ``retain_history=True``; note the *cache* path deliberately
        does not require it (a cached historical answer replays fine
        without the retained state), which is why this is separate
        from :meth:`resolve_query_round`.
        """
        effective_round, _ = self.resolve_query_round(round_index)
        if round_index is None:
            return self.state, self.chain.latest.receipt
        historical = self._history.get(round_index)
        if historical is None:
            raise ProofError(
                f"no retained state for round {round_index}; "
                "construct the service with retain_history=True")
        return historical, self.chain[effective_round].receipt

    def estimate_query(self, sql: str):
        """Predict the proving cost of ``sql`` without proving it
        (§7 "Query complexity" — admission control / pricing)."""
        from .planner import estimate_query_cost
        return estimate_query_cost(self, sql)

    # -- checkpoint / recovery ---------------------------------------------------

    def checkpoint(self, name: str | None = None) -> Digest:
        """Persist a crash-safe snapshot of the proven state.

        The snapshot holds everything a restarted prover needs to resume
        *without* re-proving from genesis: the full receipt chain, the
        CLog entries (in slot order, so the Merkle map rebuilds
        bit-identically), and the aggregated-window set.  It contains
        only *proven* artifacts — the raw logs stay in the store, and
        nothing in the snapshot is trusted on restore until the latest
        receipt re-verifies (see :meth:`restore`).

        Returns the committed root the snapshot captures.
        """
        name = name or self.checkpoint_name
        payload = {
            "version": CHECKPOINT_VERSION,
            "strategy": self.strategy,
            "state_round": self.state.round,
            "aggregated_windows": sorted(self._aggregated_windows),
            "chain": [link.to_wire() for link in self.chain],
            "entries": [entry.to_wire()
                        for entry in self.state.entries_in_slot_order()],
        }
        if self._streamer is not None \
                and self._streamer.open_round is not None:
            # Persist the open round's fold frontier (log-many receipts)
            # so recovery replays only *unfolded* deltas; the delta
            # proofs themselves also sit in the receipt cache's
            # persistent tier, so even a dropped frontier re-proves
            # nothing — this just skips the cache lookups and re-folds.
            work = self._streamer.work_state
            payload["stream"] = {
                "round": self._streamer.open_round,
                "windows": list(self._stream_windows),
                "record_count": self._streamer.record_count,
                "nodes": [node.to_wire()
                          for node in self._streamer.frontier.nodes],
                "entries": [entry.to_wire()
                            for entry in work.entries_in_slot_order()],
            }
        counter = obs.registry().counter(obs_names.SERVICE_CHECKPOINTS,
                                         ("outcome",))
        try:
            self.store.put_checkpoint(name, encode(payload))
        except ReproError:
            counter.inc(outcome="err")
            raise
        counter.inc(outcome="ok")
        logger.info("checkpoint %r written: rounds=%d flows=%d root=%s…",
                    name, len(self.chain), len(self.state),
                    self.state.root.short())
        return self.state.root

    def restore(self, name: str | None = None) -> bool:
        """Load a snapshot, verify it, and adopt it — or refuse.

        Returns ``False`` when no checkpoint exists under ``name`` (a
        cold start).  On success the service answers queries exactly as
        the pre-crash instance did.  A snapshot is **never accepted on
        faith**: the chain must link round-by-round, the restored
        entries must recompute the committed Merkle root, and the
        latest receipt must re-verify against the trusted aggregation
        guest image ids.  Any failure raises
        :class:`~repro.errors.CheckpointError` and leaves the service
        untouched.
        """
        if len(self.chain) or len(self.state) \
                or self._aggregated_windows:
            raise CheckpointError(
                "restore() requires a fresh service; this one has "
                "already aggregated")
        name = name or self.checkpoint_name
        counter = obs.registry().counter(obs_names.SERVICE_RESTORES,
                                         ("outcome",))
        try:
            blob = self.store.get_checkpoint(name)
            if blob is None:
                return False
            chain, state, windows, payload = \
                self._decode_checkpoint(blob)
            self._verify_snapshot(chain, state)
            stream_resume = self._verify_stream_section(
                payload.get("stream"), state)
        except CheckpointError:
            counter.inc(outcome="err")
            raise
        self.chain = chain
        self.state = state
        self._aggregated_windows = windows
        self.query_cache.clear()
        if stream_resume is not None:
            round_index, stream_windows, record_count, nodes, work = \
                stream_resume
            self._streamer.resume(round_index, work, nodes,
                                  record_count)
            self._stream_windows = list(stream_windows)
            logger.info(
                "resumed streaming round %d: %d frontier node(s), "
                "windows=%s", round_index, len(nodes),
                sorted(stream_windows))
        if self.retain_history and len(chain):
            # Only the latest round's state survives a crash; older
            # rounds need re-aggregation (retain_history is advisory).
            self._history = {len(chain) - 1: state}
        registry = obs.registry()
        registry.gauge(obs_names.SERVICE_FLOWS).set(len(state))
        registry.gauge(obs_names.SERVICE_ROUNDS).set(len(chain))
        counter.inc(outcome="ok")
        logger.info(
            "restored checkpoint %r: rounds=%d flows=%d windows=%d "
            "root=%s…", name, len(chain), len(state), len(windows),
            state.root.short())
        return True

    def _decode_checkpoint(self, blob: bytes
                           ) -> tuple[AggregationChain, CLogState,
                                      set[int], dict]:
        try:
            payload = decode(blob)
        except ReproError as exc:
            raise CheckpointError(
                f"checkpoint does not decode: {exc}") from exc
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint payload is not a dict")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version "
                f"{payload.get('version')!r} (expected "
                f"{CHECKPOINT_VERSION})")
        try:
            chain = AggregationChain()
            for wire in payload["chain"]:
                # append() re-validates round numbering and prev_root
                # linkage, so a spliced or reordered chain is rejected
                # here before any crypto runs.
                chain.append(ChainLink.from_wire(wire))
            state = CLogState()
            for wire in payload["entries"]:
                state.set_entry(CLogEntry.from_wire(wire))
            state.round = payload["state_round"]
            windows = set(payload["aggregated_windows"])
        except (ReproError, KeyError, TypeError) as exc:
            raise CheckpointError(
                f"malformed checkpoint: {exc}") from exc
        return chain, state, windows, payload

    def _verify_stream_section(self, section, state: CLogState):
        """Check a persisted fold frontier before resuming it.

        Nothing here is taken on faith either: every frontier receipt
        must re-verify against the delta/fold image ids, the chain of
        (root, size, depth) continuity must hold from the restored
        round state through every node, and the rebuilt mid-round work
        state must recompute the last node's committed root.  Returns
        the resume tuple, or ``None`` when there is nothing to resume
        (including a streamed checkpoint restored by a non-streaming
        service — the deltas stay pending and re-aggregate normally).
        """
        if section is None:
            return None
        if self._streamer is None:
            logger.warning(
                "checkpoint carries a streaming frontier but stream "
                "mode is off; dropping it (windows stay pending)")
            return None
        from ..stream.frontier import FrontierNode
        from ..zkvm import Receipt
        from .guest_programs import delta_aggregation_guest, fold_guest
        try:
            round_index = section["round"]
            stream_windows = list(section["windows"])
            record_count = section["record_count"]
            work = CLogState()
            for wire in section["entries"]:
                work.set_entry(CLogEntry.from_wire(wire))
            node_wires = section["nodes"]
        except (ReproError, KeyError, TypeError) as exc:
            raise CheckpointError(
                f"malformed streaming section: {exc}") from exc
        if round_index != state.round:
            raise CheckpointError(
                f"streaming section is for round {round_index} but the "
                f"restored state is at round {state.round}")
        if not node_wires:
            return None
        verifier = Verifier()
        nodes: list[FrontierNode] = []
        for wire in node_wires:
            try:
                receipt = Receipt.from_wire(wire["receipt"])
            except (ReproError, KeyError, TypeError) as exc:
                raise CheckpointError(
                    f"malformed frontier receipt: {exc}") from exc
            verified = False
            last_error: Exception | None = None
            for image_id in (delta_aggregation_guest.image_id,
                             fold_guest.image_id):
                try:
                    verifier.verify(receipt, image_id)
                    verified = True
                    break
                except ReproError as exc:
                    last_error = exc
            if not verified:
                raise CheckpointError(
                    f"frontier receipt failed verification against the "
                    f"delta and fold image ids: {last_error}"
                ) from last_error
            header = next(receipt.journal.values(), None)
            if not isinstance(header, dict) or "seq" not in header:
                raise CheckpointError(
                    "frontier receipt journal is not a streamed header")
            nodes.append(FrontierNode.from_wire(wire, header))
        expected = (state.root, len(state), state.depth)
        expected_seq = 0
        previous_height: int | None = None
        for node in nodes:
            header = node.header
            if header.get("round") != round_index:
                raise CheckpointError(
                    "frontier node proves a different round")
            if (header.get("prev_root"), header.get("prev_size"),
                    header.get("prev_depth")) != expected:
                raise CheckpointError(
                    "frontier nodes are not contiguous with the "
                    "restored round state")
            if header.get("seq", [None])[0] != expected_seq \
                    or node.seq_lo != expected_seq \
                    or node.seq_hi != header["seq"][1]:
                raise CheckpointError(
                    "frontier node sequence ranges do not abut")
            if previous_height is not None \
                    and node.height >= previous_height:
                raise CheckpointError(
                    "frontier node heights must strictly decrease")
            previous_height = node.height
            expected = (header["new_root"], header["size"],
                        header["depth"])
            expected_seq = header["seq"][1] + 1
        if nodes[-1].header["new_root"] != work.root \
                or nodes[-1].header["size"] != len(work):
            raise CheckpointError(
                f"restored mid-round entries recompute root "
                f"{work.root.short()}… but the frontier committed "
                f"{nodes[-1].header['new_root'].short()}… — streaming "
                f"section rejected")
        return (round_index, stream_windows, record_count, nodes, work)

    def _verify_snapshot(self, chain: AggregationChain,
                         state: CLogState) -> None:
        if len(chain) == 0:
            if len(state):
                raise CheckpointError(
                    "checkpoint holds entries but no proven round")
            return
        latest = chain.latest
        if state.root != latest.new_root:
            raise CheckpointError(
                f"restored entries recompute root "
                f"{state.root.short()}… but the chain committed "
                f"{latest.new_root.short()}… — snapshot rejected")
        if len(state) != latest.size:
            raise CheckpointError(
                f"restored state holds {len(state)} entries but round "
                f"{latest.round} committed {latest.size}")
        from .guest_programs import aggregation_guest, fold_guest
        from .rebuild import rebuild_aggregation_guest
        verifier = Verifier()
        last_error: Exception | None = None
        for image_id in (aggregation_guest.image_id,
                         rebuild_aggregation_guest.image_id,
                         fold_guest.image_id):
            try:
                verifier.verify(latest.receipt, image_id)
                return
            except ReproError as exc:
                last_error = exc
        raise CheckpointError(
            f"latest receipt failed verification against every trusted "
            f"aggregation image id: {last_error}") from last_error
