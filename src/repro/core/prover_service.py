"""The service provider's prover (Figure 1, left).

Owns the authoritative CLog state and the proof chain; pulls committed
router windows from the shared store, runs aggregation rounds, and
answers client queries with proofs.  Aggregation is decoupled from both
logging and queries (§1, §4): it reads only *already committed* windows
and can run off-path, at whatever cadence resources allow.
"""

from __future__ import annotations

import logging

from ..commitments import BulletinBoard
from ..errors import MissingCommitment, ProofError
from ..obs import names as obs_names
from ..obs import runtime as obs
from ..storage.backend import LogStore
from ..zkvm import ProveInfo, ProverOpts
from .aggregation import (
    AggregationResult,
    Aggregator,
    RouterWindowInput,
)
from .chain import AggregationChain, ChainLink
from .clog import CLogState
from .policy import DEFAULT_POLICY, AggregationPolicy
from .query_proof import QueryProver, QueryResponse

logger = logging.getLogger(__name__)


class ProverService:
    """Aggregates committed telemetry and answers verifiable queries."""

    def __init__(self, store: LogStore, bulletin: BulletinBoard,
                 policy: AggregationPolicy = DEFAULT_POLICY,
                 prover_opts: ProverOpts | None = None,
                 strategy: str = "update",
                 retain_history: bool = False) -> None:
        self.store = store
        self.bulletin = bulletin
        self.policy = policy
        self.state = CLogState()
        self.chain = AggregationChain()
        self.retain_history = retain_history
        self._history: dict[int, CLogState] = {}
        if strategy == "update":
            self._aggregator = Aggregator(policy, prover_opts)
        elif strategy == "rebuild":
            from .rebuild import RebuildAggregator
            self._aggregator = RebuildAggregator(policy, prover_opts)
        else:
            raise ProofError(
                f"unknown aggregation strategy {strategy!r}; "
                "expected 'update' or 'rebuild'")
        self.strategy = strategy
        self._query_prover = QueryProver(prover_opts)
        self._aggregated_windows: set[int] = set()
        self._query_cache: dict[tuple[str, int], QueryResponse] = {}
        self.last_prove_info: ProveInfo | None = None

    @property
    def aggregated_windows(self) -> frozenset[int]:
        """Window indices already consumed by a proven round."""
        return frozenset(self._aggregated_windows)

    def status(self) -> dict:
        """Operational snapshot (the wire health endpoint's body)."""
        return {
            "rounds": len(self.chain),
            "flows": len(self.state),
            "strategy": self.strategy,
            "aggregated_windows": sorted(self._aggregated_windows),
            "committed_windows": self.bulletin.windows(),
            "cached_queries": len(self._query_cache),
            "latest_root": (self.chain.latest.new_root.hex()
                            if len(self.chain) else None),
        }

    # -- aggregation ------------------------------------------------------------

    def gather_window(self, window_index: int) -> list[RouterWindowInput]:
        """Collect every router's committed blobs for one window.

        Routers with stored rows but no published commitment raise
        :class:`~repro.errors.MissingCommitment` — uncommitted data must
        never enter an aggregation round.
        """
        inputs = []
        for router_id in self.store.router_ids():
            if window_index not in self.store.window_indices(router_id):
                continue
            commitment = self.bulletin.get(router_id, window_index)
            blobs = tuple(self.store.window_blobs(router_id, window_index))
            inputs.append(RouterWindowInput(
                router_id=router_id,
                window_index=window_index,
                commitment=commitment.digest,
                blobs=blobs,
            ))
        if not inputs:
            raise MissingCommitment(
                f"no router has data for window {window_index}")
        return inputs

    def aggregate_window(self, window_index: int) -> AggregationResult:
        """Run one aggregation round over one committed window."""
        return self.aggregate_windows([window_index])

    def aggregate_windows(self,
                          window_indices: list[int]) -> AggregationResult:
        """Run one aggregation round over several windows at once."""
        inputs: list[RouterWindowInput] = []
        for window_index in sorted(window_indices):
            if window_index in self._aggregated_windows:
                raise ProofError(
                    f"window {window_index} was already aggregated")
            inputs.extend(self.gather_window(window_index))
        prev_receipt = self.chain.latest_receipt if len(self.chain) \
            else None
        result = self._aggregator.aggregate(self.state, inputs,
                                            prev_receipt)
        # Commit the round only after the proof exists.
        self.state = result.new_state
        if self.retain_history:
            self._history[result.round] = result.new_state
        self.chain.append(ChainLink(
            round=result.round,
            receipt=result.receipt,
            new_root=result.new_root,
            size=len(result.new_state),
            record_count=result.record_count,
        ))
        self._aggregated_windows.update(window_indices)
        self.last_prove_info = result.info
        registry = obs.registry()
        registry.gauge(obs_names.SERVICE_FLOWS).set(
            len(result.new_state))
        registry.gauge(obs_names.SERVICE_ROUNDS).set(len(self.chain))
        logger.info(
            "round %d proven: windows=%s records=%d flows=%d root=%s…",
            result.round, sorted(window_indices), result.record_count,
            len(result.new_state), result.new_root.short())
        return result

    def aggregate_all_committed(self) -> list[AggregationResult]:
        """Aggregate every committed-but-unaggregated window, in order."""
        results = []
        for window_index in self.bulletin.windows():
            if window_index not in self._aggregated_windows:
                results.append(self.aggregate_window(window_index))
        return results

    # -- queries -------------------------------------------------------------------

    def answer_query(self, sql: str,
                     round_index: int | None = None,
                     use_cache: bool = True) -> QueryResponse:
        """Prove ``sql`` over an aggregation state (§4.2).

        By default queries run against the latest round.  With
        ``retain_history=True`` the service keeps every round's state,
        and ``round_index`` proves the query against that *historical*
        root — a client auditing round ``n`` verifies the response
        against round ``n``'s receipt in the chain.

        Proving is deterministic, so identical (sql, round) pairs yield
        bit-identical receipts — the service caches and replays them
        unless ``use_cache=False``.
        """
        effective_round = round_index if round_index is not None \
            else (len(self.chain) - 1)
        cache_key = (sql, effective_round)
        if use_cache:
            cached = self._query_cache.get(cache_key)
            if cached is not None:
                obs.registry().counter(obs_names.SERVICE_QUERY_CACHE,
                                       ("result",)).inc(result="hit")
                return cached
        obs.registry().counter(obs_names.SERVICE_QUERY_CACHE,
                               ("result",)).inc(result="miss")
        if round_index is None:
            state, receipt = self.state, self.chain.latest.receipt
        else:
            historical = self._history.get(round_index)
            if historical is None:
                raise ProofError(
                    f"no retained state for round {round_index}; "
                    "construct the service with retain_history=True")
            state, receipt = historical, self.chain[round_index].receipt
        response, info = self._query_prover.prove_query(
            sql, state, receipt)
        self.last_prove_info = info
        self._query_cache[cache_key] = response
        logger.info(
            "query proven: %r round=%d matched=%d/%d cycles=%d",
            sql, response.round, response.matched, response.scanned,
            info.stats.total_cycles)
        return response

    def estimate_query(self, sql: str):
        """Predict the proving cost of ``sql`` without proving it
        (§7 "Query complexity" — admission control / pricing)."""
        from .planner import estimate_query_cost
        return estimate_query_cost(self, sql)
