"""NetFlow v9 export packets (RFC 3954 §4).

A packet is a 20-byte header followed by flowsets.  Flowset id 0 carries
templates; ids ≥ 256 carry data records parsed with the matching
template.  Flowsets are padded to 4-byte boundaries, as the RFC requires.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable

from ..errors import SerializationError

NETFLOW_V9_VERSION = 9
HEADER_LEN = 20
TEMPLATE_FLOWSET_ID = 0
MIN_DATA_FLOWSET_ID = 256


@dataclass(frozen=True)
class PacketHeader:
    """NetFlow v9 packet header."""

    count: int
    sys_uptime_ms: int
    unix_secs: int
    sequence: int
    source_id: int

    def encode(self) -> bytes:
        return struct.pack(
            ">HHIIII",
            NETFLOW_V9_VERSION,
            self.count & 0xFFFF,
            self.sys_uptime_ms & 0xFFFFFFFF,
            self.unix_secs & 0xFFFFFFFF,
            self.sequence & 0xFFFFFFFF,
            self.source_id & 0xFFFFFFFF,
        )

    @classmethod
    def decode(cls, data: bytes) -> "PacketHeader":
        if len(data) < HEADER_LEN:
            raise SerializationError("packet shorter than v9 header")
        version, count, uptime, secs, seq, source = \
            struct.unpack_from(">HHIIII", data, 0)
        if version != NETFLOW_V9_VERSION:
            raise SerializationError(
                f"not a NetFlow v9 packet (version {version})")
        return cls(count=count, sys_uptime_ms=uptime, unix_secs=secs,
                   sequence=seq, source_id=source)


@dataclass(frozen=True)
class FlowSet:
    """One flowset: id plus body (template records or data records)."""

    flowset_id: int
    body: bytes

    @property
    def is_template(self) -> bool:
        return self.flowset_id == TEMPLATE_FLOWSET_ID

    @property
    def is_data(self) -> bool:
        return self.flowset_id >= MIN_DATA_FLOWSET_ID


def encode_packet(header: PacketHeader,
                  flowsets: Iterable[FlowSet]) -> bytes:
    """Serialize header + flowsets with 4-byte alignment padding."""
    out = bytearray(header.encode())
    for fs in flowsets:
        padded_len = 4 + len(fs.body)
        padding = (-padded_len) % 4
        out.extend(struct.pack(">HH", fs.flowset_id, padded_len + padding))
        out.extend(fs.body)
        out.extend(b"\x00" * padding)
    return bytes(out)


def decode_packet(data: bytes) -> tuple[PacketHeader, list[FlowSet]]:
    """Parse a packet into its header and raw flowsets."""
    header = PacketHeader.decode(data)
    flowsets: list[FlowSet] = []
    pos = HEADER_LEN
    while pos < len(data):
        if pos + 4 > len(data):
            raise SerializationError("truncated flowset header")
        flowset_id, length = struct.unpack_from(">HH", data, pos)
        if length < 4:
            raise SerializationError(f"flowset length {length} too small")
        if pos + length > len(data):
            raise SerializationError("flowset extends past packet end")
        flowsets.append(FlowSet(flowset_id=flowset_id,
                                body=data[pos + 4:pos + length]))
        pos += length
    return header, flowsets
