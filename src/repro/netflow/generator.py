"""Deterministic traffic generation.

Flows are drawn from an application mix (video, web, gaming, P2P, DNS)
with Zipf-like heavy-tailed sizes; each flow is assigned a content
provider (a source prefix) and a client, routed across the topology, and
*observed* by every router on its path — producing one
:class:`~repro.netflow.records.NetFlowRecord` per (router, flow), with
loss accumulating hop by hop and RTT/jitter derived from path latency.

A ``throttle`` map lets experiments inject differentiated treatment for
specific providers (extra latency and loss), which is the ground truth
the network-neutrality audit example detects.
"""

from __future__ import annotations

import hashlib
import ipaddress
import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .records import FlowKey, NetFlowRecord, PROTO_TCP, PROTO_UDP
from .topology import NetworkTopology


@dataclass(frozen=True)
class AppProfile:
    """One application class in the traffic mix."""

    name: str
    protocol: int
    server_ports: tuple[int, ...]
    mean_packets: int
    mean_packet_bytes: int
    weight: float


DEFAULT_APP_MIX: tuple[AppProfile, ...] = (
    AppProfile("video", PROTO_TCP, (443,), 4_000, 1_200, 0.35),
    AppProfile("web", PROTO_TCP, (80, 443), 40, 900, 0.30),
    AppProfile("gaming", PROTO_UDP, (3074, 27015), 600, 150, 0.15),
    AppProfile("p2p", PROTO_TCP, (6881, 6889), 2_000, 1_000, 0.10),
    AppProfile("dns", PROTO_UDP, (53,), 2, 80, 0.10),
)

DEFAULT_PROVIDERS: dict[str, str] = {
    "streamco": "10.1.0.0/16",
    "vidnet": "10.2.0.0/16",
    "cloudcdn": "10.3.0.0/16",
}

CLIENT_PREFIX = "172.16.0.0/12"


@dataclass(frozen=True)
class ThrottleSpec:
    """Differentiated treatment applied to one provider's traffic."""

    extra_latency_us: int = 0
    extra_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.extra_loss_rate < 1.0:
            raise ConfigurationError("extra_loss_rate must be in [0, 1)")


@dataclass
class TrafficConfig:
    """Knobs for the traffic generator."""

    seed: int = 7
    apps: tuple[AppProfile, ...] = DEFAULT_APP_MIX
    providers: dict[str, str] = field(
        default_factory=lambda: dict(DEFAULT_PROVIDERS))
    client_prefix: str = CLIENT_PREFIX
    zipf_alpha: float = 1.2
    mean_flow_duration_ms: int = 2_000
    throttle: dict[str, ThrottleSpec] = field(default_factory=dict)


@dataclass(frozen=True)
class SimFlow:
    """A generated flow before observation."""

    key: FlowKey
    app: str
    provider: str
    path: tuple[str, ...]
    packets: int
    octets: int
    start_ms: int
    end_ms: int


class TrafficGenerator:
    """Deterministic flow and record generation over a topology."""

    def __init__(self, topology: NetworkTopology,
                 config: TrafficConfig | None = None) -> None:
        self.topology = topology
        self.config = config or TrafficConfig()
        if not self.config.providers:
            raise ConfigurationError("need at least one provider")
        self._rng = random.Random(self.config.seed)
        self._providers = sorted(self.config.providers)
        self._provider_nets = {
            name: ipaddress.IPv4Network(prefix)
            for name, prefix in self.config.providers.items()
        }
        self._client_net = ipaddress.IPv4Network(self.config.client_prefix)
        self._app_weights = [a.weight for a in self.config.apps]
        self._flow_serial = 0

    # -- flows -------------------------------------------------------------------

    def generate_flow(self, now_ms: int) -> SimFlow:
        """Draw one flow from the configured mix."""
        rng = self._rng
        app = rng.choices(self.config.apps, weights=self._app_weights)[0]
        provider = rng.choice(self._providers)
        server = self._random_addr(self._provider_nets[provider])
        client = self._random_addr(self._client_net)
        router_ids = self.topology.router_ids()
        ingress = rng.choice(router_ids)
        egress = rng.choice(router_ids)
        path = tuple(self.topology.path(ingress, egress))
        packets = max(1, int(self._zipf_scale() * app.mean_packets))
        octets = packets * max(
            40, int(rng.gauss(app.mean_packet_bytes,
                              app.mean_packet_bytes * 0.1)))
        duration = max(1, int(rng.expovariate(
            1.0 / self.config.mean_flow_duration_ms)))
        self._flow_serial += 1
        key = FlowKey(
            src_addr=server,
            dst_addr=client,
            src_port=rng.choice(app.server_ports),
            dst_port=rng.randint(32768, 60999),
            protocol=app.protocol,
        )
        return SimFlow(
            key=key, app=app.name, provider=provider, path=path,
            packets=packets, octets=octets,
            start_ms=now_ms, end_ms=now_ms + duration,
        )

    def generate_flows(self, count: int, now_ms: int = 0) -> list[SimFlow]:
        return [self.generate_flow(now_ms) for _ in range(count)]

    # -- observation ---------------------------------------------------------------

    def observe(self, flow: SimFlow) -> list[NetFlowRecord]:
        """Per-router records for one flow, with hop-by-hop loss.

        Router ``i`` on the path offers the packets that survived links
        ``0..i-1``; its ``lost_packets`` counter is what it saw offered
        but not delivered downstream — so summing loss across routers
        reconstructs path loss, the aggregation the paper motivates.
        """
        # Per-flow RNG seeded through sha-256 (bytes/str __hash__ is
        # randomized per process, which would break cross-run determinism).
        seed_material = (flow.key.pack()
                         + flow.start_ms.to_bytes(8, "big")
                         + self.config.seed.to_bytes(8, "big", signed=True))
        rng = random.Random(int.from_bytes(
            hashlib.sha256(seed_material).digest()[:8], "big"))
        throttle = self.config.throttle.get(flow.provider, _NO_THROTTLE)
        path = flow.path
        base_rtt_us = 2 * self.topology.path_latency_us(list(path)) \
            + throttle.extra_latency_us
        jitter_budget_us = self.topology.path_jitter_us(list(path))
        records: list[NetFlowRecord] = []
        arriving = flow.packets
        mean_size = flow.octets / flow.packets if flow.packets else 0
        for position, router_id in enumerate(path):
            if position < len(path) - 1:
                link = self.topology.link(path[position],
                                          path[position + 1])
                loss = min(0.999,
                           link.loss_rate + throttle.extra_loss_rate)
            else:
                loss = 0.0
            lost_here = _stochastic_round(arriving * loss, rng)
            lost_here = min(lost_here, arriving)
            rtt_us = max(0, int(rng.gauss(base_rtt_us,
                                          max(jitter_budget_us, 1) / 2)))
            jitter_us = max(0, int(abs(rng.gauss(0, max(
                jitter_budget_us, 1)))))
            records.append(NetFlowRecord(
                router_id=router_id,
                key=flow.key,
                packets=arriving,
                octets=int(arriving * mean_size),
                first_switched_ms=flow.start_ms,
                last_switched_ms=flow.end_ms,
                tcp_flags=0x1B if flow.key.protocol == PROTO_TCP else 0,
                input_if=1 if position == 0 else 2,
                output_if=3,
                next_hop=(self.topology.router(path[position + 1]).loopback
                          if position < len(path) - 1 else "0.0.0.0"),
                hop_count=position + 1,
                lost_packets=lost_here,
                rtt_us=rtt_us,
                jitter_us=jitter_us,
                extra={"app": flow.app, "provider": flow.provider},
            ))
            arriving -= lost_here
            if arriving <= 0:
                break
        return records

    def generate_records(self, flow_count: int, now_ms: int = 0
                         ) -> dict[str, list[NetFlowRecord]]:
        """Flows → per-router record batches (what each vantage logs)."""
        per_router: dict[str, list[NetFlowRecord]] = {
            r: [] for r in self.topology.router_ids()}
        for flow in self.generate_flows(flow_count, now_ms):
            for record in self.observe(flow):
                per_router[record.router_id].append(record)
        return per_router

    # -- internals ----------------------------------------------------------------------

    def _random_addr(self, net: ipaddress.IPv4Network) -> str:
        offset = self._rng.randrange(1, net.num_addresses - 1)
        return str(net.network_address + offset)

    def _zipf_scale(self) -> float:
        """Heavy-tailed size multiplier via inverse-CDF Pareto sampling."""
        u = self._rng.random()
        alpha = self.config.zipf_alpha
        return (1.0 - u) ** (-1.0 / alpha) / 2.0


_NO_THROTTLE = ThrottleSpec()


def _stochastic_round(value: float, rng: random.Random) -> int:
    """Round to int, carrying the fraction as a probability."""
    base = int(value)
    frac = value - base
    return base + (1 if rng.random() < frac else 0)
