"""NetFlow v9 exporter endpoint.

One exporter per router: it batches records into data flowsets, refreshes
its template periodically (collectors are stateless across restarts, so
v9 exporters re-announce templates every N packets), and maintains the
per-source sequence number collectors use to detect export loss.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ConfigurationError
from .packet import FlowSet, PacketHeader, TEMPLATE_FLOWSET_ID, encode_packet
from .records import NetFlowRecord
from .template import STANDARD_TEMPLATE, Template

DEFAULT_TEMPLATE_REFRESH = 20
DEFAULT_MAX_RECORDS_PER_PACKET = 30


class NetFlowExporter:
    """Turns record batches into v9 export packets."""

    def __init__(self, source_id: int,
                 template: Template = STANDARD_TEMPLATE,
                 template_refresh: int = DEFAULT_TEMPLATE_REFRESH,
                 max_records_per_packet: int =
                 DEFAULT_MAX_RECORDS_PER_PACKET) -> None:
        if template_refresh < 1:
            raise ConfigurationError("template_refresh must be >= 1")
        if max_records_per_packet < 1:
            raise ConfigurationError("max_records_per_packet must be >= 1")
        self.source_id = source_id
        self.template = template
        self.template_refresh = template_refresh
        self.max_records_per_packet = max_records_per_packet
        self._sequence = 0
        self._packets_since_template = template_refresh  # announce on first

    @property
    def sequence(self) -> int:
        return self._sequence

    def export(self, records: Sequence[NetFlowRecord], *,
               now_ms: int = 0) -> list[bytes]:
        """Encode ``records`` into one or more v9 packets."""
        packets: list[bytes] = []
        for batch in _chunks(records, self.max_records_per_packet):
            packets.append(self._encode_one(batch, now_ms))
        return packets

    def _encode_one(self, batch: Sequence[NetFlowRecord],
                    now_ms: int) -> bytes:
        flowsets: list[FlowSet] = []
        count = 0
        if self._packets_since_template >= self.template_refresh:
            flowsets.append(FlowSet(flowset_id=TEMPLATE_FLOWSET_ID,
                                    body=self.template.encode()))
            count += 1
            self._packets_since_template = 0
        self._packets_since_template += 1
        if batch:
            body = b"".join(self.template.encode_record(r)
                            for r in batch)
            flowsets.append(FlowSet(flowset_id=self.template.template_id,
                                    body=body))
            count += len(batch)
        header = PacketHeader(
            count=count,
            sys_uptime_ms=now_ms,
            unix_secs=now_ms // 1000,
            sequence=self._sequence,
            source_id=self.source_id,
        )
        self._sequence += 1
        return encode_packet(header, flowsets)


def _chunks(items: Sequence[NetFlowRecord],
            size: int) -> Iterable[Sequence[NetFlowRecord]]:
    if not items:
        yield ()
        return
    for start in range(0, len(items), size):
        yield items[start:start + size]
