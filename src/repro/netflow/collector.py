"""NetFlow v9 collector endpoint.

The collector keeps a per-(source_id, template_id) template cache, parses
data flowsets against it, buffers data that arrives before its template
(v9 allows that ordering across packets), and tracks export-sequence gaps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..errors import SerializationError
from .packet import decode_packet
from .records import NetFlowRecord
from .template import Template


@dataclass
class CollectorStats:
    """Operational counters exposed by the collector."""

    packets: int = 0
    records: int = 0
    templates_learned: int = 0
    buffered_flowsets: int = 0
    sequence_gaps: int = 0
    parse_errors: int = 0


@dataclass
class _PendingData:
    source_id: int
    template_id: int
    body: bytes
    router_id: str
    sys_uptime_ms: int


@dataclass
class _SourceState:
    templates: dict[int, Template] = field(default_factory=dict)
    last_sequence: int | None = None


class NetFlowCollector:
    """Stateful v9 decoder producing :class:`NetFlowRecord` streams."""

    def __init__(self) -> None:
        self._sources: dict[int, _SourceState] = defaultdict(_SourceState)
        self._pending: list[_PendingData] = []
        self.stats = CollectorStats()

    def ingest(self, packet: bytes, *,
               router_id: str = "") -> list[NetFlowRecord]:
        """Decode one packet; returns the records parseable *now*.

        Data flowsets whose template is still unknown are buffered and
        returned by a later ingest call once the template arrives.
        """
        header, flowsets = decode_packet(packet)
        self.stats.packets += 1
        source = self._sources[header.source_id]
        if source.last_sequence is not None \
                and header.sequence != source.last_sequence + 1:
            self.stats.sequence_gaps += 1
        source.last_sequence = header.sequence
        out: list[NetFlowRecord] = []
        for fs in flowsets:
            if fs.is_template:
                for template in Template.decode_all(fs.body):
                    if template.template_id not in source.templates:
                        self.stats.templates_learned += 1
                    source.templates[template.template_id] = template
                out.extend(self._drain_pending(header.source_id))
            elif fs.is_data:
                records = self._parse_data(
                    source, header.source_id, fs.flowset_id, fs.body,
                    router_id, header.sys_uptime_ms)
                out.extend(records)
        self.stats.records += len(out)
        return out

    # -- internals ------------------------------------------------------------

    def _parse_data(self, source: _SourceState, source_id: int,
                    template_id: int, body: bytes, router_id: str,
                    sys_uptime_ms: int) -> list[NetFlowRecord]:
        template = source.templates.get(template_id)
        if template is None:
            self._pending.append(_PendingData(
                source_id=source_id, template_id=template_id, body=body,
                router_id=router_id, sys_uptime_ms=sys_uptime_ms))
            self.stats.buffered_flowsets += 1
            return []
        return self._decode_body(template, body, router_id, sys_uptime_ms)

    def _decode_body(self, template: Template, body: bytes,
                     router_id: str,
                     sys_uptime_ms: int) -> list[NetFlowRecord]:
        records: list[NetFlowRecord] = []
        rec_len = template.record_length
        usable = len(body) - (len(body) % rec_len) if rec_len else 0
        # Trailing bytes < one record are alignment padding.
        for pos in range(0, usable, rec_len):
            try:
                records.append(template.decode_record(
                    body[pos:pos + rec_len], router_id=router_id,
                    sys_uptime_ms=sys_uptime_ms))
            except SerializationError:
                self.stats.parse_errors += 1
        return records

    def _drain_pending(self, source_id: int) -> list[NetFlowRecord]:
        source = self._sources[source_id]
        still_pending: list[_PendingData] = []
        drained: list[NetFlowRecord] = []
        for pending in self._pending:
            if pending.source_id != source_id:
                still_pending.append(pending)
                continue
            template = source.templates.get(pending.template_id)
            if template is None:
                still_pending.append(pending)
                continue
            drained.extend(self._decode_body(
                template, pending.body, pending.router_id,
                pending.sys_uptime_ms))
        self._pending = still_pending
        return drained
