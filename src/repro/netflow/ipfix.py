"""IPFIX (RFC 7011) transport — NetFlow v9's IETF successor.

Message layout differs from v9 in the header (16 bytes, with a total
*length* field instead of a record count) and in set numbering
(template set = 2, data sets ≥ 256).  Field specifiers add the
enterprise bit: information elements ≥ 0x8000 carry a 4-byte Private
Enterprise Number.  Our vendor metrics (hop count, loss, RTT, jitter —
ids 40001+ in the internal registry) are exported as enterprise
elements under a private PEN.

Templates and record codecs are shared with the v9 implementation
(:mod:`repro.netflow.template`); only the framing differs — which is
exactly how real exporters are built.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import ConfigurationError, SerializationError
from .records import NetFlowRecord
from .template import FieldType, STANDARD_TEMPLATE, Template, \
    TemplateField

IPFIX_VERSION = 10
HEADER_LEN = 16
TEMPLATE_SET_ID = 2
OPTIONS_TEMPLATE_SET_ID = 3
MIN_DATA_SET_ID = 256

# Our Private Enterprise Number for the vendor metrics.
PRIVATE_PEN = 4242
_ENTERPRISE_BASE = 40_000
_ENTERPRISE_BIT = 0x8000


@dataclass(frozen=True)
class IpfixHeader:
    """RFC 7011 §3.1 message header."""

    export_time: int
    sequence: int
    observation_domain: int

    def encode(self, message_length: int) -> bytes:
        return struct.pack(
            ">HHIII", IPFIX_VERSION, message_length,
            self.export_time & 0xFFFFFFFF,
            self.sequence & 0xFFFFFFFF,
            self.observation_domain & 0xFFFFFFFF)

    @classmethod
    def decode(cls, data: bytes) -> tuple["IpfixHeader", int]:
        if len(data) < HEADER_LEN:
            raise SerializationError("message shorter than IPFIX header")
        version, length, export_time, sequence, domain = \
            struct.unpack_from(">HHIII", data, 0)
        if version != IPFIX_VERSION:
            raise SerializationError(
                f"not an IPFIX message (version {version})")
        if length > len(data):
            raise SerializationError(
                "IPFIX length field exceeds available bytes")
        return cls(export_time=export_time, sequence=sequence,
                   observation_domain=domain), length


def _encode_field_specifier(field: TemplateField) -> bytes:
    ftype = int(field.field_type)
    if ftype >= _ENTERPRISE_BASE:
        element = (ftype - _ENTERPRISE_BASE) | _ENTERPRISE_BIT
        return struct.pack(">HHI", element, field.length, PRIVATE_PEN)
    return struct.pack(">HH", ftype, field.length)


def _decode_field_specifier(data: bytes, pos: int
                            ) -> tuple[TemplateField, int]:
    if pos + 4 > len(data):
        raise SerializationError("truncated field specifier")
    element, length = struct.unpack_from(">HH", data, pos)
    pos += 4
    if element & _ENTERPRISE_BIT:
        if pos + 4 > len(data):
            raise SerializationError("truncated enterprise number")
        (pen,) = struct.unpack_from(">I", data, pos)
        pos += 4
        if pen != PRIVATE_PEN:
            raise SerializationError(
                f"unknown private enterprise number {pen}")
        ftype = (element & ~_ENTERPRISE_BIT) + _ENTERPRISE_BASE
    else:
        ftype = element
    try:
        return TemplateField(FieldType(ftype), length), pos
    except ValueError as exc:
        raise SerializationError(
            f"unknown information element {ftype}") from exc


def encode_template_set(template: Template) -> bytes:
    """A template set holding one template record."""
    body = bytearray(struct.pack(">HH", template.template_id,
                                 len(template.fields)))
    for field in template.fields:
        body.extend(_encode_field_specifier(field))
    return _set_bytes(TEMPLATE_SET_ID, bytes(body))


def decode_template_set(body: bytes) -> list[Template]:
    templates = []
    pos = 0
    while pos + 4 <= len(body):
        template_id, count = struct.unpack_from(">HH", body, pos)
        if template_id == 0:
            break  # padding
        pos += 4
        fields = []
        for _ in range(count):
            field, pos = _decode_field_specifier(body, pos)
            fields.append(field)
        templates.append(Template(template_id=template_id,
                                  fields=tuple(fields)))
    return templates


def _set_bytes(set_id: int, body: bytes) -> bytes:
    length = 4 + len(body)
    padding = (-length) % 4
    return struct.pack(">HH", set_id, length + padding) + body \
        + b"\x00" * padding


def encode_message(header: IpfixHeader, templates: list[Template],
                   records: list[NetFlowRecord],
                   template: Template = STANDARD_TEMPLATE) -> bytes:
    """One IPFIX message: optional template set + one data set."""
    sets = bytearray()
    for announced in templates:
        sets.extend(encode_template_set(announced))
    if records:
        body = b"".join(template.encode_record(r) for r in records)
        sets.extend(_set_bytes(template.template_id, body))
    message_length = HEADER_LEN + len(sets)
    return header.encode(message_length) + bytes(sets)


def decode_message(data: bytes) -> tuple[IpfixHeader,
                                         list[tuple[int, bytes]]]:
    """Header plus raw (set_id, body) pairs."""
    header, length = IpfixHeader.decode(data)
    sets: list[tuple[int, bytes]] = []
    pos = HEADER_LEN
    while pos < length:
        if pos + 4 > length:
            raise SerializationError("truncated set header")
        set_id, set_length = struct.unpack_from(">HH", data, pos)
        if set_length < 4:
            raise SerializationError(f"set length {set_length} too "
                                     "small")
        if pos + set_length > length:
            raise SerializationError("set extends past message end")
        sets.append((set_id, data[pos + 4:pos + set_length]))
        pos += set_length
    return header, sets


class IpfixExporter:
    """Mirror of :class:`~repro.netflow.export.NetFlowExporter` over
    IPFIX framing.  The IPFIX sequence number counts data *records*
    (not messages) per RFC 7011 §3.1."""

    def __init__(self, observation_domain: int,
                 template: Template = STANDARD_TEMPLATE,
                 template_refresh: int = 20,
                 max_records_per_message: int = 30) -> None:
        if template_refresh < 1 or max_records_per_message < 1:
            raise ConfigurationError("refresh/max must be >= 1")
        self.observation_domain = observation_domain
        self.template = template
        self.template_refresh = template_refresh
        self.max_records_per_message = max_records_per_message
        self._records_sent = 0
        self._messages_since_template = template_refresh

    @property
    def records_sent(self) -> int:
        return self._records_sent

    def export(self, records: list[NetFlowRecord], *,
               export_time: int = 0) -> list[bytes]:
        messages = []
        batches = [records[i:i + self.max_records_per_message]
                   for i in range(0, max(len(records), 1),
                                  self.max_records_per_message)]
        for batch in batches:
            templates = []
            if self._messages_since_template >= self.template_refresh:
                templates.append(self.template)
                self._messages_since_template = 0
            self._messages_since_template += 1
            header = IpfixHeader(
                export_time=export_time,
                sequence=self._records_sent,
                observation_domain=self.observation_domain)
            messages.append(encode_message(header, templates,
                                           list(batch), self.template))
            self._records_sent += len(batch)
        return messages


class IpfixCollector:
    """Stateful IPFIX decoder (per-domain template cache)."""

    def __init__(self) -> None:
        self._templates: dict[tuple[int, int], Template] = {}
        self.messages = 0
        self.records = 0
        self.sequence_gaps = 0
        self._expected_sequence: dict[int, int] = {}

    def ingest(self, message: bytes, *,
               router_id: str = "") -> list[NetFlowRecord]:
        header, sets = decode_message(message)
        self.messages += 1
        domain = header.observation_domain
        expected = self._expected_sequence.get(domain)
        if expected is not None and header.sequence != expected:
            self.sequence_gaps += 1
        out: list[NetFlowRecord] = []
        for set_id, body in sets:
            if set_id == TEMPLATE_SET_ID:
                for template in decode_template_set(body):
                    self._templates[(domain, template.template_id)] = \
                        template
            elif set_id >= MIN_DATA_SET_ID:
                template = self._templates.get((domain, set_id))
                if template is None:
                    continue  # no template yet; IPFIX drops these
                record_length = template.record_length
                usable = len(body) - (len(body) % record_length)
                for pos in range(0, usable, record_length):
                    out.append(template.decode_record(
                        body[pos:pos + record_length],
                        router_id=router_id,
                        sys_uptime_ms=0))
        self.records += len(out)
        self._expected_sequence[domain] = header.sequence + len(out)
        return out
