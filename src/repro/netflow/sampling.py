"""Sampled NetFlow (packet sampling with inverse-probability estimation).

Production routers rarely account every packet: *sampled NetFlow*
inspects 1-in-N packets and scales counters back up at analysis time.
Sampling interacts with verifiability in an interesting way the paper
leaves implicit: the commitment covers the *sampled* records (what the
router actually produced), and the scale-up factor becomes part of the
query semantics — so we model it explicitly.

:func:`sample_record` produces the record a 1-in-N sampling router
would have emitted (deterministic given the seed, as everything
committed must be); :func:`estimate_record` inverts the sampling for
analysis; :class:`SamplingEstimator` quantifies the relative error
introduced at a given rate, which the tests bound.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..errors import ConfigurationError
from .records import NetFlowRecord


def _sampling_rng(record: NetFlowRecord, rate: int,
                  seed: int) -> random.Random:
    material = (record.key.pack()
                + record.first_switched_ms.to_bytes(8, "big")
                + record.router_id.encode("utf-8")
                + rate.to_bytes(4, "big")
                + seed.to_bytes(8, "big", signed=True))
    return random.Random(int.from_bytes(
        hashlib.sha256(material).digest()[:8], "big"))


def _binomial(n: int, p: float, rng: random.Random) -> int:
    """Deterministic binomial draw; normal approximation for large n."""
    if n <= 0 or p <= 0:
        return 0
    if p >= 1:
        return n
    if n <= 64:
        return sum(rng.random() < p for _ in range(n))
    mean = n * p
    stdev = (n * p * (1 - p)) ** 0.5
    draw = int(round(rng.gauss(mean, stdev)))
    return max(0, min(n, draw))


def sample_record(record: NetFlowRecord, rate: int,
                  seed: int = 0) -> NetFlowRecord | None:
    """The record a 1-in-``rate`` sampling router emits, or ``None``
    if no packet of the flow was sampled at all (short flows vanish —
    the classic sampled-NetFlow visibility loss)."""
    if rate < 1:
        raise ConfigurationError(f"sampling rate {rate} must be >= 1")
    if rate == 1:
        return record
    rng = _sampling_rng(record, rate, seed)
    sampled_packets = _binomial(record.packets, 1.0 / rate, rng)
    if sampled_packets == 0:
        return None
    mean_size = record.octets / record.packets if record.packets else 0
    sampled_lost = _binomial(record.lost_packets, 1.0 / rate, rng)
    return record.with_updates(
        packets=sampled_packets,
        octets=int(sampled_packets * mean_size),
        lost_packets=sampled_lost,
    )


def estimate_record(sampled: NetFlowRecord, rate: int) -> NetFlowRecord:
    """Inverse-probability (Horvitz–Thompson) scale-up."""
    if rate < 1:
        raise ConfigurationError(f"sampling rate {rate} must be >= 1")
    if rate == 1:
        return sampled
    return sampled.with_updates(
        packets=sampled.packets * rate,
        octets=sampled.octets * rate,
        lost_packets=sampled.lost_packets * rate,
    )


@dataclass(frozen=True)
class SamplingError:
    """Aggregate error of a sampled view vs ground truth."""

    true_packets: int
    estimated_packets: int
    flows_total: int
    flows_visible: int

    @property
    def packet_relative_error(self) -> float:
        if self.true_packets == 0:
            return 0.0
        return abs(self.estimated_packets - self.true_packets) \
            / self.true_packets

    @property
    def flow_visibility(self) -> float:
        if self.flows_total == 0:
            return 1.0
        return self.flows_visible / self.flows_total


class SamplingEstimator:
    """Measures what a sampling rate does to a record population."""

    def __init__(self, rate: int, seed: int = 0) -> None:
        if rate < 1:
            raise ConfigurationError(f"sampling rate {rate} must be "
                                     ">= 1")
        self.rate = rate
        self.seed = seed

    def sample_all(self, records: list[NetFlowRecord]
                   ) -> list[NetFlowRecord]:
        sampled = []
        for record in records:
            out = sample_record(record, self.rate, self.seed)
            if out is not None:
                sampled.append(out)
        return sampled

    def evaluate(self, records: list[NetFlowRecord]) -> SamplingError:
        sampled = self.sample_all(records)
        estimated = sum(estimate_record(r, self.rate).packets
                        for r in sampled)
        return SamplingError(
            true_packets=sum(r.packets for r in records),
            estimated_packets=estimated,
            flows_total=len(records),
            flows_visible=len(sampled),
        )
