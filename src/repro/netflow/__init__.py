"""NetFlow telemetry substrate.

The paper evaluates against "a custom-built NetFlow simulator that
emulates a simplified network topology setting on a single machine" (§6):
4 routers generating NetFlow logs in parallel threads into a shared SQL
backend, each committing a hash of its log window every 5 seconds.

This package provides all of that plus a faithful NetFlow v9 wire format:

* :mod:`~repro.netflow.records` — flow keys and records (RLogs);
* :mod:`~repro.netflow.template` / :mod:`~repro.netflow.packet` — the
  NetFlow v9 export packet format (RFC 3954 style templates + flowsets);
* :mod:`~repro.netflow.export` / :mod:`~repro.netflow.collector` —
  exporter and collector endpoints;
* :mod:`~repro.netflow.topology` — networkx-backed router topologies;
* :mod:`~repro.netflow.generator` — deterministic traffic generation
  (Zipf flow sizes, application mix, per-link loss/latency);
* :mod:`~repro.netflow.simulator` — the multi-router, threaded
  simulation harness used by the evaluation.
"""

from .clock import SimClock, WallClock
from .collector import NetFlowCollector
from .export import NetFlowExporter
from .generator import TrafficConfig, TrafficGenerator
from .records import FlowKey, NetFlowRecord
from .simulator import NetFlowSimulator, SimulatorConfig
from .topology import NetworkTopology, RouterInfo

__all__ = [
    "FlowKey",
    "NetFlowCollector",
    "NetFlowExporter",
    "NetFlowRecord",
    "NetFlowSimulator",
    "NetworkTopology",
    "RouterInfo",
    "SimClock",
    "SimulatorConfig",
    "TrafficConfig",
    "TrafficGenerator",
    "WallClock",
]
