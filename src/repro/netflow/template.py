"""NetFlow v9 templates (RFC 3954 §5).

Version 9 is template-based: an exporter first announces a *template* —
an ordered list of (field type, length) pairs — and then ships data
flowsets that the collector can only parse with that template.  We
implement the standard field-type registry (the subset our records carry)
plus four vendor-extension fields for the performance metrics the paper's
scenarios query (hop count, loss, RTT, jitter).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Iterator

from ..errors import SerializationError
from .records import FlowKey, NetFlowRecord


class FieldType(enum.IntEnum):
    """NetFlow v9 field types (IANA numbers; 40000+ are our extensions)."""

    IN_BYTES = 1
    IN_PKTS = 2
    PROTOCOL = 4
    TCP_FLAGS = 6
    L4_SRC_PORT = 7
    IPV4_SRC_ADDR = 8
    INPUT_SNMP = 10
    L4_DST_PORT = 11
    IPV4_DST_ADDR = 12
    OUTPUT_SNMP = 14
    IPV4_NEXT_HOP = 15
    LAST_SWITCHED = 21
    FIRST_SWITCHED = 22
    # Vendor extensions (paper scenarios: SLA & neutrality metrics).
    EXT_HOP_COUNT = 40001
    EXT_LOST_PKTS = 40002
    EXT_RTT_US = 40003
    EXT_JITTER_US = 40004


@dataclass(frozen=True)
class TemplateField:
    """One (type, length) pair of a template record."""

    field_type: FieldType
    length: int

    def __post_init__(self) -> None:
        if self.length not in (1, 2, 4, 8):
            raise SerializationError(
                f"unsupported field length {self.length}")


@dataclass(frozen=True)
class Template:
    """An ordered v9 template with a collector-scoped id (> 255)."""

    template_id: int
    fields: tuple[TemplateField, ...]

    def __post_init__(self) -> None:
        if not 256 <= self.template_id <= 0xFFFF:
            raise SerializationError(
                f"template id {self.template_id} must be in [256, 65535]")
        if not self.fields:
            raise SerializationError("template needs at least one field")

    @property
    def record_length(self) -> int:
        return sum(f.length for f in self.fields)

    # -- template flowset body (id 0) ----------------------------------------

    def encode(self) -> bytes:
        """Template record: id, field count, then (type, length) pairs."""
        out = bytearray(struct.pack(">HH", self.template_id,
                                    len(self.fields)))
        for f in self.fields:
            out.extend(struct.pack(">HH", int(f.field_type), f.length))
        return bytes(out)

    @classmethod
    def decode_all(cls, body: bytes) -> Iterator["Template"]:
        """Parse every template record in a template flowset body."""
        pos = 0
        while pos + 4 <= len(body):
            template_id, count = struct.unpack_from(">HH", body, pos)
            if template_id == 0 and count == 0:
                break  # padding
            pos += 4
            fields = []
            for _ in range(count):
                if pos + 4 > len(body):
                    raise SerializationError("truncated template record")
                ftype, flen = struct.unpack_from(">HH", body, pos)
                pos += 4
                try:
                    fields.append(TemplateField(FieldType(ftype), flen))
                except ValueError as exc:
                    raise SerializationError(
                        f"unknown field type {ftype}") from exc
            yield cls(template_id=template_id, fields=tuple(fields))

    # -- data record encode/decode -----------------------------------------------

    def encode_record(self, record: NetFlowRecord, *,
                      sys_uptime_ms: int = 0) -> bytes:
        """Pack a record's fields in template order."""
        out = bytearray()
        for f in self.fields:
            value = _field_value(record, f.field_type, sys_uptime_ms)
            # Counters and uptime-relative timestamps wrap, as on real
            # exporters (32-bit sysUptime wraps every ~49.7 days).
            mask = (1 << (8 * f.length)) - 1
            out.extend((value & mask).to_bytes(f.length, "big"))
        return bytes(out)

    def decode_record(self, data: bytes, *, router_id: str = "",
                      sys_uptime_ms: int = 0) -> NetFlowRecord:
        """Unpack one record; ``data`` must be exactly record_length."""
        if len(data) != self.record_length:
            raise SerializationError(
                f"data record is {len(data)} bytes, template says "
                f"{self.record_length}")
        values: dict[FieldType, int] = {}
        pos = 0
        for f in self.fields:
            values[f.field_type] = int.from_bytes(
                data[pos:pos + f.length], "big")
            pos += f.length
        return _record_from_values(values, router_id, sys_uptime_ms)


def _addr_str(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF)
                    for shift in (24, 16, 8, 0))


def _addr_int(addr: str) -> int:
    parts = addr.split(".")
    return (int(parts[0]) << 24) | (int(parts[1]) << 16) | \
        (int(parts[2]) << 8) | int(parts[3])


def _field_value(record: NetFlowRecord, field_type: FieldType,
                 sys_uptime_ms: int) -> int:
    key = record.key
    if field_type is FieldType.IN_BYTES:
        return record.octets
    if field_type is FieldType.IN_PKTS:
        return record.packets
    if field_type is FieldType.PROTOCOL:
        return key.protocol
    if field_type is FieldType.TCP_FLAGS:
        return record.tcp_flags
    if field_type is FieldType.L4_SRC_PORT:
        return key.src_port
    if field_type is FieldType.IPV4_SRC_ADDR:
        return _addr_int(key.src_addr)
    if field_type is FieldType.INPUT_SNMP:
        return record.input_if
    if field_type is FieldType.L4_DST_PORT:
        return key.dst_port
    if field_type is FieldType.IPV4_DST_ADDR:
        return _addr_int(key.dst_addr)
    if field_type is FieldType.OUTPUT_SNMP:
        return record.output_if
    if field_type is FieldType.IPV4_NEXT_HOP:
        return _addr_int(record.next_hop)
    if field_type is FieldType.LAST_SWITCHED:
        return record.last_switched_ms - sys_uptime_ms
    if field_type is FieldType.FIRST_SWITCHED:
        return record.first_switched_ms - sys_uptime_ms
    if field_type is FieldType.EXT_HOP_COUNT:
        return record.hop_count
    if field_type is FieldType.EXT_LOST_PKTS:
        return record.lost_packets
    if field_type is FieldType.EXT_RTT_US:
        return record.rtt_us
    if field_type is FieldType.EXT_JITTER_US:
        return record.jitter_us
    raise SerializationError(f"no encoder for field {field_type!r}")


def _record_from_values(values: dict[FieldType, int], router_id: str,
                        sys_uptime_ms: int) -> NetFlowRecord:
    def get(ft: FieldType, default: int = 0) -> int:
        return values.get(ft, default)

    key = FlowKey(
        src_addr=_addr_str(get(FieldType.IPV4_SRC_ADDR)),
        dst_addr=_addr_str(get(FieldType.IPV4_DST_ADDR)),
        src_port=get(FieldType.L4_SRC_PORT),
        dst_port=get(FieldType.L4_DST_PORT),
        protocol=get(FieldType.PROTOCOL),
    )
    return NetFlowRecord(
        router_id=router_id,
        key=key,
        packets=get(FieldType.IN_PKTS),
        octets=get(FieldType.IN_BYTES),
        first_switched_ms=get(FieldType.FIRST_SWITCHED) + sys_uptime_ms,
        last_switched_ms=get(FieldType.LAST_SWITCHED) + sys_uptime_ms,
        tcp_flags=get(FieldType.TCP_FLAGS),
        input_if=get(FieldType.INPUT_SNMP),
        output_if=get(FieldType.OUTPUT_SNMP),
        next_hop=_addr_str(get(FieldType.IPV4_NEXT_HOP)),
        hop_count=get(FieldType.EXT_HOP_COUNT, 1),
        lost_packets=get(FieldType.EXT_LOST_PKTS),
        rtt_us=get(FieldType.EXT_RTT_US),
        jitter_us=get(FieldType.EXT_JITTER_US),
    )


# The template our exporters announce: every field a NetFlowRecord carries.
STANDARD_TEMPLATE = Template(
    template_id=300,
    fields=(
        TemplateField(FieldType.IPV4_SRC_ADDR, 4),
        TemplateField(FieldType.IPV4_DST_ADDR, 4),
        TemplateField(FieldType.L4_SRC_PORT, 2),
        TemplateField(FieldType.L4_DST_PORT, 2),
        TemplateField(FieldType.PROTOCOL, 1),
        TemplateField(FieldType.TCP_FLAGS, 1),
        TemplateField(FieldType.IN_PKTS, 4),
        TemplateField(FieldType.IN_BYTES, 4),
        TemplateField(FieldType.FIRST_SWITCHED, 4),
        TemplateField(FieldType.LAST_SWITCHED, 4),
        TemplateField(FieldType.INPUT_SNMP, 2),
        TemplateField(FieldType.OUTPUT_SNMP, 2),
        TemplateField(FieldType.IPV4_NEXT_HOP, 4),
        TemplateField(FieldType.EXT_HOP_COUNT, 2),
        TemplateField(FieldType.EXT_LOST_PKTS, 4),
        TemplateField(FieldType.EXT_RTT_US, 4),
        TemplateField(FieldType.EXT_JITTER_US, 4),
    ),
)
