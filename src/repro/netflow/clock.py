"""Clocks for the simulator: wall time for live runs, virtual for tests.

The paper's eval commits router logs "every 5 seconds to model a
realistic integrity window"; reproducing that with real sleeps makes the
test suite crawl, so every time-dependent component takes a clock object.
:class:`SimClock` is advanced explicitly and deterministically;
:class:`WallClock` delegates to the OS.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol


class Clock(Protocol):
    """Minimal clock interface used across the simulator."""

    def now_ms(self) -> int:
        """Current time in milliseconds."""
        ...

    def sleep_ms(self, duration_ms: int) -> None:
        """Block (or virtually advance) for ``duration_ms``."""
        ...


class WallClock:
    """Real time, anchored at construction so runs start near t=0."""

    def __init__(self) -> None:
        self._epoch = time.monotonic()

    def now_ms(self) -> int:
        return int((time.monotonic() - self._epoch) * 1000)

    def sleep_ms(self, duration_ms: int) -> None:
        if duration_ms > 0:
            time.sleep(duration_ms / 1000.0)


class SimClock:
    """Deterministic virtual clock, advanced explicitly.

    Thread-safe: the threaded simulator's router workers may read it
    while the driver advances it.  ``sleep_ms`` on a SimClock *advances*
    time rather than blocking, which lets single-threaded tests drive
    five-second commit windows instantly.
    """

    def __init__(self, start_ms: int = 0) -> None:
        self._now_ms = start_ms
        self._lock = threading.Lock()

    def now_ms(self) -> int:
        with self._lock:
            return self._now_ms

    def advance_ms(self, delta_ms: int) -> int:
        if delta_ms < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now_ms += delta_ms
            return self._now_ms

    def sleep_ms(self, duration_ms: int) -> None:
        if duration_ms > 0:
            self.advance_ms(duration_ms)
