"""Router topologies for the NetFlow simulator.

A topology is a networkx graph whose nodes are routers and whose edges
carry link properties (propagation latency, jitter, loss rate, capacity).
Flows enter at an ingress router, follow the minimum-latency path, and
are observed by every router along it — which is what makes cross-router
aggregation (summing per-flow counters over routers, §4) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import ConfigurationError


@dataclass(frozen=True)
class RouterInfo:
    """Identity of one router vantage point."""

    router_id: str
    loopback: str
    region: str = "core"


@dataclass(frozen=True)
class LinkSpec:
    """Link properties used by the traffic generator."""

    latency_us: int = 1_000
    jitter_us: int = 100
    loss_rate: float = 0.0
    bandwidth_bps: int = 10_000_000_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate {self.loss_rate} must be in [0, 1)")
        if self.latency_us < 0 or self.jitter_us < 0:
            raise ConfigurationError("latency/jitter must be non-negative")


class NetworkTopology:
    """A set of routers and links with path computation."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._routers: dict[str, RouterInfo] = {}

    # -- construction -----------------------------------------------------------

    def add_router(self, router_id: str, *, region: str = "core",
                   loopback: str | None = None) -> RouterInfo:
        if router_id in self._routers:
            raise ConfigurationError(f"duplicate router {router_id!r}")
        index = len(self._routers) + 1
        info = RouterInfo(
            router_id=router_id,
            loopback=loopback or f"192.0.2.{index}",
            region=region,
        )
        self._routers[router_id] = info
        self._graph.add_node(router_id, info=info)
        return info

    def add_link(self, a: str, b: str,
                 spec: LinkSpec | None = None) -> None:
        for router_id in (a, b):
            if router_id not in self._routers:
                raise ConfigurationError(f"unknown router {router_id!r}")
        spec = spec or LinkSpec()
        self._graph.add_edge(a, b, spec=spec, weight=spec.latency_us)

    # -- inspection --------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def routers(self) -> list[RouterInfo]:
        return [self._routers[r] for r in sorted(self._routers)]

    def router_ids(self) -> list[str]:
        return sorted(self._routers)

    def router(self, router_id: str) -> RouterInfo:
        try:
            return self._routers[router_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown router {router_id!r}") from None

    def link(self, a: str, b: str) -> LinkSpec:
        try:
            return self._graph.edges[a, b]["spec"]
        except KeyError:
            raise ConfigurationError(f"no link {a!r}-{b!r}") from None

    def path(self, src: str, dst: str) -> list[str]:
        """Minimum-latency router path from ``src`` to ``dst``."""
        if src == dst:
            return [src]
        try:
            return nx.shortest_path(self._graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ConfigurationError(
                f"no path between {src!r} and {dst!r}") from exc

    def path_latency_us(self, path: list[str]) -> int:
        return sum(self.link(a, b).latency_us
                   for a, b in zip(path, path[1:]))

    def path_jitter_us(self, path: list[str]) -> int:
        return sum(self.link(a, b).jitter_us
                   for a, b in zip(path, path[1:]))

    # -- canned topologies ----------------------------------------------------------

    @classmethod
    def linear(cls, num_routers: int,
               spec: LinkSpec | None = None) -> "NetworkTopology":
        """A chain r1 - r2 - ... - rN."""
        if num_routers < 1:
            raise ConfigurationError("need at least one router")
        topo = cls()
        for i in range(1, num_routers + 1):
            topo.add_router(f"r{i}")
        for i in range(1, num_routers):
            topo.add_link(f"r{i}", f"r{i + 1}", spec)
        return topo

    @classmethod
    def star(cls, num_leaves: int,
             spec: LinkSpec | None = None) -> "NetworkTopology":
        """A hub ``core`` with ``num_leaves`` edge routers."""
        if num_leaves < 1:
            raise ConfigurationError("need at least one leaf")
        topo = cls()
        topo.add_router("core")
        for i in range(1, num_leaves + 1):
            topo.add_router(f"edge{i}", region="edge")
            topo.add_link("core", f"edge{i}", spec)
        return topo

    @classmethod
    def mesh(cls, num_routers: int,
             spec: LinkSpec | None = None) -> "NetworkTopology":
        """A full mesh (every router linked to every other)."""
        if num_routers < 1:
            raise ConfigurationError("need at least one router")
        topo = cls()
        ids = [f"r{i}" for i in range(1, num_routers + 1)]
        for router_id in ids:
            topo.add_router(router_id)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                topo.add_link(a, b, spec)
        return topo

    @classmethod
    def paper_eval(cls) -> "NetworkTopology":
        """The §6 evaluation setting: a simplified 4-router topology."""
        spec = LinkSpec(latency_us=2_000, jitter_us=200, loss_rate=0.002)
        return cls.linear(4, spec)
