"""Flow keys and NetFlow records — the paper's *RLogs*.

A :class:`FlowKey` is the classic 5-tuple; a :class:`NetFlowRecord` is one
router's observation of a flow over an export interval: the v9 counter
fields (packets, octets, switched timestamps, TCP flags, interfaces) plus
the performance fields the paper's queries aggregate — ``hop_count`` (the
§6 example query computes ``SUM(hop_count)``), loss counters for SLA
packet-delivery checks, and RTT/jitter measurements for the SLA and
neutrality scenarios (derived by the simulator from bidirectional flow
timing, as passive RTT estimation would).
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import ConfigurationError
from ..hashing import TAG_RLOG, Digest, tagged_hash
from ..serialization import encode


def _addr_to_int(addr: str) -> int:
    try:
        return int(ipaddress.IPv4Address(addr))
    except ipaddress.AddressValueError as exc:
        raise ConfigurationError(f"invalid IPv4 address {addr!r}") from exc


def _int_to_addr(value: int) -> str:
    return str(ipaddress.IPv4Address(value))


@dataclass(frozen=True, order=True)
class FlowKey:
    """The 5-tuple identifying a flow (Algorithm 1's ``FlowID``)."""

    src_addr: str
    dst_addr: str
    src_port: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        _addr_to_int(self.src_addr)  # validate
        _addr_to_int(self.dst_addr)
        for name in ("src_port", "dst_port"):
            port = getattr(self, name)
            if not 0 <= port <= 0xFFFF:
                raise ConfigurationError(f"{name}={port} out of range")
        if not 0 <= self.protocol <= 0xFF:
            raise ConfigurationError(
                f"protocol={self.protocol} out of range")

    def pack(self) -> bytes:
        """13-byte canonical packing (saddr, daddr, sport, dport, proto)."""
        return struct.pack(
            ">IIHHB",
            _addr_to_int(self.src_addr),
            _addr_to_int(self.dst_addr),
            self.src_port,
            self.dst_port,
            self.protocol,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "FlowKey":
        if len(data) != 13:
            raise ConfigurationError(
                f"packed flow key must be 13 bytes, got {len(data)}")
        saddr, daddr, sport, dport, proto = struct.unpack(">IIHHB", data)
        return cls(src_addr=_int_to_addr(saddr), dst_addr=_int_to_addr(daddr),
                   src_port=sport, dst_port=dport, protocol=proto)

    def to_bytes_key(self) -> bytes:
        """Merkle-map key bytes (see :class:`repro.merkle.MerkleMap`)."""
        return self.pack()

    def reversed(self) -> "FlowKey":
        """The reverse direction of this flow."""
        return FlowKey(src_addr=self.dst_addr, dst_addr=self.src_addr,
                       src_port=self.dst_port, dst_port=self.src_port,
                       protocol=self.protocol)

    def __str__(self) -> str:
        return (f"{self.src_addr}:{self.src_port}->"
                f"{self.dst_addr}:{self.dst_port}/{self.protocol}")


# Protocol numbers used by the traffic generator.
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1


@dataclass(frozen=True)
class NetFlowRecord:
    """One router's observation of a flow over an export interval."""

    router_id: str
    key: FlowKey
    packets: int
    octets: int
    first_switched_ms: int
    last_switched_ms: int
    tcp_flags: int = 0
    input_if: int = 0
    output_if: int = 0
    next_hop: str = "0.0.0.0"
    hop_count: int = 1
    lost_packets: int = 0
    rtt_us: int = 0
    jitter_us: int = 0
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.packets < 0 or self.octets < 0:
            raise ConfigurationError("counters must be non-negative")
        if self.last_switched_ms < self.first_switched_ms:
            raise ConfigurationError(
                "last_switched_ms precedes first_switched_ms")
        if self.lost_packets < 0:
            raise ConfigurationError("lost_packets must be non-negative")

    # -- derived metrics ------------------------------------------------------

    @property
    def duration_ms(self) -> int:
        return self.last_switched_ms - self.first_switched_ms

    @property
    def loss_rate(self) -> float:
        """Fraction of offered packets lost downstream of this router."""
        offered = self.packets + self.lost_packets
        return self.lost_packets / offered if offered else 0.0

    @property
    def throughput_bps(self) -> float:
        """Mean goodput across the active interval, bits/second."""
        duration_s = self.duration_ms / 1000.0
        if duration_s <= 0:
            return 0.0
        return self.octets * 8 / duration_s

    # -- canonical form -------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        wire: dict[str, Any] = {
            "router_id": self.router_id,
            "key": self.key.pack(),
            "packets": self.packets,
            "octets": self.octets,
            "first_switched_ms": self.first_switched_ms,
            "last_switched_ms": self.last_switched_ms,
            "tcp_flags": self.tcp_flags,
            "input_if": self.input_if,
            "output_if": self.output_if,
            "next_hop": self.next_hop,
            "hop_count": self.hop_count,
            "lost_packets": self.lost_packets,
            "rtt_us": self.rtt_us,
            "jitter_us": self.jitter_us,
        }
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "NetFlowRecord":
        from ..errors import SerializationError
        try:
            kwargs = dict(wire)
            kwargs["key"] = FlowKey.unpack(kwargs["key"])
            return cls(**kwargs)
        except (TypeError, KeyError, ConfigurationError) as exc:
            raise SerializationError(
                f"malformed NetFlowRecord wire: {exc}") from exc

    def to_bytes(self) -> bytes:
        """Canonical bytes — what routers hash into their commitments."""
        return encode(self.to_wire())

    def digest(self) -> Digest:
        return tagged_hash(TAG_RLOG, self.to_bytes())

    def with_updates(self, **changes: Any) -> "NetFlowRecord":
        """A copy with fields replaced (used by tamper injection)."""
        return replace(self, **changes)
