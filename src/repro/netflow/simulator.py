"""The multi-router NetFlow simulation harness (paper §6 setup).

"The simulated setting comprises 4 routers, each generating NetFlow
telemetry logs in parallel via dedicated threads.  These logs are written
to a shared PostgreSQL backend, and each router periodically commits a
cryptographic hash of its log data every 5 seconds."

The driver generates flows over the topology and fans each flow's
per-router observations out to that router's worker.  Two drive modes:

* ``run_threaded`` — dedicated thread per router (the paper's setup),
  wall-clock or virtual-clock paced;
* ``pump`` — synchronous single-threaded stepping for deterministic
  tests: generate, deliver, advance the clock, commit.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

from ..commitments import BulletinBoard, RouterCommitter, WindowConfig
from ..errors import SimulationError
from ..storage.backend import LogStore
from .clock import Clock, SimClock
from .generator import TrafficConfig, TrafficGenerator
from .records import NetFlowRecord
from .topology import NetworkTopology


@dataclass
class SimulatorConfig:
    """Simulation knobs; defaults mirror the paper's evaluation.

    ``use_wire_format`` routes every record through a real NetFlow v9
    exporter/collector pair per router before it reaches the committer
    — full transport fidelity (committed bytes are what the collector
    decoded, exactly as a production deployment would see them).
    """

    num_routers: int = 4
    commit_interval_ms: int = 5_000
    flows_per_tick: int = 20
    tick_ms: int = 1_000
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    use_wire_format: bool = False


class NetFlowSimulator:
    """Drives routers, traffic, storage and commitments together."""

    def __init__(self, store: LogStore,
                 bulletin: BulletinBoard | None = None,
                 clock: Clock | None = None,
                 config: SimulatorConfig | None = None,
                 topology: NetworkTopology | None = None) -> None:
        self.config = config or SimulatorConfig()
        self.store = store
        # Explicit None checks: an empty BulletinBoard is falsy (__len__).
        self.bulletin = BulletinBoard() if bulletin is None else bulletin
        self.clock = clock if clock is not None else SimClock()
        self.topology = topology if topology is not None \
            else NetworkTopology.linear(self.config.num_routers)
        if len(self.topology.router_ids()) != self.config.num_routers:
            # Topology overrides the router count.
            self.config.num_routers = len(self.topology.router_ids())
        self.generator = TrafficGenerator(self.topology,
                                          self.config.traffic)
        window = WindowConfig(interval_ms=self.config.commit_interval_ms)
        self.committers = {
            router_id: RouterCommitter(router_id, store, self.bulletin,
                                       self.clock, window)
            for router_id in self.topology.router_ids()
        }
        self._records_generated = 0
        self._wire: dict[str, tuple] = {}
        if self.config.use_wire_format:
            from .collector import NetFlowCollector
            from .export import NetFlowExporter
            for index, router_id in enumerate(
                    self.topology.router_ids()):
                self._wire[router_id] = (
                    NetFlowExporter(source_id=index + 1),
                    NetFlowCollector(),
                )

    @property
    def records_generated(self) -> int:
        return self._records_generated

    # -- synchronous drive (deterministic) -------------------------------------

    def pump(self, ticks: int = 1) -> None:
        """Advance the simulation ``ticks`` steps synchronously."""
        for _ in range(ticks):
            now = self.clock.now_ms()
            self._deliver(self._generate_tick(now))
            self.clock.sleep_ms(self.config.tick_ms)
            for committer in self.committers.values():
                committer.maybe_commit()

    def run_until_records(self, target_records: int,
                          max_ticks: int = 100_000) -> None:
        """Pump until at least ``target_records`` records exist."""
        for _ in range(max_ticks):
            if self._records_generated >= target_records:
                break
            self.pump()
        else:
            raise SimulationError(
                f"generated only {self._records_generated} records in "
                f"{max_ticks} ticks (target {target_records})")

    def flush(self) -> None:
        """Commit every router's outstanding buffer."""
        for committer in self.committers.values():
            committer.flush()

    # -- threaded drive (the paper's parallel-router mode) ------------------------

    def run_threaded(self, duration_ms: int) -> None:
        """Run with one dedicated worker thread per router.

        The driver thread generates flows and feeds per-router queues;
        each router thread ingests its records and publishes its own
        commitments, concurrently with its peers, against the shared
        store — the §6 configuration.

        Meant for wall-clock runs (:class:`~repro.netflow.clock.WallClock`).
        With a :class:`~repro.netflow.clock.SimClock` the driver's
        virtual sleeps advance instantly, so worker threads drain most
        records after the loop ends and window assignment skews toward
        the final window — use :meth:`pump` for deterministic
        virtual-time tests.
        """
        queues: dict[str, queue.Queue] = {
            r: queue.Queue() for r in self.committers}
        stop = threading.Event()

        def router_worker(router_id: str) -> None:
            committer = self.committers[router_id]
            q = queues[router_id]
            while not (stop.is_set() and q.empty()):
                try:
                    record = q.get(timeout=0.01)
                except queue.Empty:
                    committer.maybe_commit()
                    continue
                committer.add_record(record)
            committer.flush()

        threads = [
            threading.Thread(target=router_worker, args=(router_id,),
                             name=f"router-{router_id}", daemon=True)
            for router_id in self.committers
        ]
        for thread in threads:
            thread.start()
        try:
            end = self.clock.now_ms() + duration_ms
            while self.clock.now_ms() < end:
                for record in self._generate_tick(self.clock.now_ms()):
                    queues[record.router_id].put(record)
                self.clock.sleep_ms(self.config.tick_ms)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
                if thread.is_alive():
                    raise SimulationError(
                        f"{thread.name} failed to stop")

    # -- internals --------------------------------------------------------------------

    def _generate_tick(self, now_ms: int) -> list[NetFlowRecord]:
        records: list[NetFlowRecord] = []
        for flow in self.generator.generate_flows(
                self.config.flows_per_tick, now_ms):
            records.extend(self.generator.observe(flow))
        self._records_generated += len(records)
        return records

    def _deliver(self, records: list[NetFlowRecord]) -> None:
        if not self.config.use_wire_format:
            for record in records:
                self.committers[record.router_id].add_record(record)
            return
        # Transport-fidelity mode: per-router v9 export → collect.
        by_router: dict[str, list[NetFlowRecord]] = {}
        for record in records:
            by_router.setdefault(record.router_id, []).append(record)
        for router_id, router_records in by_router.items():
            exporter, collector = self._wire[router_id]
            now = self.clock.now_ms()
            for packet in exporter.export(router_records, now_ms=now):
                for decoded in collector.ingest(packet,
                                                router_id=router_id):
                    self.committers[router_id].add_record(decoded)
