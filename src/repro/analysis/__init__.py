"""Statistical analysis helpers for the audit scenarios (§2.1)."""

from .stats import (
    DistributionComparison,
    DistributionSummary,
    compare_distributions,
    percentile,
    summarize,
)

__all__ = [
    "DistributionComparison",
    "DistributionSummary",
    "compare_distributions",
    "percentile",
    "summarize",
]
