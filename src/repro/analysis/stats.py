"""Distribution statistics for the neutrality audit scenario.

§2.1: "An edge operator could, for instance, prove that flows from
distinct content providers exhibit statistically equivalent latency,
throughput, and jitter distributions."  The neutrality example runs
verifiable per-provider aggregate queries and then applies these
host-side statistics to the *public* query outputs (and, for the
ground-truth check, a two-sample KS test on simulated samples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

from ..errors import ConfigurationError


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0 <= q <= 100) by linear interpolation."""
    if not samples:
        raise ConfigurationError("need at least one sample")
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile {q} out of [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1 - frac) + ordered[high] * frac)


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of one sample set."""

    count: int
    mean: float
    stdev: float
    p50: float
    p90: float
    p99: float


def summarize(samples: Sequence[float]) -> DistributionSummary:
    if not samples:
        raise ConfigurationError("need at least one sample")
    n = len(samples)
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / n
    return DistributionSummary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        p50=percentile(samples, 50),
        p90=percentile(samples, 90),
        p99=percentile(samples, 99),
    )


@dataclass(frozen=True)
class DistributionComparison:
    """Two-sample comparison verdict."""

    statistic: float
    p_value: float
    alpha: float
    mean_ratio: float

    @property
    def equivalent(self) -> bool:
        """Fail to reject 'same distribution' at level alpha."""
        return self.p_value >= self.alpha


def compare_distributions(a: Sequence[float], b: Sequence[float],
                          alpha: float = 0.01) -> DistributionComparison:
    """Two-sample Kolmogorov–Smirnov test.

    A *small* p-value rejects distributional equality — evidence of
    differentiated treatment between the two providers' flows.
    """
    if len(a) < 2 or len(b) < 2:
        raise ConfigurationError("need at least two samples per side")
    result = scipy_stats.ks_2samp(list(a), list(b))
    mean_a = sum(a) / len(a)
    mean_b = sum(b) / len(b)
    ratio = mean_a / mean_b if mean_b else float("inf")
    return DistributionComparison(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        alpha=alpha,
        mean_ratio=ratio,
    )
