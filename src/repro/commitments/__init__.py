"""Per-router hash commitments and the public bulletin board (§3, §5).

"We require service providers to periodically commit to their raw logs by
computing a cryptographic hash over the data in each router.  These hash
commitments are published periodically and serve as tamper-evident
attestations."  Routers buffer records into fixed time windows (5 s in
the paper's eval), hash each window's canonical record bytes, and publish
the digest.  The aggregation guest later recomputes the hash over what
the store holds and aborts on any mismatch (Algorithm 1, lines 5-11).
"""

from .bulletin import BulletinBoard, Commitment
from .committer import RouterCommitter
from .window import WindowConfig, window_digest

__all__ = [
    "BulletinBoard",
    "Commitment",
    "RouterCommitter",
    "WindowConfig",
    "window_digest",
]
