"""Integrity windows and the window commitment digest.

A window is a fixed-length time bucket; every record belongs to the
window its ingestion time falls into.  The commitment over a window is a
length-framed hash of the canonical record bytes, in append order —
:func:`window_digest` is the single definition both the routers (when
publishing) and the zkVM guest (when re-checking, Algorithm 1 line 7)
use, so the two can only agree if the stored bytes are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..hashing import TAG_COMMITMENT, Digest, hash_many

# The paper's evaluation setting: "each router periodically commits a
# cryptographic hash of its log data every 5 seconds".
DEFAULT_WINDOW_MS = 5_000


@dataclass(frozen=True)
class WindowConfig:
    """Window length configuration."""

    interval_ms: int = DEFAULT_WINDOW_MS

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ConfigurationError("interval_ms must be positive")

    def index_for(self, timestamp_ms: int) -> int:
        """Which window a timestamp falls into."""
        return timestamp_ms // self.interval_ms

    def start_of(self, window_index: int) -> int:
        return window_index * self.interval_ms

    def end_of(self, window_index: int) -> int:
        return (window_index + 1) * self.interval_ms


def window_digest(record_blobs: list[bytes]) -> Digest:
    """The published commitment over one router window.

    Length-framed so record boundaries are unambiguous; order-sensitive
    so reordering is also tamper-evident.
    """
    return hash_many(TAG_COMMITMENT, record_blobs)
