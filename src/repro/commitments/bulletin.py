"""Append-only public bulletin board of published commitments.

The board models the public channel routers publish their window hashes
to (a transparency log, a regulator's endpoint, a blockchain — the paper
leaves the medium open).  It is append-only: once published, a
commitment for a (router, window) pair can never be replaced, which is
exactly what makes post-hoc log rewriting detectable (Figure 3).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import IntegrityError, MissingCommitment
from ..hashing import Digest


@dataclass(frozen=True)
class Commitment:
    """One published window commitment."""

    router_id: str
    window_index: int
    digest: Digest
    record_count: int
    published_at_ms: int

    def to_wire(self) -> dict[str, Any]:
        return {
            "router_id": self.router_id,
            "window_index": self.window_index,
            "digest": self.digest,
            "record_count": self.record_count,
            "published_at_ms": self.published_at_ms,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "Commitment":
        return cls(**wire)


class BulletinBoard:
    """Thread-safe, append-only commitment registry."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, int], Commitment] = {}
        self._order: list[Commitment] = []
        self._lock = threading.Lock()

    def publish(self, commitment: Commitment) -> None:
        """Publish; re-publishing a different digest for the same
        (router, window) is rejected — the board is append-only."""
        key = (commitment.router_id, commitment.window_index)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                if existing.digest == commitment.digest:
                    return  # idempotent re-publish
                raise IntegrityError(
                    f"commitment for {key} already published with a "
                    f"different digest — equivocation attempt"
                )
            self._entries[key] = commitment
            self._order.append(commitment)

    def get(self, router_id: str, window_index: int) -> Commitment:
        with self._lock:
            commitment = self._entries.get((router_id, window_index))
        if commitment is None:
            raise MissingCommitment(
                f"no commitment published for router {router_id!r} "
                f"window {window_index}"
            )
        return commitment

    def try_get(self, router_id: str,
                window_index: int) -> Commitment | None:
        with self._lock:
            return self._entries.get((router_id, window_index))

    def for_window(self, window_index: int) -> dict[str, Commitment]:
        """router_id → commitment, for every router that committed."""
        with self._lock:
            return {c.router_id: c for c in self._entries.values()
                    if c.window_index == window_index}

    def windows(self) -> list[int]:
        with self._lock:
            return sorted({w for (_r, w) in self._entries})

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[Commitment]:
        with self._lock:
            return iter(list(self._order))
