"""Router-side committer: buffer, store, hash, publish.

One :class:`RouterCommitter` runs per router (in the simulator, inside
that router's thread).  Records are buffered into the current integrity
window; when the clock crosses a window boundary (or on ``flush``), the
window's canonical bytes are written to the shared store and their
digest is published on the bulletin board.

The committer hashes *what it wrote* — the canonical record bytes — so
any later modification of the store (or of the records themselves) makes
the recomputed digest diverge from the published one.
"""

from __future__ import annotations

import logging

from ..commitments.bulletin import BulletinBoard, Commitment
from ..commitments.window import WindowConfig, window_digest
from ..errors import SimulationError
from ..netflow.clock import Clock
from ..netflow.records import NetFlowRecord
from ..storage.backend import LogStore

logger = logging.getLogger(__name__)


class RouterCommitter:
    """Per-router periodic hash commitment pipeline (§3)."""

    def __init__(self, router_id: str, store: LogStore,
                 bulletin: BulletinBoard, clock: Clock,
                 window: WindowConfig | None = None) -> None:
        self.router_id = router_id
        self.store = store
        self.bulletin = bulletin
        self.clock = clock
        self.window = window or WindowConfig()
        self._current_window: int | None = None
        self._buffer: list[NetFlowRecord] = []
        self._committed_windows: list[int] = []

    @property
    def committed_windows(self) -> list[int]:
        return list(self._committed_windows)

    @property
    def pending_count(self) -> int:
        return len(self._buffer)

    def add_record(self, record: NetFlowRecord) -> None:
        """Buffer one record into the current window.

        Rolls the window over first if the clock has crossed a boundary,
        so records never land in an already-committed window.
        """
        now_window = self.window.index_for(self.clock.now_ms())
        if self._current_window is None:
            self._current_window = now_window
        elif now_window != self._current_window:
            self._commit_buffer()
            self._current_window = now_window
        self._buffer.append(record)

    def add_records(self, records: list[NetFlowRecord]) -> None:
        for record in records:
            self.add_record(record)

    def maybe_commit(self) -> Commitment | None:
        """Commit the buffered window if the clock has moved past it."""
        if self._current_window is None:
            return None
        if self.window.index_for(self.clock.now_ms()) == \
                self._current_window:
            return None
        return self._commit_buffer()

    def flush(self) -> Commitment | None:
        """Force-commit whatever is buffered (end of a run)."""
        if self._current_window is None:
            return None
        return self._commit_buffer()

    # -- internals ---------------------------------------------------------------

    def _commit_buffer(self) -> Commitment | None:
        window_index = self._current_window
        if window_index is None:
            raise SimulationError("no window open")
        records, self._buffer = self._buffer, []
        self._current_window = None
        if not records:
            return None
        self.store.append_records(self.router_id, window_index, records)
        blobs = [record.to_bytes() for record in records]
        commitment = Commitment(
            router_id=self.router_id,
            window_index=window_index,
            digest=window_digest(blobs),
            record_count=len(blobs),
            published_at_ms=self.clock.now_ms(),
        )
        self.bulletin.publish(commitment)
        self._committed_windows.append(window_index)
        logger.debug("router %s committed window %d: %d records, %s…",
                     self.router_id, window_index, len(blobs),
                     commitment.digest.short())
        return commitment
