#!/usr/bin/env python3
"""Verifiable sketch-based telemetry (paper §1 + the TrustSketch line
of work, re-based from enclaves onto proofs).

The provider folds its committed NetFlow windows into a Count-Min
sketch and a Space-Saving heavy-hitter summary *inside the zkVM*, and
publishes only the sketch digest, the stream total, and the top-k heavy
hitters.  A client can then request proven per-flow frequency estimates
against the committed sketch — without the provider revealing the
sketch (let alone the raw logs).

Run:  python examples/sketch_telemetry.py
"""

from repro import build_paper_eval_system
from repro.core.sketch_proof import (
    SketchTelemetry,
    verify_sketch_build,
    verify_sketch_estimate,
)
from repro.netflow.records import FlowKey


def main() -> None:
    system = build_paper_eval_system(target_records=300, seed=5)
    windows = system.prover.gather_window(0)
    print(f"committed window 0: "
          f"{sum(len(w.blobs) for w in windows)} records across "
          f"{len(windows)} routers")

    # Provider: build sketches under proof.
    telemetry = SketchTelemetry(width=2048, depth=4, capacity=64)
    build = telemetry.build(windows, top_k=5)
    stats = build.info.stats
    print(f"sketch build proven: {stats.total_cycles:,} guest cycles "
          f"({stats.cycle_breakdown.get('sketch', 0):,} in sketch "
          f"updates)")

    # Client: verify the build and read the public journal.
    journal = verify_sketch_build(build.receipt, system.bulletin)
    print("\nverified public outputs:")
    print(f"  total packets observed: {journal['total_packets']:,}")
    print(f"  sketch commitment: "
          f"{journal['cm_digest'].short()}… "
          f"(params {journal['cm_params']})")
    print(f"  top-{len(journal['top'])} heavy hitters:")
    for item in journal["top"]:
        key = FlowKey.unpack(item["k"])
        print(f"    {key}  ≤ {item['c']:,} packets")

    # Client: ask for a proven frequency estimate of the #1 flow.
    top_key = FlowKey.unpack(journal["top"][0]["k"])
    estimate = telemetry.prove_estimate(build, top_key)
    proven = verify_sketch_estimate(estimate, journal)
    print(f"\nproven Count-Min estimate for {top_key}: "
          f"{proven:,} packets")
    print(f"  (estimate receipt: {estimate.receipt.seal_size}-byte "
          f"seal, journal {estimate.receipt.journal_size} B)")

    # And for a flow that never existed.
    ghost = FlowKey("203.0.113.10", "203.0.113.20", 1234, 80, 6)
    ghost_estimate = telemetry.prove_estimate(build, ghost)
    print(f"proven estimate for an absent flow {ghost}: "
          f"{verify_sketch_estimate(ghost_estimate, journal):,}")


if __name__ == "__main__":
    main()
