"""Compose-style harness: spin up N worker daemons, prove against them.

The topology file (``topology.json``) declares the fleet the way a
compose file declares services: one entry per worker daemon, plus the
workload the coordinator should drive.  :class:`ClusterHarness` turns
each entry into a real ``python -m repro worker`` subprocess, waits
for the listening line, and hands the endpoints to whoever asks.

Usage::

    with ClusterHarness.from_topology(path) as harness:
        run_demo(harness.endpoints, topology)

Everything here is plain stdlib + repro — the harness is also what the
integration suite's smoke test drives, so it must stay importable.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_TOPOLOGY = Path(__file__).with_name("topology.json")


def load_topology(path: str | Path = DEFAULT_TOPOLOGY) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        topology = json.load(fh)
    if not topology.get("workers"):
        raise ValueError(f"{path}: topology declares no workers")
    return topology


class WorkerDaemon:
    """One ``repro worker`` subprocess from a topology entry."""

    def __init__(self, spec: dict) -> None:
        argv = [sys.executable, "-m", "repro", "worker",
                "--port", "0",
                "--backend", str(spec.get("backend", "thread"))]
        if spec.get("workers"):
            argv += ["--workers", str(spec["workers"])]
        if spec.get("idle_timeout"):
            argv += ["--idle-timeout", str(spec["idle_timeout"])]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        self.spec = spec
        self.proc = subprocess.Popen(
            argv, cwd=REPO_ROOT, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        if "worker listening on " not in line:
            rest = self.proc.stdout.read() or ""
            self.proc.kill()
            raise RuntimeError(
                f"worker failed to start: {line!r}\n{rest}")
        self.endpoint = line.split("worker listening on ", 1)[1] \
                            .split()[0]

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL — the chaos path, no goodbye."""
        if self.alive:
            os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=10)

    def stop(self) -> None:
        if self.alive:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        if self.proc.stdout is not None:
            self.proc.stdout.close()


def run_demo(endpoints, topology, harness=None, kill_one=False) -> int:
    """Aggregate a committed workload over the cluster; returns rounds.

    Imports repro lazily so the harness itself stays importable
    without ``src`` on the path (callers that only want the fleet).
    """
    from repro.core.prover_service import ProverService
    from repro.core.system import SystemConfig, TelemetrySystem
    from repro.core.verifier_client import VerifierClient

    system = TelemetrySystem(SystemConfig(
        seed=11, flows_per_tick=topology.get("flows_per_window", 4)))
    # Pump the simulator until enough windows have committed on their
    # own; flushing mid-run would re-commit a partial window later
    # (equivocation), so the tail partial window is simply left out.
    wanted = topology.get("windows", 3)
    records = 40
    while len(system.bulletin.windows()) < wanted and records < 20_000:
        system.simulator.run_until_records(records)
        records *= 2
    windows = system.bulletin.windows()
    print(f"workload: {len(windows)} committed windows, "
          f"{len(endpoints)} worker nodes")

    service = ProverService(system.store, system.bulletin,
                            prove_nodes=endpoints)
    try:
        for index, window in enumerate(windows):
            if kill_one and harness is not None and index == 1:
                victim = harness.kill_one()
                print(f"chaos: SIGKILLed worker {victim.endpoint}")
            service.aggregate_window(window)
            root = service.chain.latest.journal_header["new_root"]
            print(f"  window {window}: round proven, "
                  f"new root {str(root)[:16]}…")
        verified = VerifierClient(system.bulletin).verify_chain(
            service.chain.receipts())
        print(f"chain verifies: {len(verified)} rounds, "
              f"{verified[-1].size} flows")
        cluster = service.status()["engine"]["cluster"]
        print("fleet after the run:")
        for node in cluster["nodes"]:
            print(f"  {node['endpoint']:<22} {node['state']:<12} "
                  f"ok={node['jobs_ok']} failed={node['jobs_failed']}")
        print(f"degraded={cluster['degraded']} "
              f"steals={cluster['steals']} "
              f"fallback_jobs={cluster['fallback_jobs']}")
        return len(verified)
    finally:
        service.close()
        system.close()


class ClusterHarness:
    """The whole fleet, compose-style: up, endpoints, down."""

    def __init__(self, specs: list[dict]) -> None:
        self.workers: list[WorkerDaemon] = []
        try:
            for spec in specs:
                self.workers.append(WorkerDaemon(spec))
        except Exception:
            self.down()
            raise

    @classmethod
    def from_topology(cls, path: str | Path = DEFAULT_TOPOLOGY
                      ) -> "ClusterHarness":
        return cls(load_topology(path)["workers"])

    @property
    def endpoints(self) -> tuple[str, ...]:
        return tuple(w.endpoint for w in self.workers)

    def kill_one(self) -> WorkerDaemon:
        """SIGKILL the first live worker (chaos demo) and return it."""
        for worker in self.workers:
            if worker.alive:
                worker.kill()
                return worker
        raise RuntimeError("no live worker left to kill")

    def down(self) -> None:
        for worker in self.workers:
            worker.stop()

    def __enter__(self) -> "ClusterHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.down()
