#!/usr/bin/env python3
"""Drive the compose-style cluster demo end to end.

Brings up the fleet declared in ``topology.json``, points a
coordinator :class:`~repro.core.prover_service.ProverService` at it
(``prove_nodes=…`` — the remote pool backend), aggregates every
committed window over the wire, verifies the receipt chain, and prints
the dispatcher's view of the fleet.

Run:  python examples/cluster/run.py [--kill-one] [--topology PATH]

``--kill-one`` SIGKILLs a worker after the first window — the demo
then shows the quarantine and the re-dispatch that keep the chain
byte-identical anyway.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from cluster_harness import (  # noqa: E402
    DEFAULT_TOPOLOGY,
    ClusterHarness,
    load_topology,
    run_demo,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--topology", default=str(DEFAULT_TOPOLOGY))
    parser.add_argument("--kill-one", action="store_true",
                        help="SIGKILL a worker after the first window")
    args = parser.parse_args(argv)
    topology = load_topology(args.topology)
    with ClusterHarness(topology["workers"]) as harness:
        print(f"fleet up: {', '.join(harness.endpoints)}")
        rounds = run_demo(harness.endpoints, topology, harness,
                          kill_one=args.kill_one)
    print(f"fleet down; {rounds} rounds proven over the wire")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
