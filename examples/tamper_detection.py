#!/usr/bin/env python3
"""Tamper detection demo (paper §5, Figure 3).

A malicious provider retroactively rewrites its stored NetFlow logs —
hiding packet loss to dodge an SLA penalty — after the routers already
published their window hash commitments.  Every manipulation makes
proof generation fail; the provider simply cannot produce the receipt
a client would accept.

Run:  python examples/tamper_detection.py
"""

from repro import build_paper_eval_system
from repro.core.tamper import (
    TamperKind,
    corrupt_record_bytes,
    modify_record_field,
    reorder_window,
    run_tamper_experiment,
    truncate_window,
)


def main() -> None:
    system = build_paper_eval_system(target_records=700, seed=13,
                                     flows_per_tick=8)
    windows = system.bulletin.windows()
    assert len(windows) >= 3, "need several committed windows"
    router = system.store.router_ids()[0]

    # A clean round works fine.
    result = system.prover.aggregate_window(windows[0])
    print(f"clean aggregation of window {windows[0]}: round "
          f"{result.round} proven, root {result.new_root.short()}…\n")

    # Now the provider turns malicious on the remaining windows.
    attacks = [
        (TamperKind.MODIFY_FIELD, windows[1],
         "rewrite a record to hide packet loss",
         lambda w: modify_record_field(system.store, router, w, 0,
                                       lost_packets=0, packets=10**6)),
        (TamperKind.TRUNCATE, windows[2],
         "drop embarrassing records from the window",
         lambda w: truncate_window(system.store, router, w, keep=1)),
    ]
    if len(windows) > 3:
        attacks.append((TamperKind.REORDER, windows[3],
                        "reorder records within the window",
                        lambda w: reorder_window(system.store, router,
                                                 w)))
    if len(windows) > 4:
        attacks.append((TamperKind.CORRUPT_BYTES, windows[4],
                        "flip raw bytes in the shared store",
                        lambda w: corrupt_record_bytes(
                            system.store, router, w, 0, byte_index=9)))

    detected = 0
    for kind, window, description, tamper in attacks:
        outcome = run_tamper_experiment(
            kind,
            lambda w=window, t=tamper: t(w),
            lambda w=window: system.prover.aggregate_window(w))
        detected += outcome.detected
        print(f"attack: {description} (window {window})")
        print(f"  -> {outcome}\n")

    print(f"detection rate: {detected}/{len(attacks)} "
          f"(paper: every attempt fails)")

    # The bulletin also blocks the obvious counter-move: recommitting.
    from repro.commitments import Commitment
    from repro.commitments.window import window_digest
    blobs = system.store.window_blobs(router, windows[1])
    try:
        system.bulletin.publish(Commitment(
            router_id=router, window_index=windows[1],
            digest=window_digest(blobs), record_count=len(blobs),
            published_at_ms=10**9))
        print("recommitment accepted — BUG")
    except Exception as exc:
        print(f"recommitment of the tampered window rejected: {exc}")


if __name__ == "__main__":
    main()
