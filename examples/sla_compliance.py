#!/usr/bin/env python3
"""SLA compliance auditing (paper §2.1, second scenario).

"An operator can prove, for example, that at least 90% of flows achieve
RTT < X ms, throughput > Y Gbps, and jitter < Z ms, satisfying the SLA
requirements without exposing any underlying measurement data."

Each SLA clause becomes a pair of verifiable COUNT queries; the client
checks the fraction against the contractual threshold.  The provider's
raw telemetry never leaves its premises.

Run:  python examples/sla_compliance.py
"""

from dataclasses import dataclass

from repro import build_paper_eval_system
from repro.core.system import TelemetrySystem


@dataclass(frozen=True)
class SlaClause:
    """One contractual guarantee: ``fraction`` of flows must satisfy
    ``predicate`` (a WHERE fragment over the CLog schema)."""

    name: str
    predicate: str
    min_fraction: float


SLA = [
    SlaClause("latency", "rtt_avg_us < 200000", 0.90),
    SlaClause("loss", "loss_rate <= 0.05", 0.90),
    SlaClause("jitter", "jitter_avg_us < 50000", 0.85),
]


def audit(system: TelemetrySystem, clauses: list[SlaClause]) -> bool:
    """Run the verifiable SLA audit; returns overall compliance."""
    _response, total = system.query("SELECT COUNT(*) FROM clogs")
    population = total.values[0]
    print(f"auditing SLA over {population} flows "
          f"(telemetry stays private; only counts are revealed)\n")
    all_met = True
    for clause in clauses:
        _resp, good = system.query(
            f"SELECT COUNT(*) FROM clogs WHERE {clause.predicate}")
        fraction = good.values[0] / population if population else 0.0
        met = fraction >= clause.min_fraction
        all_met &= met
        status = "PASS" if met else "FAIL"
        print(f"  [{status}] {clause.name:<8} "
              f"{fraction:6.1%} of flows satisfy "
              f"'{clause.predicate}' "
              f"(required ≥ {clause.min_fraction:.0%})")
    return all_met


def main() -> None:
    system = build_paper_eval_system(target_records=400, seed=31)
    system.aggregate_all()

    compliant = audit(system, SLA)
    print(f"\noverall SLA verdict: "
          f"{'COMPLIANT' if compliant else 'IN BREACH'}")

    # Every number above was accompanied by a zk proof the client
    # verified; show what a dispute would rest on.
    latest = system.prover.chain.latest
    print("\ndispute evidence package:")
    print(f"  aggregation chain: {len(system.prover.chain)} receipts, "
          f"{latest.receipt.seal_size}-byte seals")
    print(f"  committed telemetry root: {latest.new_root.short()}…")
    print(f"  router commitments on the bulletin: "
          f"{len(system.bulletin)}")


if __name__ == "__main__":
    main()
