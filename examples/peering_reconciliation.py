#!/usr/bin/env python3
"""Inter-domain peering reconciliation (paper §1/§2.1).

Two ISPs exchange traffic over a peering link and bill each other by
delivered volume.  Historically this runs on "private monitoring and
contractual trust"; here both sides run the verifiable-telemetry
pipeline over their own routers, and a neutral auditor reconciles the
peering accounting from proofs alone:

    A proves  SUM(packets) − SUM(lost_packets)   (what it delivered)
    B proves  SUM(packets)                        (what it received)

Neither side reveals a flow record; a mismatch localizes the dispute
to the boundary; and a side that rewrites its logs to cheat simply
cannot produce proofs at all.

Run:  python examples/peering_reconciliation.py
"""

from repro.core.federation import PeeringAuditor, build_peering_scenario
from repro.core.tamper import modify_record_field


def main() -> None:
    scenario = build_peering_scenario(num_flows=80, seed=21,
                                      boundary_loss=0.015)
    a, b = scenario.domain_a, scenario.domain_b
    print(f"domain {a.name}: routers {a.router_ids}, "
          f"{len(a.bulletin)} commitments")
    print(f"domain {b.name}: routers {b.router_ids}, "
          f"{len(b.bulletin)} commitments\n")

    # The neutral auditor verifies both chains and reconciles.
    report = PeeringAuditor(tolerance=0.0).reconcile(scenario)
    print(f"auditor verdict: {report}\n")

    # What the auditor actually saw: two proof chains and two query
    # receipts — zero raw records.
    for domain in (a, b):
        link = domain.prover.chain.latest
        print(f"  {domain.name}: round {link.round} receipt "
              f"({link.receipt.seal_size} B seal), root "
              f"{link.new_root.short()}…")

    # A cheating peer: B halves its ingress counters to dispute the
    # bill — and thereby loses the ability to prove anything.
    print("\nISP B rewrites its ingress logs to dispute the bill…")
    cheat = build_peering_scenario(num_flows=80, seed=21,
                                   boundary_loss=0.015)
    victim = cheat.domain_b.store.window_records("r3", 0)[0]
    modify_record_field(cheat.domain_b.store, "r3", 0, 0,
                        packets=victim.packets // 2,
                        octets=victim.octets // 2)
    try:
        PeeringAuditor().reconcile(cheat)
        print("  reconciliation succeeded — BUG")
    except Exception as exc:
        print(f"  B cannot produce its chain: {exc}")


if __name__ == "__main__":
    main()
