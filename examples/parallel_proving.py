#!/usr/bin/env python3
"""Proof parallelization and prover backends (paper §7).

"ZKP generation in our system can be parallelized by dividing the
workload into smaller, independent segments ... partitioned by flow ID
or router ID, with separate proofs generated in parallel [and] merged
into a single final proof."

This walkthrough partitions one committed window by router, proves the
partitions concurrently, merges them under a single receipt, and then
compares the modeled latency across the §7 backends (CPU zkVM, GPU
zkVM, specialized hash prover).

Run:  python examples/parallel_proving.py
"""

from repro import build_paper_eval_system
from repro.core.guest_programs import merge_guest
from repro.core.parallel import ParallelAggregator
from repro.zkvm import verify_receipt
from repro.zkvm.costmodel import CostModel, ProverBackend


def main() -> None:
    system = build_paper_eval_system(target_records=600, seed=3,
                                     flows_per_tick=12)
    windows = system.prover.gather_window(0)
    total_records = sum(len(w.blobs) for w in windows)
    print(f"workload: window 0, {total_records} records across "
          f"{len(windows)} routers\n")

    model = CostModel()
    print(f"{'partitions':>10} {'parallel':>10} {'sequential':>11} "
          f"{'speedup':>8}")
    final = None
    for partitions in (1, 2, 4):
        result = ParallelAggregator().aggregate(windows, partitions)
        parallel_min = result.modeled_seconds(model) / 60
        sequential_min = result.sequential_seconds(model) / 60
        print(f"{partitions:>10} {parallel_min:>8.1f}m "
              f"{sequential_min:>9.1f}m "
              f"{sequential_min / parallel_min:>7.2f}x")
        final = result

    # The merged receipt is a single, ordinary receipt.
    verify_receipt(final.receipt, merge_guest.image_id)
    print(f"\nmerged receipt verifies: root {final.new_root.short()}…, "
          f"{final.size} flows, seal {final.receipt.seal_size} B")

    # §7 backends on the 4-partition workload's merge-equivalent:
    stats = final.merge_info.stats
    print(f"\nprover backends (merge step, "
          f"{stats.sha_compressions:,} sha compressions):")
    for backend in ProverBackend:
        seconds = model.prove_seconds(stats, backend)
        print(f"  {backend.value:<18} {seconds:>8.1f} s")


if __name__ == "__main__":
    main()
