#!/usr/bin/env python3
"""The telemetry substrate, piece by piece (paper §4, Figure 1).

A lower-level tour than the quickstart: build a topology, generate
flows, ship records over the real NetFlow v9 wire format, commit
windows to the bulletin, run one proven aggregation round by hand, and
inspect the receipt the way a client would.

Run:  python examples/netflow_pipeline.py
"""

from repro.commitments import BulletinBoard, RouterCommitter, WindowConfig
from repro.core.prover_service import ProverService
from repro.core.verifier_client import VerifierClient
from repro.netflow import (
    NetFlowCollector,
    NetFlowExporter,
    SimClock,
    TrafficGenerator,
)
from repro.netflow.generator import TrafficConfig
from repro.netflow.topology import LinkSpec, NetworkTopology
from repro.storage import SqliteLogStore


def main() -> None:
    # 1. Topology: a small ISP — two edges, two cores, lossy links.
    topology = NetworkTopology()
    for router_id, region in [("edge1", "edge"), ("core1", "core"),
                              ("core2", "core"), ("edge2", "edge")]:
        topology.add_router(router_id, region=region)
    spec = LinkSpec(latency_us=3_000, jitter_us=300, loss_rate=0.004)
    topology.add_link("edge1", "core1", spec)
    topology.add_link("core1", "core2", spec)
    topology.add_link("core2", "edge2", spec)
    print(f"topology: {topology.router_ids()}")

    # 2. Traffic: flows observed by every router on their path.
    generator = TrafficGenerator(topology, TrafficConfig(seed=99))
    flows = generator.generate_flows(60, now_ms=1_000)
    observations = [record for flow in flows
                    for record in generator.observe(flow)]
    print(f"generated {len(flows)} flows -> {len(observations)} "
          f"per-router observations")

    # 3. The v9 wire: exporter on the router, collector at the
    #    telemetry plane (templates, flowsets, sequence numbers).
    exporter = NetFlowExporter(source_id=1)
    collector = NetFlowCollector()
    received = []
    for packet in exporter.export(observations[:20]):
        received.extend(collector.ingest(packet, router_id="edge1"))
    print(f"NetFlow v9 roundtrip: {len(received)} records decoded, "
          f"{collector.stats.templates_learned} template learned")

    # 4. Storage + commitments: each router buffers into 5s windows,
    #    writes the shared SQL store, publishes the window hash.
    store = SqliteLogStore()  # the PostgreSQL stand-in
    bulletin = BulletinBoard()
    clock = SimClock()
    committers = {
        router_id: RouterCommitter(router_id, store, bulletin, clock,
                                   WindowConfig(interval_ms=5_000))
        for router_id in topology.router_ids()
    }
    for record in observations:
        committers[record.router_id].add_record(record)
    clock.advance_ms(5_000)
    for committer in committers.values():
        committer.maybe_commit()
    print(f"committed: {len(bulletin)} router-window hashes published")

    # 5. One aggregation round, proven in the zkVM.
    service = ProverService(store, bulletin)
    result = service.aggregate_window(0)
    receipt = result.receipt
    print(f"aggregation round {result.round}: "
          f"{result.record_count} records -> "
          f"{len(result.new_state)} CLog entries")
    print(f"  receipt: seal {receipt.seal_size} B, journal "
          f"{receipt.journal_size} B, serialized "
          f"{receipt.receipt_size} B")
    print(f"  in-guest cycles: "
          f"{service.last_prove_info.stats.total_cycles:,} "
          f"({service.last_prove_info.stats.sha_compressions:,} sha "
          f"compressions)")

    # 6. Client-side verification from public material.
    verifier = VerifierClient(bulletin)
    verified = verifier.verify_chain(service.chain.receipts())
    print(f"client verified the chain: round {verified[-1].round}, "
          f"root {verified[-1].new_root.short()}…, windows "
          f"{sorted(set(verified[-1].windows))}")
    store.close()


if __name__ == "__main__":
    main()
