#!/usr/bin/env python3
"""Quickstart: verifiable network telemetry in ~40 lines.

Builds the paper's §6 evaluation setting (4 routers, 5-second commitment
windows, shared backend), aggregates the committed NetFlow windows under
zero-knowledge proofs, answers the paper's example query, and verifies
everything client-side — in well under a minute of wall time, because
the heavyweight STARK proving is simulated with a calibrated cost model.

Run:  python examples/quickstart.py
"""

from repro import build_paper_eval_system
from repro.zkvm.costmodel import CostModel


def main() -> None:
    # 1. Simulate routers generating + committing NetFlow windows.
    system = build_paper_eval_system(target_records=300)
    print(f"simulated {system.simulator.records_generated} NetFlow "
          f"records across {len(system.store.router_ids())} routers, "
          f"{len(system.bulletin)} window commitments published")

    # 2. The provider aggregates each committed window, producing a
    #    chained zero-knowledge proof per round (Algorithm 1).
    rounds = system.aggregate_all()
    state = system.prover.state
    print(f"aggregated {rounds} rounds -> {len(state)} per-flow CLog "
          f"entries, Merkle root {state.root.short()}…")

    # 3. A client asks the paper's example query; the provider answers
    #    with a result + proof; the client verifies both the proof
    #    chain and the query proof from public material only.
    sql = ('SELECT SUM(hop_count) FROM clogs '
           'WHERE src_ip IN "10.0.0.0/8"')
    response, verified = system.query(sql)
    print(f"query: {sql}")
    print(f"  verified result: {verified.values[0]} "
          f"({verified.matched}/{verified.scanned} flows matched)")
    print(f"  proof seal: {response.receipt.seal_size} bytes, journal: "
          f"{response.receipt.journal_size} bytes")

    # 4. What would this cost on the paper's real prover?
    model = CostModel()
    stats = system.prover.last_prove_info.stats
    print(f"  modeled RISC Zero prove time: "
          f"{model.prove_seconds(stats) / 60:.1f} min "
          f"(verification: {model.verify_seconds() * 1000:.0f} ms)")

    # 5. Nothing sensitive left the provider: the journal holds only
    #    the query text, the committed root, and the result.
    journal = response.receipt.journal.decode_one()
    print(f"  public journal keys: {sorted(journal)}")


if __name__ == "__main__":
    main()
