#!/usr/bin/env python3
"""Remote proving over a worker fleet (the cluster backend).

The engine's ``remote`` pool backend fans proof jobs out to worker
daemons over the framed wire protocol — the same daemons ``repro
worker`` starts.  This example brings up a two-node fleet with the
compose-style harness in ``examples/cluster/``, proves a few windows
through it, then SIGKILLs one worker to show the failure story:
quarantine, re-dispatch, and a receipt chain that is byte-identical to
what a healthy fleet (or a local prover) produces.

Run:  python examples/cluster_proving.py

For the full declarative topology (N workers from a JSON file, chaos
flag, fleet report) see ``examples/cluster/run.py``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent / "cluster"))

from cluster_harness import ClusterHarness, run_demo  # noqa: E402


def main() -> None:
    topology = {"windows": 2, "flows_per_window": 4}
    workers = [{"backend": "thread", "workers": 2},
               {"backend": "thread", "workers": 2}]
    with ClusterHarness(workers) as harness:
        print(f"fleet up: {', '.join(harness.endpoints)}")
        run_demo(harness.endpoints, topology, harness, kill_one=True)
    print("fleet down — the kill changed where proofs ran, "
          "never what they said")


if __name__ == "__main__":
    main()
