#!/usr/bin/env python3
"""Distributed deployment demo: router → prover server → remote client.

The paper's Figure 1 has three physically separated parties.  This demo
actually separates them with TCP sockets on localhost:

1. routers simulate traffic and commit window hashes *locally*;
2. an off-path prover server starts with an **empty** bulletin board
   and serves the wire protocol (`repro.net`);
3. a router-side client publishes every commitment over the wire and
   triggers an aggregation round;
4. a remote query client asks a SQL query, then verifies the answer
   using only material fetched from the server — the bulletin, the
   receipt chain, and the query receipt.

Run:  python examples/remote_query.py
"""

from repro.commitments import BulletinBoard
from repro.core.prover_service import ProverService
from repro.core.system import SystemConfig, TelemetrySystem
from repro.net import ProverServer, QueryClient, RouterClient

SQL = "SELECT COUNT(*), SUM(octets) FROM clogs"


def main() -> None:
    # 1. Routers log + commit locally (their own view of the board).
    system = TelemetrySystem(SystemConfig(seed=3, flows_per_tick=5))
    system.generate(100)
    router_board = system.bulletin
    print(f"routers committed {len(router_board)} windows locally")

    # 2. The off-path prover serves the shared store over TCP.  Its
    #    bulletin starts empty: it only learns what routers publish.
    service = ProverService(system.store, BulletinBoard())
    with ProverServer(service) as server:
        endpoint = f"{server.host}:{server.port}"
        print(f"prover server listening on {endpoint}")

        # 3. Routers publish over the wire and kick an aggregation.
        with RouterClient(endpoint) as router:
            total = router.publish_all(router_board)
            rounds = router.run_round()
            print(f"published {total} commitments; proved "
                  f"{len(rounds)} aggregation round(s): "
                  + ", ".join(f"round {r['round']} -> "
                              f"{r['flows']} flows"
                              for r in rounds))

        # 4. A remote client queries and verifies from fetched
        #    public material only (bulletin + receipt chain).
        with QueryClient(endpoint) as client:
            response, verified = client.verified_query(SQL)
        print(f"query: {SQL}")
        for label, value in zip(verified.labels, verified.values):
            print(f"  {label} = {value}")
        print(f"  VERIFIED against round {verified.round} "
              f"(root {verified.root.short()}…, "
              f"{response.receipt.seal_size}-byte seal)")


if __name__ == "__main__":
    main()
