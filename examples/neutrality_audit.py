#!/usr/bin/env python3
"""Network-neutrality audit (paper §2.1, first scenario).

"An edge operator could, for instance, prove that flows from distinct
content providers exhibit statistically equivalent latency, throughput,
and jitter distributions, without disclosing individual user data."

We simulate two worlds — a fair network, and one that covertly
throttles a single content provider — and run the same verifiable
per-provider aggregate queries against both.  The throttled provider's
numbers stand out in the proven aggregates, without the auditor ever
seeing a flow record.

Run:  python examples/neutrality_audit.py
"""

from repro.core.system import SystemConfig, TelemetrySystem
from repro.netflow.generator import (
    DEFAULT_PROVIDERS,
    ThrottleSpec,
    TrafficConfig,
)

VICTIM = sorted(DEFAULT_PROVIDERS)[0]


def build_world(name: str, throttle: dict) -> TelemetrySystem:
    system = TelemetrySystem(
        SystemConfig(seed=47, flows_per_tick=8),
        traffic=TrafficConfig(seed=47, throttle=throttle))
    system.generate(350)
    system.aggregate_all()
    print(f"[{name}] {len(system.prover.state)} flows aggregated under "
          f"{len(system.prover.chain)} chained proofs")
    return system


def provider_report(system: TelemetrySystem) -> dict[str, dict]:
    """Per-provider verified aggregates (the audit's public output)."""
    report = {}
    for provider, prefix in sorted(DEFAULT_PROVIDERS.items()):
        _resp, verified = system.query(
            f'SELECT COUNT(*), AVG(rtt_avg_us), AVG(loss_rate) '
            f'FROM clogs WHERE src_ip IN "{prefix}"')
        count, rtt, loss = verified.values
        report[provider] = {
            "flows": count,
            "rtt_ms": (rtt or 0) / 1000,
            "loss": loss or 0.0,
        }
    return report


def print_report(title: str, report: dict[str, dict],
                 throttled: str | None = None) -> None:
    print(f"\n{title}")
    print(f"  {'provider':<10} {'flows':>6} {'avg rtt':>9} "
          f"{'avg loss':>9}")
    for provider, row in report.items():
        marker = "  <- throttled" if provider == throttled else ""
        print(f"  {provider:<10} {row['flows']:>6} "
              f"{row['rtt_ms']:>7.1f}ms {row['loss']:>8.2%}{marker}")


def verdict(report: dict[str, dict]) -> bool:
    """Simple neutrality check: no provider's mean RTT may exceed the
    best provider's by more than 2x (policy thresholds are out of the
    paper's scope; this one is illustrative)."""
    rtts = [row["rtt_ms"] for row in report.values() if row["flows"]]
    return max(rtts) <= 2 * min(rtts)


def main() -> None:
    fair = build_world("fair network", throttle={})
    fair_report = provider_report(fair)
    print_report("fair network — verified per-provider aggregates:",
                 fair_report)
    print(f"  neutrality verdict: "
          f"{'CLEAN' if verdict(fair_report) else 'VIOLATION'}")

    throttled = build_world(
        "throttling network",
        throttle={VICTIM: ThrottleSpec(extra_latency_us=80_000,
                                       extra_loss_rate=0.08)})
    throttled_report = provider_report(throttled)
    print_report("throttling network — verified per-provider "
                 "aggregates:", throttled_report, throttled=VICTIM)
    print(f"  neutrality verdict: "
          f"{'CLEAN' if verdict(throttled_report) else 'VIOLATION'}")

    # The whole per-provider table also fits in ONE proven query,
    # since providers are /16-assigned: GROUP BY the source /16.
    response, verified = throttled.query(
        "SELECT COUNT(*), AVG(rtt_avg_us) FROM clogs "
        "GROUP BY src_net16")
    print("\nsame audit as a single GROUP BY query "
          f"(one {response.receipt.seal_size}-byte proof):")
    for prefix, (count, rtt) in verified.groups:
        print(f"  {prefix:<14} {count:>4} flows, "
              f"avg rtt {(rtt or 0) / 1000:.1f} ms")

    print("\nnote: the auditor verified every number above against the "
          "operator's\ncommitted telemetry without receiving a single "
          "NetFlow record.")


if __name__ == "__main__":
    main()
