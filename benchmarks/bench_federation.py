"""Federation join benchmarks.

Both benches feed the CI regression gate (``check_regression.py``
against ``results/baseline.json``, normalized by
``test_engine_calibration`` from ``bench_engine.py`` — run the two
files in the same pytest invocation):

* ``test_federation_join_k2`` — a two-provider join, the minimal
  federation round: 2 totals-query proofs fanned out through the
  engine plus the join-guest merge and the final resolve.
* ``test_federation_join_k4`` — the same round at K=4, pricing how
  the join scales with provider count (the fan-out is parallel; the
  merge verifies K bindings serially).

Scenario construction and per-domain aggregation happen once in module
fixtures; each iteration prices exactly one join round through a fresh
engine + receipt cache (cold proofs, no cross-iteration caching).
Correctness is hard-asserted on the side: every join must come back
consistent under a zero-tolerance audit.

``REPRO_BENCH_SLEEP=<seconds>`` injects a per-iteration delay to
verify the gate itself; never set in CI.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import ProvingEngine, ReceiptCache
from repro.federation import (
    FederationAuditor,
    FederationJoinProver,
    build_federation_scenario,
)

JOIN_FLOWS = int(os.environ.get("REPRO_BENCH_FEDERATION_FLOWS", "24"))


def _sleep_penalty() -> None:
    delay = float(os.environ.get("REPRO_BENCH_SLEEP", "0") or 0.0)
    if delay > 0:
        time.sleep(delay)


def _scenario(num_providers: int):
    scenario = build_federation_scenario(
        num_providers=num_providers, num_flows=JOIN_FLOWS, seed=7,
        boundary_loss=0.02)
    scenario.aggregate_and_publish()
    return scenario


@pytest.fixture(scope="module")
def scenario_k2():
    return _scenario(2)


@pytest.fixture(scope="module")
def scenario_k4():
    return _scenario(4)


def _bench_join(benchmark, report, scenario, rounds: int):
    num_providers = len(scenario.providers)

    def join_round():
        _sleep_penalty()
        with ProvingEngine(backend="thread",
                           max_workers=num_providers,
                           cache=ReceiptCache()) as engine:
            prover = FederationJoinProver(engine=engine)
            return prover.prove_join(scenario)

    join = benchmark.pedantic(join_round, rounds=rounds, iterations=1,
                              warmup_rounds=1)
    result = FederationAuditor().audit(scenario.public_views(),
                                       scenario.board, join)
    assert result.consistent, result
    benchmark.extra_info["total_cycles"] = join.total_cycles
    report.table(
        "federation-join",
        f"K-provider federation join over {JOIN_FLOWS} flows "
        "(cold engine per round)",
        ["providers", "median_s", "join_cycles"])
    report.row("federation-join", num_providers,
               benchmark.stats.stats.median, join.total_cycles)


def test_federation_join_k2(benchmark, report, scenario_k2):
    """Two providers: the minimal federation round."""
    _bench_join(benchmark, report, scenario_k2, rounds=10)


def test_federation_join_k4(benchmark, report, scenario_k4):
    """Four providers: fan-out scaling of the same round."""
    _bench_join(benchmark, report, scenario_k4, rounds=5)
