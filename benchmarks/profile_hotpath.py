#!/usr/bin/env python3
"""Profile the zkVM hot path and gate CI on its hottest functions.

Runs one proven aggregation round plus one partitioned query under
``cProfile``, writes the raw pstats dump (uploaded as a CI artifact for
offline digging), and reduces the profile to the cumulative time of
the hottest in-repo functions.  Raw seconds do not transfer between
machines, so — like ``check_regression.py`` — every cumtime is first
divided by a fixed pure-CPU calibration loop; the compared quantity is
"calibration units spent under this function".

Modes::

    python benchmarks/profile_hotpath.py --update   # re-pin baseline
    python benchmarks/profile_hotpath.py --check    # gate (CI)

``--check`` fails (exit 1) when the combined cumulative time of the
top-3 hot functions regresses more than ``--threshold`` (default 30%)
against ``results/profile_baseline.json``; individual functions are
reported but only the top-3 aggregate gates, so a refactor that merely
renames a helper cannot fail CI on its own.
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import json
import pathlib
import pstats
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))
sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

BASELINE = (pathlib.Path(__file__).parent / "results"
            / "profile_baseline.json")
TOP_FUNCTIONS = 10
GATED_FUNCTIONS = 3
RECORDS = 1_500
QUERY_PARTITIONS = 2


def calibration_seconds(rounds: int = 5) -> float:
    """Median seconds for fixed CPU work (1 MiB of chained sha256) —
    the same yardstick shape ``bench_engine.py`` normalizes with."""
    def calibrate() -> bytes:
        block = b"\x00" * 1024
        digest = b""
        for _ in range(4096):
            digest = hashlib.sha256(block + digest).digest()
        return digest

    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        calibrate()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def run_workload() -> None:
    """One proven round + one partitioned query — the paper pipeline."""
    from repro.core.prover_service import ProverService
    from _workloads import PAPER_QUERY, committed_workload

    store, bulletin = committed_workload(RECORDS)
    service = ProverService(store, bulletin,
                            query_partitions=QUERY_PARTITIONS)
    service.aggregate_window(0)
    service.answer_query(PAPER_QUERY)
    service.close()


def hot_functions(stats: pstats.Stats,
                  top: int = TOP_FUNCTIONS) -> dict[str, float]:
    """name -> cumulative seconds for the hottest in-repo functions.

    Keys are ``module.py:func`` with the path reduced to the basename,
    so they are stable across checkouts and virtualenvs.  Only
    functions defined under ``repro`` are considered: stdlib and
    site-packages frames shift with interpreter versions and would
    make the committed snapshot churn.
    """
    rows: dict[str, float] = {}
    for (filename, _lineno, funcname), row in stats.stats.items():
        if "repro" not in filename.replace("\\", "/"):
            continue
        cumtime = row[3]
        key = f"{pathlib.Path(filename).name}:{funcname}"
        rows[key] = max(rows.get(key, 0.0), cumtime)
    ranked = sorted(rows.items(), key=lambda kv: -kv[1])[:top]
    return dict(ranked)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pstats-out", type=pathlib.Path,
                        default=pathlib.Path("profile_hotpath.pstats"),
                        help="raw cProfile dump (CI uploads this)")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=BASELINE)
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max tolerated top-3 cumtime growth "
                             "(0.30 = 30%%)")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--update", action="store_true",
                      help="rewrite the committed baseline")
    mode.add_argument("--check", action="store_true",
                      help="gate against the committed baseline")
    args = parser.parse_args(argv)

    calibration = calibration_seconds()
    profiler = cProfile.Profile()
    profiler.enable()
    run_workload()
    profiler.disable()
    profiler.dump_stats(args.pstats_out)
    print(f"pstats dump -> {args.pstats_out}")

    stats = pstats.Stats(profiler)
    normalized = {name: cumtime / calibration for name, cumtime
                  in hot_functions(stats).items()}
    print(f"calibration: {calibration * 1e3:.1f} ms; hottest in-repo "
          "functions (cumtime, calibration units):")
    for name, units in normalized.items():
        print(f"  {units:10.1f}  {name}")

    if args.update:
        args.baseline.parent.mkdir(exist_ok=True)
        args.baseline.write_text(json.dumps({
            "units": "cumtime relative to fixed sha256 calibration",
            "workload": {"records": RECORDS,
                         "query_partitions": QUERY_PARTITIONS},
            "functions": {k: round(v, 3)
                          for k, v in normalized.items()},
        }, indent=2, sort_keys=True) + "\n")
        print(f"profile baseline updated: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"no profile baseline at {args.baseline}; create one "
              "with --update", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())["functions"]

    def top3(functions: dict[str, float]) -> float:
        return sum(sorted(functions.values(), reverse=True)
                   [:GATED_FUNCTIONS])

    base_top3 = top3(baseline)
    current_top3 = top3(normalized)
    ratio = current_top3 / base_top3 if base_top3 else float("inf")
    print(f"\ntop-{GATED_FUNCTIONS} cumtime: {current_top3:.1f} vs "
          f"baseline {base_top3:.1f} calibration units "
          f"({ratio:.2f}x, threshold "
          f"{1.0 + args.threshold:.2f}x)")
    for name in sorted(set(baseline) | set(normalized)):
        if name not in normalized:
            print(f"  gone   {name} (was {baseline[name]:.1f})")
        elif name not in baseline:
            print(f"  new    {name} ({normalized[name]:.1f})")

    if ratio - 1.0 > args.threshold:
        print(f"PROFILE REGRESSION: top-{GATED_FUNCTIONS} hot-function "
              f"cumtime grew {ratio - 1.0:.0%} "
              f"(> {args.threshold:.0%})", file=sys.stderr)
        return 1
    print("profile within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
