"""Design-choice ablation — update-path vs full-rebuild aggregation.

DESIGN.md commits to per-record verified Merkle path updates (the
access pattern the paper profiles).  The alternative is shipping the
whole previous CLog into the guest and rebuilding the tree.  Analysis
(src/repro/core/rebuild.py): update costs ≈ records × 2·depth hashes,
rebuild ≈ 2 × (3·size + records); rebuild wins for batch-heavy rounds,
update wins for incremental rounds over a large dataset.  This bench
measures the crossover empirically from metered cycles.
"""

from __future__ import annotations

import pytest

from repro.commitments import window_digest
from repro.core.aggregation import Aggregator, RouterWindowInput
from repro.core.clog import CLogEntry, CLogState
from repro.core.rebuild import RebuildAggregator
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.zkvm.costmodel import CostModel

MODEL = CostModel()
STATE_SIZE = 512


def record_for(index: int) -> NetFlowRecord:
    return NetFlowRecord(
        router_id="r1",
        key=FlowKey("10.0.0.1", "172.16.0.1", 1000 + index % 60000,
                    2000, 6),
        packets=10, octets=1000,
        first_switched_ms=0, last_switched_ms=1000,
        hop_count=2, lost_packets=1, rtt_us=5000, jitter_us=100)


def base_state(size: int) -> CLogState:
    state = CLogState()
    for index in range(size):
        state.set_entry(CLogEntry.fresh(record_for(index)))
    state.round = 1  # pretend a prior round exists? round 0 needed.
    state.round = 0
    return state


def batch_inputs(start: int, count: int,
                 window: int) -> list[RouterWindowInput]:
    records = [record_for(start + i) for i in range(count)]
    blobs = tuple(r.to_bytes() for r in records)
    return [RouterWindowInput(
        router_id="r1", window_index=window,
        commitment=window_digest(list(blobs)), blobs=blobs)]


def round_cycles(strategy: str, state_size: int, batch: int) -> int:
    """Metered guest cycles for one round of `batch` fresh records over
    an existing CLog of `state_size` entries."""
    # Build the base state through a real round-0 proof so the chain
    # binding is available for round 1.
    genesis_inputs = batch_inputs(0, state_size, window=0)
    genesis = Aggregator().aggregate(CLogState(), genesis_inputs, None)
    inputs = batch_inputs(state_size, batch, window=1)
    aggregator = Aggregator() if strategy == "update" \
        else RebuildAggregator()
    result = aggregator.aggregate(genesis.new_state, inputs,
                                  genesis.receipt)
    return result.info.stats.total_cycles


BATCHES = (16, 64, 256, 1024)


@pytest.mark.parametrize("batch", BATCHES)
def test_strategy_crossover_point(benchmark, report, batch):
    update_cycles = round_cycles("update", STATE_SIZE, batch)
    rebuild_cycles = benchmark.pedantic(
        lambda: round_cycles("rebuild", STATE_SIZE, batch),
        rounds=1, iterations=1, warmup_rounds=0)
    winner = "update" if update_cycles < rebuild_cycles else "rebuild"
    report.table(
        "ablate-strategy",
        f"Update-path vs full-rebuild over a {STATE_SIZE}-entry CLog "
        "(metered guest cycles per round)",
        ["batch", "update_cycles", "rebuild_cycles", "winner",
         "update_min", "rebuild_min"],
    )
    report.row("ablate-strategy", batch, update_cycles, rebuild_cycles,
               winner,
               _minutes(update_cycles), _minutes(rebuild_cycles))


def test_crossover_falls_where_analysis_predicts(report):
    """Crossover ≈ where records × 2·depth = rebuild's size-dependent
    term — for a 512-entry CLog (depth 10) that's a few hundred
    records.  Assert update wins at 16 and rebuild wins at 1024."""
    small_update = round_cycles("update", STATE_SIZE, 16)
    small_rebuild = round_cycles("rebuild", STATE_SIZE, 16)
    large_update = round_cycles("update", STATE_SIZE, 1024)
    large_rebuild = round_cycles("rebuild", STATE_SIZE, 1024)
    report.table("ablate-strategy-verdict",
                 "Strategy crossover verdict",
                 ["batch", "update_wins"])
    report.row("ablate-strategy-verdict", 16,
               small_update < small_rebuild)
    report.row("ablate-strategy-verdict", 1024,
               large_update < large_rebuild)
    assert small_update < small_rebuild
    assert large_rebuild < large_update


def _minutes(cycles: int) -> float:
    # Approximate: ignore segment/base overhead differences.
    return cycles / MODEL.cpu_cycles_per_second / 60.0
