"""Benchmark-suite plumbing: the paper-vs-measured report.

Benchmarks register result rows with the session-scoped
:class:`ExperimentReport`; at session end the report is printed to the
terminal (so it lands in ``bench_output.txt``) and written to
``benchmarks/results/summary.txt``.

Every benchmark also runs with a fresh observability capture
(``repro.obs``): its metrics snapshot is attached to the
pytest-benchmark result as ``extra_info["obs"]`` and collected into
``benchmarks/results/obs_snapshots.json`` — so each saved bench number
carries the cycle/segment accounting that produced it.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.obs import runtime as obs_runtime

sys.path.insert(0, str(pathlib.Path(__file__).parent))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ExperimentReport:
    """Collects per-experiment tables across the benchmark session."""

    def __init__(self) -> None:
        self._tables: dict[str, dict] = {}

    def table(self, experiment_id: str, title: str,
              columns: list[str]) -> None:
        self._tables.setdefault(experiment_id, {
            "title": title, "columns": columns, "rows": []})

    def row(self, experiment_id: str, *values) -> None:
        self._tables[experiment_id]["rows"].append(
            [_fmt(v) for v in values])

    def render(self) -> str:
        chunks = []
        for experiment_id, table in self._tables.items():
            header = f"[{experiment_id}] {table['title']}"
            widths = [len(c) for c in table["columns"]]
            for row in table["rows"]:
                widths = [max(w, len(cell))
                          for w, cell in zip(widths, row)]
            def line(cells):
                return "  ".join(cell.rjust(width)
                                 for cell, width in zip(cells, widths))
            chunks.append("\n".join(
                [header, line(table["columns"]),
                 line(["-" * w for w in widths])]
                + [line(row) for row in table["rows"]]))
        return "\n\n".join(chunks)

    @property
    def has_results(self) -> bool:
        return any(t["rows"] for t in self._tables.values())


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


_REPORT = ExperimentReport()

_OBS_SNAPSHOTS: dict[str, dict] = {}


@pytest.fixture(scope="session")
def report() -> ExperimentReport:
    return _REPORT


@pytest.fixture(autouse=True)
def _obs_capture(request):
    """A fresh metrics capture per benchmark.

    Capture cost is a handful of dict operations per aggregation
    round — noise next to the hashing/proving work being timed — and
    buys a per-benchmark record of cycles, segments, and request
    counts alongside the wall-clock numbers.
    """
    with obs_runtime.capture() as cap:
        yield
        snapshot = cap.registry.snapshot()
    if not any(snapshot[kind] for kind in snapshot):
        return
    _OBS_SNAPSHOTS[request.node.nodeid] = snapshot
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is not None:
        benchmark.extra_info["obs"] = snapshot


def pytest_terminal_summary(terminalreporter):
    wrote = []
    if _OBS_SNAPSHOTS:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "obs_snapshots.json"
        path.write_text(json.dumps(_OBS_SNAPSHOTS, indent=2,
                                   sort_keys=True) + "\n")
        wrote.append(str(path))
    if _REPORT.has_results:
        rendered = _REPORT.render()
        terminalreporter.write_sep(
            "=", "paper-vs-measured experiment report")
        terminalreporter.write_line(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "summary.txt").write_text(rendered + "\n")
        wrote.append(str(RESULTS_DIR / "summary.txt"))
    for path in wrote:
        terminalreporter.write_line(f"wrote {path}")
