"""Benchmark-suite plumbing: the paper-vs-measured report.

Benchmarks register result rows with the session-scoped
:class:`ExperimentReport`; at session end the report is printed to the
terminal (so it lands in ``bench_output.txt``) and written to
``benchmarks/results/summary.txt``.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ExperimentReport:
    """Collects per-experiment tables across the benchmark session."""

    def __init__(self) -> None:
        self._tables: dict[str, dict] = {}

    def table(self, experiment_id: str, title: str,
              columns: list[str]) -> None:
        self._tables.setdefault(experiment_id, {
            "title": title, "columns": columns, "rows": []})

    def row(self, experiment_id: str, *values) -> None:
        self._tables[experiment_id]["rows"].append(
            [_fmt(v) for v in values])

    def render(self) -> str:
        chunks = []
        for experiment_id, table in self._tables.items():
            header = f"[{experiment_id}] {table['title']}"
            widths = [len(c) for c in table["columns"]]
            for row in table["rows"]:
                widths = [max(w, len(cell))
                          for w, cell in zip(widths, row)]
            def line(cells):
                return "  ".join(cell.rjust(width)
                                 for cell, width in zip(cells, widths))
            chunks.append("\n".join(
                [header, line(table["columns"]),
                 line(["-" * w for w in widths])]
                + [line(row) for row in table["rows"]]))
        return "\n\n".join(chunks)

    @property
    def has_results(self) -> bool:
        return any(t["rows"] for t in self._tables.values())


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


_REPORT = ExperimentReport()


@pytest.fixture(scope="session")
def report() -> ExperimentReport:
    return _REPORT


def pytest_terminal_summary(terminalreporter):
    if not _REPORT.has_results:
        return
    rendered = _REPORT.render()
    terminalreporter.write_sep("=", "paper-vs-measured experiment report")
    terminalreporter.write_line(rendered)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "summary.txt").write_text(rendered + "\n")
