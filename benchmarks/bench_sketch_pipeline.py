"""Extension bench — sketch telemetry vs full CLog aggregation.

The paper's pipeline "can use any logging or sketching algorithm"
(§1).  Sketch summarization inside the zkVM has a very different cost
profile from Merkle-authenticated CLogs: no per-record tree updates,
just hash-row updates — so the in-guest cycle count per record is much
lower, at the price of approximate answers.  This bench quantifies
that tradeoff on the same committed workload.
"""

from __future__ import annotations

import pytest

from repro.core.prover_service import ProverService
from repro.core.sketch_proof import SketchTelemetry, verify_sketch_build
from repro.zkvm.costmodel import CostModel

from _workloads import committed_workload

MODEL = CostModel()
RECORD_COUNTS = (200, 1000)


@pytest.mark.parametrize("num_records", RECORD_COUNTS)
def test_sketch_vs_clog_cycles(benchmark, report, num_records):
    store, bulletin = committed_workload(num_records)
    service = ProverService(store, bulletin)
    windows = service.gather_window(0)

    telemetry = SketchTelemetry(width=2048, depth=4)
    build = benchmark.pedantic(lambda: telemetry.build(windows),
                               rounds=1, iterations=1, warmup_rounds=0)
    verify_sketch_build(build.receipt, bulletin)
    sketch_cycles = build.info.stats.total_cycles

    clog = service.aggregate_window(0)
    clog_cycles = clog.info.stats.total_cycles

    report.table(
        "sketch-pipeline",
        "Sketch summarization vs CLog aggregation (in-guest cycles)",
        ["records", "sketch_cycles", "clog_cycles", "ratio",
         "sketch_min", "clog_min"],
    )
    report.row("sketch-pipeline", num_records, sketch_cycles,
               clog_cycles, clog_cycles / sketch_cycles,
               MODEL.prove_seconds(build.info.stats) / 60,
               MODEL.prove_seconds(clog.info.stats) / 60)
    # Sketching avoids the Merkle work: meaningfully cheaper per round.
    assert sketch_cycles < clog_cycles


def test_sketch_journal_is_compact(report):
    """The sketch build journal stays small regardless of the sketch's
    internal size — only digest + top-k go public."""
    store, bulletin = committed_workload(1000)
    service = ProverService(store, bulletin)
    windows = service.gather_window(0)
    small = SketchTelemetry(width=256, depth=4).build(windows, top_k=5)
    large = SketchTelemetry(width=8192, depth=6).build(windows, top_k=5)
    report.table("sketch-journal",
                 "Sketch journal size vs sketch width",
                 ["width", "journal_B", "seal_B"])
    report.row("sketch-journal", 256, small.receipt.journal_size,
               small.receipt.seal_size)
    report.row("sketch-journal", 8192, large.receipt.journal_size,
               large.receipt.seal_size)
    assert abs(large.receipt.journal_size
               - small.receipt.journal_size) < 64
