"""Wire-service overhead: queries through the server loop vs. direct
in-process calls.

The paper's verifier cost story (§6, Table 1) is measured in-process;
once prover and verifier are separated by a real channel (the Figure 1
deployment), the wire layer adds framing, canonical encode/decode, and
a socket round trip per request.  This benchmark measures that tax on
the repeated-query path (responses are deterministic and cached, so
proving cost is excluded by construction after the first call):
queries/sec plus p50/p99 latency for

* ``direct``  — ``ProverService.answer_query`` in-process,
* ``wire``    — ``QueryClient.query`` against a live localhost
  ``ProverServer``,
* ``wire-8x`` — the same with 8 concurrent client threads.
"""

from __future__ import annotations

import concurrent.futures
import time

import pytest

from repro.net import NO_RETRY, ProverServer, QueryClient

from _workloads import PAPER_QUERY, aggregated_service

NUM_RECORDS = 300
REQUESTS = 200
CONCURRENCY = 8


@pytest.fixture(scope="module")
def service():
    service = aggregated_service(NUM_RECORDS)
    service.answer_query(PAPER_QUERY)  # warm the query cache
    return service


@pytest.fixture(scope="module")
def server(service):
    with ProverServer(service) as live:
        yield live


def _percentiles(latencies_s: list[float]) -> tuple[float, float]:
    ordered = sorted(latencies_s)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1,
                      round(0.99 * (len(ordered) - 1)))]
    return p50 * 1000, p99 * 1000


def _drive(fn, requests: int = REQUESTS) -> tuple[float, float, float]:
    """(queries/sec, p50 ms, p99 ms) for ``requests`` calls of fn."""
    latencies = []
    start = time.perf_counter()
    for _ in range(requests):
        t0 = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    p50, p99 = _percentiles(latencies)
    return requests / elapsed, p50, p99


def _report_row(report, mode, qps, p50, p99):
    report.table(
        "net-throughput",
        f"Wire-service overhead ({REQUESTS} cached queries over "
        f"{NUM_RECORDS} records)",
        ["mode", "qps", "p50_ms", "p99_ms"],
    )
    report.row("net-throughput", mode, qps, p50, p99)


def test_direct_in_process(report, service):
    qps, p50, p99 = _drive(
        lambda: service.answer_query(PAPER_QUERY))
    _report_row(report, "direct", qps, p50, p99)
    assert qps > 0


def test_through_server_loop(report, service, server):
    with QueryClient(server.host, server.port,
                     retry=NO_RETRY) as client:
        baseline = service.answer_query(PAPER_QUERY)
        qps, p50, p99 = _drive(lambda: client.query(PAPER_QUERY))
        # Same receipt over the wire as in-process (determinism).
        assert client.query(PAPER_QUERY).receipt.claim_digest \
            == baseline.receipt.claim_digest
    _report_row(report, "wire", qps, p50, p99)
    assert qps > 0


def test_through_server_concurrent(report, server):
    clients = [QueryClient(server.host, server.port, retry=NO_RETRY)
               for _ in range(CONCURRENCY)]
    per_worker = REQUESTS // CONCURRENCY
    try:
        latencies: list[float] = []

        def worker(client: QueryClient) -> list[float]:
            spans = []
            for _ in range(per_worker):
                t0 = time.perf_counter()
                client.query(PAPER_QUERY)
                spans.append(time.perf_counter() - t0)
            return spans

        start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(CONCURRENCY) \
                as pool:
            for spans in pool.map(worker, clients):
                latencies.extend(spans)
        elapsed = time.perf_counter() - start
    finally:
        for client in clients:
            client.close()
    p50, p99 = _percentiles(latencies)
    _report_row(report, f"wire-{CONCURRENCY}x",
                len(latencies) / elapsed, p50, p99)
    assert latencies
