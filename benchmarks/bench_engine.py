"""Engine benchmarks: real multi-process proving and cache replay.

Three numbers matter here and all three feed the CI regression gate
(``check_regression.py`` against ``results/baseline.json``):

* ``test_engine_calibration`` — a fixed pure-CPU workload whose median
  normalizes every other bench, so the committed baseline transfers
  between machines of different speed;
* ``test_engine_round_serial`` — the cold single-process round, the
  denominator of every speedup claim;
* ``test_engine_round_warm_cache`` — a content-addressed cache replay
  of an identical round, which must also reuse >= 80% of the round's
  proofs (asserted from the observability counters, not from timing).

``test_engine_process_speedup`` pins the acceptance criterion of the
engine PR — >= 1.5x real wall-clock speedup at 4 process workers over
serial — and is skipped on hosts without 4 CPUs.  The 1.5x floor is a
*hard assertion only when* ``REPRO_BENCH_REQUIRE_SPEEDUP=1`` (how the
criterion is verified on quiet hardware); by default the measured
speedup is reported and recorded in ``extra_info`` without failing the
run, because an absolute wall-clock bar on shared CI runners is a
flake, and the calibration-normalized median gate below already
enforces regressions.

``REPRO_BENCH_SLEEP=<seconds>`` injects a per-round delay into the
gated benches; it exists to *verify the gate itself* (an injected
slowdown must fail ``check_regression.py``) and is never set in CI.
"""

from __future__ import annotations

import hashlib
import os
import time

import pytest

from repro.core.prover_service import ProverService
from repro.engine import ProvingEngine, ReceiptCache
from repro.obs import runtime as obs_runtime

from _workloads import committed_workload

ENGINE_RECORDS = int(os.environ.get("REPRO_BENCH_ENGINE_RECORDS",
                                    "2000"))
SPEEDUP_RECORDS = int(os.environ.get("REPRO_BENCH_SPEEDUP_RECORDS",
                                     "8000"))
NUM_PARTITIONS = 4


def _sleep_penalty() -> None:
    delay = float(os.environ.get("REPRO_BENCH_SLEEP", "0") or 0.0)
    if delay > 0:
        time.sleep(delay)


@pytest.fixture(scope="module")
def window_inputs():
    store, bulletin = committed_workload(ENGINE_RECORDS)
    return ProverService(store, bulletin).gather_window(0)


def test_engine_calibration(benchmark):
    """Fixed CPU work (1 MiB of chained sha256) — the machine-speed
    yardstick ``check_regression.py`` divides every median by."""

    def calibrate() -> bytes:
        block = b"\x00" * 1024
        digest = b""
        for _ in range(4096):
            digest = hashlib.sha256(block + digest).digest()
        return digest

    benchmark.pedantic(calibrate, rounds=10, iterations=5,
                       warmup_rounds=2)


def test_engine_round_serial(benchmark, report, window_inputs):
    """Cold partition-and-merge round, one process, fresh cache every
    iteration — the baseline the speedup and cache benches beat."""

    def cold_round():
        _sleep_penalty()
        with ProvingEngine(backend="serial",
                           cache=ReceiptCache()) as engine:
            return engine.prove_round(window_inputs, NUM_PARTITIONS)

    result = benchmark.pedantic(cold_round, rounds=5, iterations=1,
                                warmup_rounds=1)
    assert len(result.partition_infos) == NUM_PARTITIONS
    report.table(
        "engine-serial",
        f"engine cold round over {ENGINE_RECORDS} records "
        f"({NUM_PARTITIONS} partitions, serial backend)",
        ["records", "partitions", "flows"])
    report.row("engine-serial", ENGINE_RECORDS, NUM_PARTITIONS,
               result.size)


def test_engine_round_warm_cache(benchmark, report, window_inputs):
    """Replaying an identical round from the content-addressed cache.

    Timing aside, the acceptance bar is reuse: >= 80% of the round's
    proofs must come back as cache hits, read from the
    ``repro_engine_cache_total`` counters the engine emits.
    """
    engine = ProvingEngine(backend="serial", cache=ReceiptCache())
    try:
        cold = engine.prove_round(window_inputs, NUM_PARTITIONS)
        registry = obs_runtime.registry()
        cache_counter = registry.counter(
            "repro_engine_cache_total", ("tier", "result"))
        hits_before = cache_counter.value(tier="memory", result="hit")
        misses_before = cache_counter.value(tier="memory",
                                            result="miss")

        def warm_round():
            _sleep_penalty()
            return engine.prove_round(window_inputs, NUM_PARTITIONS)

        warm = benchmark.pedantic(warm_round, rounds=10, iterations=3,
                                  warmup_rounds=1)
        hits = cache_counter.value(tier="memory",
                                   result="hit") - hits_before
        misses = cache_counter.value(tier="memory",
                                     result="miss") - misses_before
    finally:
        engine.close()
    assert warm.receipt.to_wire() == cold.receipt.to_wire()
    reused = sum(1 for info in warm.partition_infos if info.cached)
    assert reused / len(warm.partition_infos) >= 0.8
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    assert hit_rate >= 0.8, f"warm-round cache hit rate {hit_rate:.2f}"
    benchmark.extra_info["cache_hit_rate"] = hit_rate
    report.table(
        "engine-cache",
        "warm-round receipt reuse from the content-addressed cache",
        ["partitions_reused", "hit_rate"])
    report.row("engine-cache", f"{reused}/{len(warm.partition_infos)}",
               hit_rate)


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="needs >= 4 CPUs for a meaningful "
                           "process-pool speedup")
def test_engine_process_speedup(benchmark, report):
    """The engine PR's acceptance criterion: 4 process workers beat
    the serial backend by >= 1.5x real wall-clock on the same round."""
    store, bulletin = committed_workload(SPEEDUP_RECORDS)
    inputs = ProverService(store, bulletin).gather_window(0)

    start = time.perf_counter()
    with ProvingEngine(backend="serial",
                       cache=ReceiptCache()) as engine:
        serial_result = engine.prove_round(inputs, NUM_PARTITIONS)
    serial_seconds = time.perf_counter() - start

    def process_round():
        with ProvingEngine(backend="process", max_workers=4,
                           cache=ReceiptCache()) as engine:
            return engine.prove_round(inputs, NUM_PARTITIONS)

    start = time.perf_counter()
    parallel_result = benchmark.pedantic(process_round, rounds=1,
                                         iterations=1, warmup_rounds=0)
    parallel_seconds = time.perf_counter() - start

    assert parallel_result.receipt.to_wire() == \
        serial_result.receipt.to_wire()
    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["speedup"] = speedup
    report.table(
        "engine-speedup",
        f"real wall-clock, {SPEEDUP_RECORDS} records, "
        f"{NUM_PARTITIONS} partitions",
        ["serial_s", "process_s", "speedup"])
    report.row("engine-speedup", serial_seconds, parallel_seconds,
               speedup)
    message = (f"process backend speedup {speedup:.2f}x < 1.5x "
               f"(serial {serial_seconds:.2f}s, "
               f"process {parallel_seconds:.2f}s)")
    if os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1":
        assert speedup >= 1.5, message
    elif speedup < 1.5:
        # On shared runners a hard wall-clock bar is a flake; report
        # loudly and let the normalized median gate do the enforcing.
        print(f"\nWARN  {message}")
