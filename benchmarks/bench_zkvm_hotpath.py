"""zkVM hot-path micro-benchmarks: optimized vs reference, per path.

Four optimizations landed behind the ``REPRO_HOTPATH`` gate (buffered
guest I/O, the fast serialization decoder + SHA midstate templates, the
memoized Merkle digest cache, vectorized predicate scans).  Each gets:

* a pytest-benchmark entry for the *optimized* path, feeding the
  calibration-normalized regression gate in ``check_regression.py``;
* a seat in ``test_hotpath_speedup_floor``, which times optimized vs
  reference in-process (``hotpath.force``) and asserts the PR's
  acceptance criterion — >= 1.5x median wall-clock on at least two of
  the four paths.  The property suite
  (``tests/property/test_hotpath_props.py``) pins byte-identity, so
  these numbers are speedups of *the same computation*.
"""

from __future__ import annotations

import statistics
import time

from repro import hotpath
from repro.hashing import sha256
from repro.merkle import MerkleTree, clear_memos
from repro.query import evaluate, parse_query
from repro.serialization import decode, encode
from repro.zkvm.guest import GuestEnv

IO_VALUES = 4_000
DECODE_ENTRIES = 2_000
MERKLE_LEAVES = 4_096
SCAN_ENTRIES = 20_000

SCAN_SQL = ("SELECT SUM(hop_count), COUNT(*) FROM clogs "
            'WHERE src_ip = "10.0.1.3" AND packets >= 10')


def _wire_entry(i: int) -> dict:
    return {
        "src_ip": f"10.0.{i % 4}.{i % 7}",
        "dst_ip": f"10.1.{i % 3}.{i % 5}",
        "packets": (i * 37) % 211,
        "octets": (i * 911) % 10_000,
        "hop_count": i % 6,
        "protocol": 6 if i % 2 else 17,
    }


# -- the four paths, as zero-argument thunks ---------------------------------

_IO_FRAMES = None


def _io_roundtrip():
    global _IO_FRAMES
    if _IO_FRAMES is None:
        _IO_FRAMES = tuple(encode(_wire_entry(i))
                           for i in range(IO_VALUES))
    env = GuestEnv(_IO_FRAMES)
    values = env.read_batch(IO_VALUES)
    env.commit_many(values)
    return env.journal_data


_DECODE_BLOB = None


def _decode_stream():
    global _DECODE_BLOB
    if _DECODE_BLOB is None:
        _DECODE_BLOB = encode([_wire_entry(i)
                               for i in range(DECODE_ENTRIES)])
    return decode(_DECODE_BLOB)


_MERKLE_LEAF_DIGESTS = None


def _merkle_rebuild():
    global _MERKLE_LEAF_DIGESTS
    if _MERKLE_LEAF_DIGESTS is None:
        _MERKLE_LEAF_DIGESTS = [sha256(i.to_bytes(4, "big"))
                                for i in range(MERKLE_LEAVES)]
    return MerkleTree(_MERKLE_LEAF_DIGESTS).root


_SCAN_VIEWS = None
_SCAN_QUERY = None


def _vector_scan():
    global _SCAN_VIEWS, _SCAN_QUERY
    if _SCAN_VIEWS is None:
        _SCAN_VIEWS = [_wire_entry(i) for i in range(SCAN_ENTRIES)]
        _SCAN_QUERY = parse_query(SCAN_SQL)
    return evaluate(_SCAN_QUERY, _SCAN_VIEWS)


PATHS = {
    "guest-io": _io_roundtrip,
    "decode": _decode_stream,
    "merkle-memo": _merkle_rebuild,
    "vector-scan": _vector_scan,
}


# -- regression-gate entries (optimized path only) ---------------------------

def test_hotpath_guest_io(benchmark):
    with hotpath.force(True):
        benchmark.pedantic(_io_roundtrip, rounds=5, iterations=1,
                           warmup_rounds=1)


def test_hotpath_decode(benchmark):
    with hotpath.force(True):
        benchmark.pedantic(_decode_stream, rounds=5, iterations=1,
                           warmup_rounds=1)


def test_hotpath_merkle_memo(benchmark):
    with hotpath.force(True):
        clear_memos()
        _merkle_rebuild()  # warm the digest memo once
        benchmark.pedantic(_merkle_rebuild, rounds=5, iterations=1,
                           warmup_rounds=1)


def test_hotpath_vector_scan(benchmark):
    with hotpath.force(True):
        benchmark.pedantic(_vector_scan, rounds=5, iterations=1,
                           warmup_rounds=1)


# -- the acceptance-criterion floor ------------------------------------------

def _median_seconds(thunk, rounds: int = 5) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        thunk()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_hotpath_speedup_floor(report):
    """>= 1.5x median speedup on at least two of the four paths."""
    report.table(
        "zkvm-hotpath",
        "zkVM hot-path sweep: optimized vs reference medians",
        ["path", "reference_ms", "optimized_ms", "speedup"],
    )
    ratios = {}
    for name, thunk in PATHS.items():
        with hotpath.force(True):
            clear_memos()
            thunk()  # warm caches/templates; parity with steady state
            optimized = _median_seconds(thunk)
        with hotpath.disabled():
            reference = _median_seconds(thunk)
        ratios[name] = reference / optimized
        report.row("zkvm-hotpath", name, reference * 1e3,
                   optimized * 1e3, ratios[name])
    fast_paths = [name for name, ratio in ratios.items()
                  if ratio >= 1.5]
    assert len(fast_paths) >= 2, (
        f"expected >= 1.5x on at least two paths, got {ratios}")
