"""§7 ablation — specialized proof systems and hash accounting.

Paper: "the work of [2] offers 600,000 hashes per second on an M3
MacBook Pro.  Since aggregating 3,000 NetFlow records in a Merkle tree
of depth 11 requires ≈35,000 hashes, this would offer a substantial
improvement over our current running time of 87 minutes."

We reproduce both halves: (a) the in-guest hash count for the
3,000-record aggregation is in the tens of thousands, and (b) a
specialized hash prover at 600k hashes/s collapses the 87-minute run to
seconds.
"""

from __future__ import annotations

import pytest

from repro.zkvm.costmodel import CostModel, ProverBackend

from _workloads import aggregated_service

MODEL = CostModel()


@pytest.fixture(scope="module")
def agg_3000():
    service = aggregated_service(3000)
    return service.last_prove_info.stats


def test_hash_count_matches_paper_estimate(agg_3000, report):
    """Paper estimate: ≈35,000 Merkle hashes for 3,000 records.  Our
    guest meters every compression (Merkle + commitments + journal);
    the Merkle-attributable share should be the same order."""
    merkle_cycles = agg_3000.cycle_breakdown.get("merkle", 0)
    from repro.zkvm.cycles import SHA256_COMPRESS_CYCLES
    merkle_compressions = merkle_cycles // SHA256_COMPRESS_CYCLES
    # Each tagged node/leaf hash costs ~2 compressions with midstate
    # caching, so hashes ≈ compressions / 2.
    merkle_hashes = merkle_compressions // 2
    report.table(
        "ablate-specialized",
        "§7: hash counts and specialized-prover latency @3000 records",
        ["metric", "ours", "paper"],
    )
    report.row("ablate-specialized", "merkle_hashes", merkle_hashes,
               "~35,000")
    assert 20_000 <= merkle_hashes <= 90_000


def test_specialized_prover_collapses_latency(agg_3000, report):
    cpu_min = MODEL.prove_seconds(agg_3000,
                                  ProverBackend.CPU_ZKVM) / 60
    specialized_s = MODEL.prove_seconds(
        agg_3000, ProverBackend.SPECIALIZED_HASH)
    hash_only_s = agg_3000.sha_compressions / 600_000.0
    report.row("ablate-specialized", "cpu_zkvm_minutes", cpu_min, "~87")
    report.row("ablate-specialized", "specialized_seconds",
               specialized_s, "(seconds)")
    report.row("ablate-specialized", "hash_time_at_600k/s",
               hash_only_s, "<1s")
    assert cpu_min == pytest.approx(87, rel=0.10)
    assert specialized_s < 60
    assert hash_only_s < 1.0


@pytest.mark.parametrize("backend", list(ProverBackend))
def test_backend_latency_ordering(benchmark, agg_3000, backend):
    seconds = benchmark(
        lambda: MODEL.prove_seconds(agg_3000, backend))
    assert seconds > 0
    cpu = MODEL.prove_seconds(agg_3000, ProverBackend.CPU_ZKVM)
    assert MODEL.prove_seconds(agg_3000, backend) <= cpu
