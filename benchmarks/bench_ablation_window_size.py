"""Design ablation — integrity-window length (the paper's 5 seconds).

§6 commits every 5 seconds "to model a realistic integrity window".
The window length trades off:

* shorter windows → finer tamper-detection granularity and fresher
  aggregation, but more rounds, each paying the fixed proving overhead
  (base + per-segment costs, prev-proof verification);
* longer windows → fewer/larger rounds amortizing the overhead, but a
  longer exposure interval before logs are committed.

We split the same record stream into different window counts and
compare the total modeled proving time plus the per-round overhead
share.
"""

from __future__ import annotations

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.netflow import NetworkTopology, TrafficGenerator
from repro.netflow.generator import TrafficConfig
from repro.storage import MemoryLogStore
from repro.zkvm.costmodel import CostModel

MODEL = CostModel()
TOTAL_RECORDS = 600
WINDOW_COUNTS = (1, 3, 6, 12)


def committed_in_windows(num_windows: int):
    """The same deterministic stream, committed as N windows."""
    topology = NetworkTopology.paper_eval()
    generator = TrafficGenerator(topology, TrafficConfig(seed=7))
    records = []
    while len(records) < TOTAL_RECORDS:
        for record in generator.observe(generator.generate_flow(1_000)):
            records.append(record)
            if len(records) >= TOTAL_RECORDS:
                break
    per_window = (len(records) + num_windows - 1) // num_windows
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    for window in range(num_windows):
        chunk = records[window * per_window:(window + 1) * per_window]
        by_router: dict[str, list] = {}
        for record in chunk:
            by_router.setdefault(record.router_id, []).append(record)
        for router_id, router_records in by_router.items():
            store.append_records(router_id, window, router_records)
            bulletin.publish(Commitment(
                router_id, window,
                window_digest([r.to_bytes() for r in router_records]),
                len(router_records), window * 5_000))
    return store, bulletin


@pytest.mark.parametrize("num_windows", WINDOW_COUNTS)
def test_window_size_sweep(benchmark, report, num_windows):
    store, bulletin = committed_in_windows(num_windows)

    def aggregate_all():
        service = ProverService(store, bulletin)
        return service, service.aggregate_all_committed()

    service, results = benchmark.pedantic(aggregate_all, rounds=1,
                                          iterations=1, warmup_rounds=0)
    total_modeled = sum(MODEL.prove_seconds(r.info.stats)
                        for r in results)
    overhead = len(results) * (MODEL.base_overhead
                               + MODEL.segment_overhead)
    report.table(
        "ablate-window",
        f"Integrity-window ablation over {TOTAL_RECORDS} records "
        "(total modeled proving time)",
        ["windows", "rounds", "total_min", "fixed_overhead_min",
         "exposure"],
    )
    report.row("ablate-window", num_windows, len(results),
               total_modeled / 60, overhead / 60,
               f"1/{num_windows} of stream")
    assert len(results) == num_windows
    assert len(service.state) > 0


def test_window_tradeoff_shape(report):
    """More windows must cost more total proving time (fixed overheads)
    while each individual round gets cheaper (freshness)."""
    def totals(num_windows):
        store, bulletin = committed_in_windows(num_windows)
        service = ProverService(store, bulletin)
        results = service.aggregate_all_committed()
        per_round = [MODEL.prove_seconds(r.info.stats)
                     for r in results]
        return sum(per_round), max(per_round)

    one_total, one_max = totals(1)
    many_total, many_max = totals(12)
    report.table("ablate-window-verdict",
                 "Window tradeoff: total cost vs per-round latency",
                 ["windows", "total_min", "slowest_round_min"])
    report.row("ablate-window-verdict", 1, one_total / 60, one_max / 60)
    report.row("ablate-window-verdict", 12, many_total / 60,
               many_max / 60)
    assert many_total > one_total       # overheads accumulate
    assert many_max < one_max           # but rounds are fresher/faster
