"""Figure 3 / §5-§6 — tamper detection experiment.

Paper: "we simulated a data tampering scenario ... and confirmed that
any attempt to modify committed data results in failed proof generation
due to hash mismatches or Merkle inconsistencies."  We run every tamper
kind against a committed window, require 100% detection, and benchmark
how quickly the failed round aborts (detection is *cheaper* than an
honest round — the hash check fails before Merkle work happens).
"""

from __future__ import annotations

import pytest

from repro.core.prover_service import ProverService
from repro.core.tamper import (
    TamperKind,
    corrupt_record_bytes,
    inject_record,
    modify_record_field,
    reorder_window,
    run_tamper_experiment,
    truncate_window,
)
from repro.netflow.records import FlowKey, NetFlowRecord

from _workloads import committed_workload

INJECTED = NetFlowRecord(
    router_id="r1", key=FlowKey("6.6.6.6", "7.7.7.7", 1, 2, 6),
    packets=1, octets=40, first_switched_ms=0, last_switched_ms=1)

TAMPERS = {
    TamperKind.MODIFY_FIELD: lambda store, router:
        modify_record_field(store, router, 0, 0, packets=999_999),
    TamperKind.CORRUPT_BYTES: lambda store, router:
        corrupt_record_bytes(store, router, 0, 0, byte_index=11),
    TamperKind.TRUNCATE: lambda store, router:
        truncate_window(store, router, 0, keep=1),
    TamperKind.REORDER: lambda store, router:
        reorder_window(store, router, 0),
    TamperKind.INJECT: lambda store, router:
        inject_record(store, router, 0, INJECTED),
}


@pytest.mark.parametrize("kind", list(TamperKind))
def test_fig3_tamper_detected(benchmark, report, kind):
    store, bulletin = committed_workload(200)
    router = store.router_ids()[0]
    outcome = run_tamper_experiment(
        kind,
        lambda: TAMPERS[kind](store, router),
        lambda: ProverService(store, bulletin).aggregate_window(0))
    report.table(
        "fig3-tamper",
        "Figure 3: post-commitment tampering vs proof generation "
        "(paper: all attempts fail)",
        ["tamper_kind", "detected", "failure"],
    )
    report.row("fig3-tamper", kind.value, outcome.detected,
               outcome.error_type or "NONE")
    assert outcome.detected, outcome

    # Benchmark the detection path itself (abort on first bad window).
    def attempt():
        try:
            ProverService(store, bulletin).aggregate_window(0)
        except Exception:
            return True
        return False

    assert benchmark.pedantic(attempt, rounds=1, iterations=1,
                              warmup_rounds=0)


def test_fig3_detection_rate_is_total(report):
    """Sweep: tamper each router's window in turn — 5 kinds × 4 routers
    = 20 attempts, 20 detections."""
    detected = attempts = 0
    for kind, tamper in TAMPERS.items():
        store, bulletin = committed_workload(120)
        for router in store.router_ids():
            fresh_store, fresh_bulletin = committed_workload(120)
            attempts += 1
            outcome = run_tamper_experiment(
                kind,
                lambda s=fresh_store, r=router: TAMPERS[kind](s, r),
                lambda s=fresh_store, b=fresh_bulletin:
                    ProverService(s, b).aggregate_window(0))
            detected += outcome.detected
    report.table("fig3-rate", "Tamper detection rate",
                 ["attempts", "detected", "rate"])
    report.row("fig3-rate", attempts, detected, detected / attempts)
    assert detected == attempts
