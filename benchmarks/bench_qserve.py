"""Multi-tenant query-serving benchmarks.

Two of these feed the CI regression gate (``check_regression.py``
against ``results/baseline.json``, normalized by
``test_engine_calibration`` from ``bench_engine.py`` — run the two
files in the same pytest invocation):

* ``test_qserve_serve_100_clients`` — the serving-throughput bench:
  100 concurrent asyncio clients over real TCP, 4 tenants, a warm
  result cache.  This prices the whole non-proving path — framing,
  admission, fair-queue bookkeeping, the tiered cache — which is
  exactly the layer this PR added and the one a regression would
  silently tax on every query.  Queries/sec lands in the report and
  in ``extra_info``.
* ``test_qserve_cold_batch`` — one cold 4-query batch through the
  shared-scan fan-out (fresh engine + receipt cache per iteration),
  the proving-path cost of batched serving.

Both hard-assert correctness on the side: every flood answer matches,
and the batch journals are byte-identical to serial proofs.

``REPRO_BENCH_SLEEP=<seconds>`` injects a per-iteration delay to
verify the gate itself; never set in CI.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from repro.core.prover_service import ProverService
from repro.core.query_proof import QueryProver
from repro.engine import ProvingEngine, ReceiptCache
from repro.net import AsyncQueryClient, ProverServer
from repro.qserve import BatchQueryProver, QueryService

from _workloads import committed_workload

SERVE_RECORDS = int(os.environ.get("REPRO_BENCH_QSERVE_RECORDS",
                                   "600"))
N_CLIENTS = 100
N_TENANTS = 4

QUERIES = [
    "SELECT COUNT(*) FROM clogs",
    "SELECT SUM(octets) FROM clogs",
    "SELECT AVG(rtt_avg_us) FROM clogs",
    "SELECT COUNT(*), SUM(packets) FROM clogs WHERE packets > 50",
]


def _sleep_penalty() -> None:
    delay = float(os.environ.get("REPRO_BENCH_SLEEP", "0") or 0.0)
    if delay > 0:
        time.sleep(delay)


@pytest.fixture(scope="module")
def serve_service():
    store, bulletin = committed_workload(SERVE_RECORDS)
    service = ProverService(store, bulletin, pool_backend="thread",
                            prove_workers=2)
    service.aggregate_window(0)
    yield service
    service.close()


def test_qserve_serve_100_clients(benchmark, report, serve_service):
    """100 concurrent clients against a warm multi-tenant server."""
    service = serve_service
    qserve = QueryService(service, max_inflight=N_CLIENTS * 2,
                          batch=True, batch_window=0.005)
    for sql in QUERIES:  # warm both cache tiers
        service.answer_query(sql)
    expected = {sql: service.answer_query(sql).receipt.journal.data
                for sql in QUERIES}

    async def flood(server) -> list:
        async def one(index: int):
            async with AsyncQueryClient(server.host,
                                        server.port) as client:
                return await client.query(
                    QUERIES[index % len(QUERIES)],
                    tenant=f"tenant-{index % N_TENANTS}")

        return await asyncio.gather(
            *(one(index) for index in range(N_CLIENTS)))

    server = ProverServer(service, qserve=qserve,
                          max_connections=N_CLIENTS * 2,
                          request_timeout=120.0)
    with server:
        def round_trip():
            _sleep_penalty()
            return asyncio.run(flood(server))

        responses = benchmark.pedantic(round_trip, rounds=10,
                                       iterations=1, warmup_rounds=2)

    assert len(responses) == N_CLIENTS
    for index, response in enumerate(responses):
        assert response.receipt.journal.data == \
            expected[QUERIES[index % len(QUERIES)]]
    qps = N_CLIENTS / benchmark.stats.stats.median
    benchmark.extra_info["queries_per_second"] = qps
    report.table(
        "qserve-throughput",
        f"{N_CLIENTS} concurrent clients, {N_TENANTS} tenants, "
        f"warm cache over {SERVE_RECORDS} records",
        ["clients", "median_s", "queries_per_sec"])
    report.row("qserve-throughput", N_CLIENTS,
               benchmark.stats.stats.median, qps)


def test_qserve_cold_batch(benchmark, report, serve_service):
    """One cold 4-query batch: shared partition scan + per-query
    merges, proven through a fresh engine each iteration."""
    service = serve_service
    receipt = service.chain.latest.receipt
    serial = {}
    for sql in QUERIES:
        response, _ = QueryProver().prove_query(sql, service.state,
                                                receipt)
        serial[sql] = response

    def cold_batch():
        _sleep_penalty()
        with ProvingEngine(backend="thread", max_workers=4,
                           cache=ReceiptCache()) as engine:
            return BatchQueryProver(engine).prove_batch(
                QUERIES, service.state, receipt, 4)

    results = benchmark.pedantic(cold_batch, rounds=5, iterations=1,
                                 warmup_rounds=1)
    for sql, result in zip(QUERIES, results):
        assert not isinstance(result, Exception), result
        assert result.receipt.journal.data == \
            serial[sql].receipt.journal.data
    report.table(
        "qserve-cold-batch",
        f"cold 4-query batch over {SERVE_RECORDS} records "
        "(shared scan, 4 partitions)",
        ["queries", "flows", "median_s"])
    report.row("qserve-cold-batch", len(QUERIES),
               len(service.state), benchmark.stats.stats.median)
