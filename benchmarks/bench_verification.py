"""§6 / Table 1 discussion — constant-time client verification.

Paper: "verification remains lightweight, completing in 3 ms regardless
of the number of entries."  We benchmark the real wall-clock of our
verifier at every Table-1 scale (it must be flat) and report the
modeled 3 ms constant.
"""

from __future__ import annotations

import time

import pytest

from repro.core.guest_programs import aggregation_guest, query_guest
from repro.zkvm import Verifier
from repro.zkvm.costmodel import VERIFY_SECONDS

from _workloads import (
    PAPER_QUERY,
    PAPER_RECORD_COUNTS,
    PAPER_VERIFY_MS,
    aggregated_service,
)

VERIFIER = Verifier()


@pytest.fixture(scope="module")
def receipts():
    out = {}
    for num_records in PAPER_RECORD_COUNTS:
        service = aggregated_service(num_records)
        agg = service.chain.latest.receipt
        query = service.answer_query(PAPER_QUERY).receipt
        out[num_records] = (agg, query)
    return out


@pytest.mark.parametrize("num_records", PAPER_RECORD_COUNTS)
def test_verify_aggregation_receipt(benchmark, report, receipts,
                                    num_records):
    agg, _query = receipts[num_records]
    benchmark(lambda: VERIFIER.verify(agg, aggregation_guest.image_id))
    wall_ms = _measure_ms(
        lambda: VERIFIER.verify(agg, aggregation_guest.image_id))
    report.table(
        "verify-3ms",
        f"Verification latency (paper: {PAPER_VERIFY_MS:.0f} ms, "
        "constant at every scale)",
        ["records", "kind", "wall_ms", "modeled_ms", "paper_ms"],
    )
    report.row("verify-3ms", num_records, "aggregation", wall_ms,
               VERIFY_SECONDS * 1000, PAPER_VERIFY_MS)
    assert VERIFY_SECONDS * 1000 == pytest.approx(PAPER_VERIFY_MS)


@pytest.mark.parametrize("num_records", PAPER_RECORD_COUNTS)
def test_verify_query_receipt(benchmark, report, receipts, num_records):
    _agg, query = receipts[num_records]
    benchmark(lambda: VERIFIER.verify(query, query_guest.image_id))
    wall_ms = _measure_ms(
        lambda: VERIFIER.verify(query, query_guest.image_id))
    report.row("verify-3ms", num_records, "query", wall_ms,
               VERIFY_SECONDS * 1000, PAPER_VERIFY_MS)


def test_verification_is_scale_independent(receipts, report):
    """Wall-clock verification at 3,000 records is within noise of the
    50-record case (constant-time, the paper's key claim)."""
    small_agg, _ = receipts[50]
    large_agg, _ = receipts[3000]
    small_ms = _measure_ms(
        lambda: VERIFIER.verify(small_agg, aggregation_guest.image_id),
        repeats=50)
    large_ms = _measure_ms(
        lambda: VERIFIER.verify(large_agg, aggregation_guest.image_id),
        repeats=50)
    report.table("verify-flatness",
                 "Verification flatness: 50 vs 3000 records",
                 ["wall_ms_at_50", "wall_ms_at_3000", "ratio"])
    report.row("verify-flatness", small_ms, large_ms,
               large_ms / small_ms)
    # The journal re-hash grows mildly with size; "constant" here means
    # within a small constant factor, not proportional to entries (60x).
    assert large_ms / small_ms < 10


def _measure_ms(fn, repeats: int = 10) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats * 1000
