"""§7 ablation — proof parallelization.

Paper: "NetFlow entries can be partitioned by flow ID or router ID,
with separate proofs generated in parallel.  These partial proofs can
then be merged into a single final proof, reducing end-to-end latency."
We sweep the partition count over the same workload and report the
modeled end-to-end latency (slowest partition + merge) against the
sequential baseline.
"""

from __future__ import annotations

import pytest

from repro.core.parallel import ParallelAggregator
from repro.core.prover_service import ProverService
from repro.zkvm.costmodel import CostModel

from _workloads import committed_workload

MODEL = CostModel()
WORKLOAD_RECORDS = 800


@pytest.fixture(scope="module")
def window_inputs():
    store, bulletin = committed_workload(WORKLOAD_RECORDS)
    return ProverService(store, bulletin).gather_window(0)


@pytest.mark.parametrize("num_partitions", [1, 2, 4])
def test_ablation_partition_sweep(benchmark, report, window_inputs,
                                  num_partitions):
    # A fresh aggregator per round keeps every timed iteration a cold
    # prove (the receipt cache is per-aggregator); multiple rounds keep
    # the median stable enough for the CI regression gate.
    result = benchmark.pedantic(
        lambda: ParallelAggregator().aggregate(window_inputs,
                                               num_partitions),
        rounds=5, iterations=1, warmup_rounds=1)
    parallel_s = result.modeled_seconds(MODEL)
    sequential_s = result.sequential_seconds(MODEL)
    report.table(
        "ablate-parallel",
        f"§7 proof parallelization over {WORKLOAD_RECORDS} records "
        "(modeled end-to-end latency)",
        ["partitions", "parallel_min", "sequential_min", "speedup"],
    )
    report.row("ablate-parallel", num_partitions, parallel_s / 60,
               sequential_s / 60, sequential_s / parallel_s)
    if num_partitions == 1:
        assert sequential_s / parallel_s == pytest.approx(1.0, rel=0.01)
    else:
        assert sequential_s / parallel_s > 1.3


def test_ablation_partitioned_result_is_deterministic(window_inputs,
                                                      report):
    """Re-running with the same partition count reproduces the root
    bit-for-bit, and the combined flow count is partition-independent
    (slot order — hence the root — legitimately depends on the merge
    order, but the *content* must not)."""
    results = {
        n: ParallelAggregator().aggregate(window_inputs, n)
        for n in (1, 2, 4)
    }
    report.table("ablate-parallel-consistency",
                 "Determinism & content independence across partitions",
                 ["partitions", "flows", "root"])
    for n, result in results.items():
        report.row("ablate-parallel-consistency", n, result.size,
                   result.new_root.short())
        rerun = ParallelAggregator().aggregate(window_inputs, n)
        assert rerun.new_root == result.new_root
    assert len({result.size for result in results.values()}) == 1
