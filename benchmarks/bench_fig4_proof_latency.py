"""Figure 4 — proof generation latency vs number of records.

Paper: aggregation-proof latency grows with input size ("primarily due
to the computational cost of Merkle tree construction within the
zkVM"), reaching ≈87 min at 3,000 entries; query proofs follow the same
trend at ≈16 min.  We measure real wall-clock for the simulated prover
(pytest-benchmark) and report the calibrated modeled latency per point.
"""

from __future__ import annotations

import pytest

from repro.core.prover_service import ProverService
from repro.zkvm.costmodel import CostModel, ProverBackend

from _workloads import (
    PAPER_AGG_MINUTES_AT_3000,
    PAPER_QUERY,
    PAPER_QUERY_MINUTES_AT_3000,
    PAPER_RECORD_COUNTS,
    aggregated_service,
    committed_workload,
)

MODEL = CostModel()


@pytest.mark.parametrize("num_records", PAPER_RECORD_COUNTS)
def test_fig4_aggregation_latency(benchmark, report, num_records):
    store, bulletin = committed_workload(num_records)

    def aggregate():
        service = ProverService(store, bulletin)
        return service.aggregate_window(0)

    result = benchmark.pedantic(aggregate, rounds=1, iterations=1,
                                warmup_rounds=0)
    stats = result.info.stats
    modeled_min = MODEL.prove_seconds(stats) / 60.0
    report.table(
        "fig4-agg",
        "Figure 4: aggregation proof latency "
        f"(paper @3000: {PAPER_AGG_MINUTES_AT_3000:.0f} min)",
        ["records", "cycles", "sha_blocks", "modeled_min",
         "paper_min@3000"],
    )
    report.row("fig4-agg", num_records, stats.total_cycles,
               stats.sha_compressions, modeled_min,
               PAPER_AGG_MINUTES_AT_3000 if num_records == 3000 else "-")
    if num_records == 3000:
        # Calibration check: within 10% of the paper's endpoint.
        assert modeled_min == pytest.approx(PAPER_AGG_MINUTES_AT_3000,
                                            rel=0.10)


@pytest.mark.parametrize("num_records", PAPER_RECORD_COUNTS)
def test_fig4_query_latency(benchmark, report, num_records):
    service = aggregated_service(num_records)

    response = benchmark.pedantic(
        lambda: service.answer_query(PAPER_QUERY),
        rounds=1, iterations=1, warmup_rounds=0)
    assert response.receipt is not None
    stats = service.last_prove_info.stats
    modeled_min = MODEL.prove_seconds(stats) / 60.0
    report.table(
        "fig4-query",
        "Figure 4: query proof latency "
        f"(paper @3000: {PAPER_QUERY_MINUTES_AT_3000:.0f} min)",
        ["records", "entries", "cycles", "modeled_min",
         "paper_min@3000"],
    )
    report.row("fig4-query", num_records, response.scanned,
               stats.total_cycles, modeled_min,
               PAPER_QUERY_MINUTES_AT_3000 if num_records == 3000
               else "-")
    if num_records == 3000:
        # Shape check: within 25% of the paper's endpoint.
        assert modeled_min == pytest.approx(
            PAPER_QUERY_MINUTES_AT_3000, rel=0.25)


def test_fig4_latency_grows_linearly(report):
    """The defining shape of Figure 4: latency ∝ input size."""
    small = aggregated_service(200)
    large = aggregated_service(2_000)
    small_min = MODEL.prove_seconds(small.last_prove_info.stats) / 60
    large_min = MODEL.prove_seconds(large.last_prove_info.stats) / 60
    ratio = large_min / small_min
    report.table("fig4-shape", "Figure 4 shape: 10x records",
                 ["records_ratio", "latency_ratio"])
    report.row("fig4-shape", 10.0, ratio)
    assert 5.0 < ratio < 20.0  # linear-ish, not constant or quadratic


def test_fig4_gpu_backend_order_of_magnitude(report):
    """§7 GPU acceleration: ~10x on the same workload."""
    service = aggregated_service(1_000)
    stats = service.last_prove_info.stats
    cpu = MODEL.prove_seconds(stats, ProverBackend.CPU_ZKVM)
    gpu = MODEL.prove_seconds(stats, ProverBackend.GPU_ZKVM)
    report.table("fig4-gpu", "GPU backend on the Fig. 4 workload",
                 ["records", "cpu_min", "gpu_min", "speedup"])
    report.row("fig4-gpu", 1000, cpu / 60, gpu / 60, cpu / gpu)
    assert cpu / gpu == pytest.approx(10.0)
