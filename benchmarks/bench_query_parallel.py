"""Partitioned query proving benchmarks.

Two of these feed the CI regression gate (``check_regression.py``
against ``results/baseline.json``, normalized by
``test_engine_calibration`` from ``bench_engine.py`` — run the two
files in the same pytest invocation):

* ``test_query_serial`` — the cold monolithic full-scan query proof,
  the denominator of the speedup claim;
* ``test_query_partitioned`` — the same query split into 4 slot-range
  partitions proved through the engine and folded by the merge guest.
  Besides timing, this bench *hard-asserts* the PR's acceptance
  criterion: the modeled prover latency of the partitioned plan
  (slowest partition + merge, i.e. perfect overlap) must beat the
  modeled serial latency by >= 1.5x.  The modeled numbers come from
  metered cycle counts through the deterministic cost model, so the
  assertion is machine-independent and safe on shared runners.

``test_query_process_speedup`` measures the *real wall-clock* ratio
with 4 process workers.  Like ``test_engine_process_speedup`` it is
skipped below 4 CPUs and the 1.5x floor is a hard assertion only under
``REPRO_BENCH_REQUIRE_SPEEDUP=1``; by default a shortfall is reported
loudly without failing, because absolute wall-clock bars flake on
shared CI runners.

The workload defaults to 3000 records (~1300 distinct flows): large
enough that per-entry scan work dominates the per-partition
aggregation-binding re-verification and the merge proof's fixed
overhead — the modeled crossover to >= 1.5x sits near 1300 flows.
``REPRO_BENCH_QUERY_RECORDS`` overrides it.

``REPRO_BENCH_SLEEP=<seconds>`` injects a per-iteration delay into the
gated benches to verify the gate itself; never set in CI.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.planner import partition_layout
from repro.core.prover_service import ProverService
from repro.core.query_proof import QueryProver
from repro.engine import ProvingEngine, ReceiptCache
from repro.zkvm.costmodel import CostModel

from _workloads import committed_workload

QUERY_RECORDS = int(os.environ.get("REPRO_BENCH_QUERY_RECORDS",
                                   "3000"))
SPEEDUP_RECORDS = int(os.environ.get(
    "REPRO_BENCH_QUERY_SPEEDUP_RECORDS", "6000"))
NUM_PARTITIONS = 4
SQL = ("SELECT COUNT(*), SUM(octets), AVG(rtt_avg_us) FROM clogs "
       "WHERE packets > 100")


def _sleep_penalty() -> None:
    delay = float(os.environ.get("REPRO_BENCH_SLEEP", "0") or 0.0)
    if delay > 0:
        time.sleep(delay)


def _aggregated_service(records: int) -> ProverService:
    store, bulletin = committed_workload(records)
    service = ProverService(store, bulletin)
    service.aggregate_window(0)
    return service


@pytest.fixture(scope="module")
def query_service():
    return _aggregated_service(QUERY_RECORDS)


def test_query_serial(benchmark, report, query_service):
    """Cold monolithic full-scan proof — the serial baseline."""
    receipt = query_service.chain.latest.receipt

    def cold_query():
        _sleep_penalty()
        return QueryProver().prove_query(
            SQL, query_service.state, receipt)

    response, info = benchmark.pedantic(cold_query, rounds=5,
                                        iterations=1, warmup_rounds=1)
    assert response.scanned == len(query_service.state)
    report.table(
        "query-serial",
        f"cold full-scan query proof over {QUERY_RECORDS} records",
        ["records", "flows", "cycles"])
    report.row("query-serial", QUERY_RECORDS,
               len(query_service.state), info.stats.total_cycles)


def test_query_partitioned(benchmark, report, query_service):
    """Partitioned query round: 4 partition proofs + 1 merge proof.

    Asserts byte-identical journals against the serial path and the
    PR's modeled >= 1.5x latency bar (slowest partition + merge vs the
    monolithic scan, both priced from metered cycles).
    """
    receipt = query_service.chain.latest.receipt
    serial_response, serial_info = QueryProver().prove_query(
        SQL, query_service.state, receipt)

    def partitioned_query():
        _sleep_penalty()
        # A fresh cache each iteration keeps every round cold.
        with ProvingEngine(backend="thread", max_workers=4,
                           cache=ReceiptCache()) as engine:
            return QueryProver(engine=engine).prove_query_partitioned(
                SQL, query_service.state, receipt, NUM_PARTITIONS)

    response, info = benchmark.pedantic(partitioned_query, rounds=5,
                                        iterations=1, warmup_rounds=1)
    assert response.receipt.journal.data == \
        serial_response.receipt.journal.data
    # Power-of-two chunking may cover the tree in fewer partitions
    # than requested (e.g. 3 chunks of 512 over ~1300 flows).
    assert info.num_partitions == partition_layout(
        len(query_service.state), NUM_PARTITIONS)[1]
    assert info.num_partitions > 1

    model = CostModel()
    modeled_serial = model.prove_seconds(serial_info.stats)
    modeled_partitioned = info.modeled_seconds(model)
    modeled_speedup = modeled_serial / modeled_partitioned
    benchmark.extra_info["modeled_speedup"] = modeled_speedup
    report.table(
        "query-partitioned",
        f"partitioned query over {QUERY_RECORDS} records "
        f"({NUM_PARTITIONS} partitions, modeled prover latency)",
        ["serial_model_s", "partitioned_model_s", "modeled_speedup"])
    report.row("query-partitioned", modeled_serial,
               modeled_partitioned, modeled_speedup)
    assert modeled_speedup >= 1.5, (
        f"modeled partitioned speedup {modeled_speedup:.2f}x < 1.5x "
        f"(serial {modeled_serial:.0f}s, "
        f"partitioned {modeled_partitioned:.0f}s)")


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="needs >= 4 CPUs for a meaningful "
                           "process-pool speedup")
def test_query_process_speedup(benchmark, report):
    """Real wall-clock: 4 process workers vs the monolithic scan."""
    service = _aggregated_service(SPEEDUP_RECORDS)
    receipt = service.chain.latest.receipt

    start = time.perf_counter()
    serial_response, _ = QueryProver().prove_query(
        SQL, service.state, receipt)
    serial_seconds = time.perf_counter() - start

    def process_query():
        with ProvingEngine(backend="process", max_workers=4,
                           cache=ReceiptCache()) as engine:
            return QueryProver(engine=engine).prove_query_partitioned(
                SQL, service.state, receipt, NUM_PARTITIONS)

    start = time.perf_counter()
    response, _info = benchmark.pedantic(process_query, rounds=1,
                                         iterations=1, warmup_rounds=0)
    parallel_seconds = time.perf_counter() - start

    assert response.receipt.journal.data == \
        serial_response.receipt.journal.data
    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["speedup"] = speedup
    report.table(
        "query-speedup",
        f"real wall-clock, {SPEEDUP_RECORDS} records, "
        f"{NUM_PARTITIONS} partitions",
        ["serial_s", "process_s", "speedup"])
    report.row("query-speedup", serial_seconds, parallel_seconds,
               speedup)
    message = (f"query process speedup {speedup:.2f}x < 1.5x "
               f"(serial {serial_seconds:.2f}s, "
               f"process {parallel_seconds:.2f}s)")
    if os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1":
        assert speedup >= 1.5, message
    elif speedup < 1.5:
        print(f"\nWARN  {message}")
