"""§6 experimental setup — end-to-end pipeline throughput.

The paper's evaluation environment: 4 routers generating NetFlow logs
in parallel threads into a shared SQL backend with 5-second commitment
windows.  This bench measures each stage of the pipeline on that exact
configuration: generation+commit, aggregation round, query round, and
client verification.
"""

from __future__ import annotations

import pytest

from repro.core.system import SystemConfig, TelemetrySystem

from _workloads import PAPER_QUERY


@pytest.fixture(scope="module", params=["memory", "sqlite"])
def populated_system(request):
    system = TelemetrySystem(SystemConfig(
        seed=7, flows_per_tick=10, backend=request.param))
    system.generate(400)
    return system


def test_e2e_generation_and_commit(benchmark, report):
    def generate():
        system = TelemetrySystem(SystemConfig(seed=7, flows_per_tick=10))
        system.generate(400)
        return system.simulator.records_generated

    records = benchmark.pedantic(generate, rounds=1, iterations=1,
                                 warmup_rounds=0)
    report.table("e2e-setup",
                 "§6 setup stages (4 routers, 5s windows)",
                 ["stage", "backend", "detail"])
    report.row("e2e-setup", "generate+commit", "memory",
               f"{records} records")
    assert records >= 400


def test_e2e_aggregation_rounds(benchmark, report, populated_system):
    system = populated_system

    def aggregate_all():
        return system.aggregate_all()

    rounds = benchmark.pedantic(aggregate_all, rounds=1, iterations=1,
                                warmup_rounds=0)
    report.row("e2e-setup", "aggregate-all",
               system.config.backend, f"{rounds} rounds, "
               f"{len(system.prover.state)} flows")
    assert len(system.prover.chain) >= 1


def test_e2e_query_round(benchmark, report, populated_system):
    system = populated_system
    if not len(system.prover.chain):
        system.aggregate_all()
    response = benchmark.pedantic(
        lambda: system.prover.answer_query(PAPER_QUERY),
        rounds=1, iterations=1, warmup_rounds=0)
    report.row("e2e-setup", "query-proof", system.config.backend,
               f"scanned {response.scanned}")


def test_e2e_client_verification(benchmark, report, populated_system):
    system = populated_system
    if not len(system.prover.chain):
        system.aggregate_all()
    receipts = system.prover.chain.receipts()

    verified = benchmark(
        lambda: system.verifier.verify_chain(receipts))
    report.row("e2e-setup", "verify-chain", system.config.backend,
               f"{len(verified)} rounds")
    assert len(verified) == len(receipts)
