"""§6 profiling claim — Merkle work dominates in-guest cycles.

Paper: "Profiling with RISC Zero indicates that the majority of this
overhead stems from Merkle tree updates performed within the zkVM."
Our cycle meter attributes every compression to a category; this bench
reproduces the profile.
"""

from __future__ import annotations

import pytest

from repro.merkle import MerkleTree
from repro.hashing import sha256

from _workloads import PAPER_QUERY, aggregated_service


@pytest.fixture(scope="module")
def profile():
    service = aggregated_service(2000)
    agg = service.last_prove_info.stats
    service.answer_query(PAPER_QUERY)
    query = service.last_prove_info.stats
    return agg, query


def test_merkle_dominates_aggregation(profile, report):
    agg, _query = profile
    breakdown = agg.cycle_breakdown
    merkle_share = breakdown.get("merkle", 0) / agg.total_cycles
    report.table(
        "merkle-share",
        "§6 profiling: in-guest cycle share by category @2000 records",
        ["phase", "category", "cycles", "share"],
    )
    for category, cycles in sorted(breakdown.items(),
                                   key=lambda kv: -kv[1]):
        report.row("merkle-share", "aggregation", category, cycles,
                   cycles / agg.total_cycles)
    assert merkle_share > 0.5  # "the majority of this overhead"


def test_query_profile_reported(profile, report):
    _agg, query = profile
    for category, cycles in sorted(query.cycle_breakdown.items(),
                                   key=lambda kv: -kv[1]):
        report.row("merkle-share", "query", category, cycles,
                   cycles / query.total_cycles)
    assert query.total_cycles > 0


def test_host_merkle_update_microbench(benchmark):
    """Substrate microbenchmark: single-leaf update on a 4096-leaf tree
    (the per-record operation the guest pays depth hashes for)."""
    leaves = [sha256(i.to_bytes(4, "big")) for i in range(4096)]
    tree = MerkleTree(leaves)
    new_leaf = sha256(b"updated")

    counter = iter(range(10**9))
    benchmark(lambda: tree.update(next(counter) % 4096, new_leaf))


def test_host_merkle_proof_microbench(benchmark):
    leaves = [sha256(i.to_bytes(4, "big")) for i in range(4096)]
    tree = MerkleTree(leaves)
    root = tree.root
    proof = tree.prove(1234)
    benchmark(lambda: proof.verify(root))
