"""§7 discussion — query complexity vs proving cost.

"While our ZKP framework is general-purpose and in principle supports
arbitrary queries, the cost of proof generation increases with query
complexity."  We sweep a ladder of increasingly complex queries over a
fixed CLog and report metered cycles, modeled latency, and the cost
planner's prediction accuracy.
"""

from __future__ import annotations

import pytest

from repro.core.prover_service import ProverService
from repro.zkvm.costmodel import CostModel

from _workloads import committed_workload

MODEL = CostModel()

QUERY_LADDER = [
    ("count", "SELECT COUNT(*) FROM clogs"),
    ("filtered-sum",
     'SELECT SUM(hop_count) FROM clogs '
     'WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9"'),
    ("multi-agg",
     "SELECT COUNT(*), SUM(octets), AVG(rtt_avg_us), MAX(packets), "
     "MIN(first_ms) FROM clogs"),
    ("deep-where",
     "SELECT COUNT(*) FROM clogs WHERE "
     "(packets > 100 AND octets > 1000) OR "
     "(lost_packets > 0 AND hop_count >= 2) OR "
     '(src_ip IN "10.1.0.0/16" AND NOT dst_port = 53)'),
    ("group-by",
     "SELECT COUNT(*), SUM(lost_packets), AVG(rtt_avg_us) FROM clogs "
     "GROUP BY src_net16"),
]


@pytest.fixture(scope="module")
def service():
    store, bulletin = committed_workload(1000)
    svc = ProverService(store, bulletin)
    svc.aggregate_window(0)
    return svc


@pytest.mark.parametrize("name,sql", QUERY_LADDER)
def test_query_complexity_ladder(benchmark, report, service, name, sql):
    predicted = service.estimate_query(sql)
    response = benchmark.pedantic(lambda: service.answer_query(sql),
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)
    stats = service.last_prove_info.stats
    modeled_min = MODEL.prove_seconds(stats) / 60
    error = (predicted.predicted_cycles - stats.total_cycles) \
        / stats.total_cycles
    report.table(
        "query-complexity",
        "§7 query complexity over 1000 records "
        "(metered vs planner-predicted)",
        ["query", "ast_nodes", "cycles", "modeled_min",
         "planner_err"],
    )
    from repro.query import parse_query
    report.row("query-complexity", name, parse_query(sql).node_count,
               stats.total_cycles, modeled_min, f"{error:+.1%}")
    assert response.receipt is not None
    assert abs(error) < 0.05  # planner within 5%


def test_complexity_ordering_holds(service, report):
    """More AST nodes per entry must cost more cycles (same state)."""
    cycles = {}
    for name, sql in QUERY_LADDER:
        # Bypass the receipt cache: we need fresh metering, and a
        # cache hit leaves last_prove_info pointing at the prior query.
        service.answer_query(sql, use_cache=False)
        cycles[name] = service.last_prove_info.stats.total_cycles
    assert cycles["deep-where"] > cycles["count"]
    assert cycles["multi-agg"] > cycles["count"]
    report.table("query-complexity-verdict",
                 "Complexity ordering (cycles)",
                 ["simplest", "most_complex", "ratio"])
    most = max(cycles.values())
    least = min(cycles.values())
    report.row("query-complexity-verdict", least, most, most / least)
