"""Extension bench — background-aggregation scheduling policy.

§4: aggregation "runs independently in the background ... scaled
according to the available resources of the provider."  The daemon's
batching knob trades total prover cost (fewer, larger rounds amortize
fixed overheads) against staleness (how long committed telemetry waits
before it becomes queryable).  This bench replays the same committed
stream under different policies and reports both sides of the tradeoff.
"""

from __future__ import annotations

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.daemon import AggregationDaemon, DaemonPolicy
from repro.core.prover_service import ProverService
from repro.netflow import NetworkTopology, TrafficGenerator
from repro.netflow.clock import SimClock
from repro.netflow.generator import TrafficConfig
from repro.storage import MemoryLogStore
from repro.zkvm.costmodel import CostModel

MODEL = CostModel()
NUM_WINDOWS = 8
WINDOW_MS = 5_000


def build_stream():
    """NUM_WINDOWS committed windows of deterministic traffic."""
    topology = NetworkTopology.paper_eval()
    generator = TrafficGenerator(topology, TrafficConfig(seed=7))
    store = MemoryLogStore()
    bulletin_entries = []
    for window in range(NUM_WINDOWS):
        per_router: dict[str, list] = {}
        for _ in range(15):
            flow = generator.generate_flow(window * WINDOW_MS)
            for record in generator.observe(flow):
                per_router.setdefault(record.router_id,
                                      []).append(record)
        for router_id, records in per_router.items():
            store.append_records(router_id, window, records)
            bulletin_entries.append(Commitment(
                router_id, window,
                window_digest([r.to_bytes() for r in records]),
                len(records), (window + 1) * WINDOW_MS))
    return store, bulletin_entries


def replay(batch_limit: int):
    """Publish windows on schedule; let the daemon schedule rounds."""
    store, entries = build_stream()
    bulletin = BulletinBoard()
    clock = SimClock()
    service = ProverService(store, bulletin)
    daemon = AggregationDaemon(
        service, clock,
        DaemonPolicy(batch_limit=batch_limit, max_lag_ms=20_000))
    staleness_ms: list[int] = []
    for window in range(NUM_WINDOWS):
        clock.advance_ms(WINDOW_MS)
        for entry in entries:
            if entry.window_index == window:
                bulletin.publish(entry)
        result = daemon.step()
        if result is not None:
            consumed = {w["w"] for w in
                        result.journal_header["windows"]}
            for w in consumed:
                staleness_ms.append(clock.now_ms()
                                    - (w + 1) * WINDOW_MS)
    # End of stream: flush the tail.
    while daemon.drain():
        pass
    total_prove_s = sum(MODEL.prove_seconds(r.info.stats)
                        for r in daemon.stats.results)
    avg_staleness = (sum(staleness_ms) / len(staleness_ms)
                     if staleness_ms else 0.0)
    return daemon, total_prove_s, avg_staleness


@pytest.mark.parametrize("batch_limit", [1, 2, 4, 8])
def test_daemon_policy_sweep(benchmark, report, batch_limit):
    daemon, total_prove_s, avg_staleness = benchmark.pedantic(
        lambda: replay(batch_limit), rounds=1, iterations=1,
        warmup_rounds=0)
    report.table(
        "daemon-policy",
        f"Background-aggregation policy over {NUM_WINDOWS} windows "
        "(total modeled prove time vs staleness)",
        ["batch_limit", "rounds", "total_prove_min",
         "avg_staleness_s"],
    )
    report.row("daemon-policy", batch_limit, daemon.stats.rounds,
               total_prove_s / 60, avg_staleness / 1000)
    assert daemon.stats.windows_consumed == NUM_WINDOWS


def test_policy_tradeoff_shape(report):
    """Bigger batches: fewer rounds and less total prove time, at the
    price of staler data."""
    _d1, eager_cost, eager_staleness = replay(1)
    _d8, lazy_cost, lazy_staleness = replay(8)
    report.table("daemon-policy-verdict",
                 "Policy tradeoff: eager (1) vs lazy (8)",
                 ["policy", "total_prove_min", "avg_staleness_s"])
    report.row("daemon-policy-verdict", "batch=1", eager_cost / 60,
               eager_staleness / 1000)
    report.row("daemon-policy-verdict", "batch=8", lazy_cost / 60,
               lazy_staleness / 1000)
    assert lazy_cost < eager_cost
    assert lazy_staleness >= eager_staleness
