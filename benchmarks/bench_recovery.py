"""Extension bench — crash recovery: restore vs re-prove from genesis.

The fault-tolerance extension adds checkpoint/restore so a crashed
prover resumes without re-proving its whole history.  This bench
quantifies the payoff: after N proven rounds, compare

* ``restore``  — decode the checkpoint, re-verify the latest receipt
  and the Merkle root, adopt the state; and
* ``genesis``  — rebuild the same state by re-running every
  aggregation round from scratch.

Restore cost is O(state) — one receipt verification plus one Merkle
rebuild — while genesis replay is O(rounds x proving), so the gap
widens with chain length; the table reports both and the speedup.
"""

from __future__ import annotations

import time

import pytest

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.netflow import NetworkTopology, TrafficGenerator
from repro.netflow.generator import TrafficConfig
from repro.storage import MemoryLogStore

WINDOW_MS = 5_000
FLOWS_PER_WINDOW = 10


def build_proven(num_rounds: int):
    """A service with ``num_rounds`` proven windows of paper traffic."""
    topology = NetworkTopology.paper_eval()
    generator = TrafficGenerator(topology, TrafficConfig(seed=7))
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    for window in range(num_rounds):
        per_router: dict[str, list] = {}
        for _ in range(FLOWS_PER_WINDOW):
            flow = generator.generate_flow(window * WINDOW_MS)
            for record in generator.observe(flow):
                per_router.setdefault(record.router_id,
                                      []).append(record)
        for router_id, records in per_router.items():
            store.append_records(router_id, window, records)
            bulletin.publish(Commitment(
                router_id, window,
                window_digest([r.to_bytes() for r in records]),
                len(records), (window + 1) * WINDOW_MS))
    service = ProverService(store, bulletin)
    for window in range(num_rounds):
        service.aggregate_window(window)
    service.checkpoint()
    return store, bulletin, service


def best_of(fn, repeats: int = 3) -> float:
    """Minimum wall time over ``repeats`` runs (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("num_rounds", [2, 4, 8])
def test_restore_vs_genesis(benchmark, report, num_rounds):
    store, bulletin, service = build_proven(num_rounds)
    expected_root = service.state.root

    def restore():
        recovered = ProverService(store, bulletin)
        assert recovered.restore() is True
        assert recovered.state.root == expected_root
        return recovered

    def genesis():
        rebuilt = ProverService(store, bulletin)
        for window in range(num_rounds):
            rebuilt.aggregate_window(window)
        assert rebuilt.state.root == expected_root
        return rebuilt

    genesis_s = best_of(genesis)
    restore_s = best_of(restore)
    benchmark.pedantic(restore, rounds=3, iterations=1,
                       warmup_rounds=0)

    report.table(
        "recovery", "Crash recovery: checkpoint restore vs "
        "re-proving from genesis",
        ["rounds", "restore_ms", "genesis_ms", "speedup"])
    report.row("recovery", num_rounds, restore_s * 1e3,
               genesis_s * 1e3, genesis_s / restore_s)

    benchmark.extra_info["rounds"] = num_rounds
    benchmark.extra_info["genesis_seconds"] = genesis_s
    benchmark.extra_info["restore_seconds"] = restore_s
    # The whole point of checkpoints: recovery must beat replay.
    assert restore_s < genesis_s
