"""Shared workload builders for the benchmark suite.

Every figure/table benchmark needs the same substrate the paper used:
the 4-router topology with N committed NetFlow records in a window,
ready for aggregation and querying.
"""

from __future__ import annotations

from repro.commitments import BulletinBoard, Commitment, window_digest
from repro.core.prover_service import ProverService
from repro.netflow import NetworkTopology, TrafficGenerator
from repro.netflow.generator import TrafficConfig
from repro.netflow.records import NetFlowRecord
from repro.storage import MemoryLogStore

# The x-axis of Figure 4 and Table 1.
PAPER_RECORD_COUNTS = (50, 100, 500, 1000, 2000, 3000)

# Paper-reported reference points (§6, Table 1).
PAPER_AGG_MINUTES_AT_3000 = 87.0
PAPER_QUERY_MINUTES_AT_3000 = 16.0
PAPER_VERIFY_MS = 3.0
PAPER_TABLE1 = {
    # records: (proof bytes, journal KB, receipt KB)
    50: (256, 3.6, 7.6),
    100: (256, 5.6, 12.0),
    500: (256, 29.3, 58.0),
    1000: (256, 58.9, 116.0),
    2000: (256, 118.1, 231.0),
    3000: (256, 176.7, 346.0),
}

PAPER_QUERY = ('SELECT SUM(hop_count) FROM clogs '
               'WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9"')


def committed_workload(num_records: int, seed: int = 7,
                       window_index: int = 0
                       ) -> tuple[MemoryLogStore, BulletinBoard]:
    """Exactly ``num_records`` committed records in one window across
    the paper's 4 routers."""
    topology = NetworkTopology.paper_eval()
    generator = TrafficGenerator(topology, TrafficConfig(seed=seed))
    store = MemoryLogStore()
    bulletin = BulletinBoard()
    per_router: dict[str, list[NetFlowRecord]] = {
        router_id: [] for router_id in topology.router_ids()}
    count = 0
    while count < num_records:
        flow = generator.generate_flow(now_ms=1_000)
        for record in generator.observe(flow):
            if count >= num_records:
                break
            per_router[record.router_id].append(record)
            count += 1
    for router_id, records in per_router.items():
        if not records:
            continue
        store.append_records(router_id, window_index, records)
        bulletin.publish(Commitment(
            router_id=router_id,
            window_index=window_index,
            digest=window_digest([r.to_bytes() for r in records]),
            record_count=len(records),
            published_at_ms=5_000,
        ))
    return store, bulletin


def aggregated_service(num_records: int,
                       seed: int = 7) -> ProverService:
    """A prover service with one proven aggregation round over
    ``num_records``."""
    store, bulletin = committed_workload(num_records, seed)
    service = ProverService(store, bulletin)
    service.aggregate_window(0)
    return service
