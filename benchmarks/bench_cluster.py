"""Cluster benchmarks: worker daemons vs the in-process pool.

The remote backend buys fault isolation (a dead worker cannot take the
coordinator down) and horizontal capacity; it pays in RPC framing and
lease polling.  These benches price that trade and feed the CI
regression gate (``check_regression.py`` / ``results/baseline.json``):

* ``test_cluster_inprocess_round`` — the same round through the
  in-process thread pool, the number remote proving is compared to;
* ``test_cluster_remote_round`` — the round fanned out to two real
  ``python -m repro worker`` daemons over the framed protocol;
* ``test_cluster_recovery_after_kill`` — the acceptance scenario as a
  number: SIGKILL one of two workers while it holds a lease mid-round
  and measure wall clock until the round still closes (dead-node
  detection + quarantine + re-dispatch included).

Worker daemons are spawned through the compose-style harness in
``examples/cluster`` — the benches measure the same fleet the demo
and the chaos suite run.
"""

from __future__ import annotations

import pathlib
import sys
import threading
import time

import pytest

from repro.cluster import ClusterOpts
from repro.engine import ProvingEngine, ReceiptCache
from repro.core.prover_service import ProverService

from _workloads import committed_workload

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent
                       / "examples" / "cluster"))
from cluster_harness import ClusterHarness, WorkerDaemon  # noqa: E402

CLUSTER_RECORDS = 1_500
NUM_PARTITIONS = 4

#: Bench timings: fail fast on the corpse, no long backoff tails.
OPTS = ClusterOpts(poll_interval=0.02, request_timeout=5.0,
                   probe_timeout=0.5, backoff_base=0.2,
                   backoff_max=2.0, quarantine_after=1,
                   lease_timeout=30.0)


@pytest.fixture(scope="module")
def window_inputs():
    store, bulletin = committed_workload(CLUSTER_RECORDS)
    return ProverService(store, bulletin).gather_window(0)


@pytest.fixture(scope="module")
def fleet():
    with ClusterHarness([{"backend": "thread", "workers": 2},
                         {"backend": "thread", "workers": 2}]) as harness:
        yield harness


def test_cluster_inprocess_round(benchmark, report, window_inputs):
    """The comparison point: the identical round through the
    in-process thread pool (no wire, no leases)."""

    def local_round():
        with ProvingEngine(backend="thread",
                           cache=ReceiptCache()) as engine:
            return engine.prove_round(window_inputs, NUM_PARTITIONS)

    result = benchmark.pedantic(local_round, rounds=5, iterations=1,
                                warmup_rounds=1)
    assert len(result.partition_infos) == NUM_PARTITIONS
    report.table(
        "cluster-vs-local",
        f"round over {CLUSTER_RECORDS} records "
        f"({NUM_PARTITIONS} partitions): in-process vs worker fleet",
        ["backend", "flows"])
    report.row("cluster-vs-local", "thread (in-process)", result.size)


def test_cluster_remote_round(benchmark, report, window_inputs, fleet):
    """The same round fanned out to two worker daemons."""

    def remote_round():
        with ProvingEngine(nodes=fleet.endpoints, cluster_opts=OPTS,
                           cache=ReceiptCache()) as engine:
            assert engine.pool.backend == "remote"
            return engine.prove_round(window_inputs, NUM_PARTITIONS)

    result = benchmark.pedantic(remote_round, rounds=5, iterations=1,
                                warmup_rounds=1)
    assert len(result.partition_infos) == NUM_PARTITIONS
    report.table(
        "cluster-vs-local",
        f"round over {CLUSTER_RECORDS} records "
        f"({NUM_PARTITIONS} partitions): in-process vs worker fleet",
        ["backend", "flows"])
    report.row("cluster-vs-local",
               f"remote ({len(fleet.endpoints)} daemons)", result.size)


def test_cluster_recovery_after_kill(benchmark, report, window_inputs,
                                     fleet):
    """SIGKILL one worker mid-round; the measured time is the whole
    story — proving, dead-node detection, quarantine, re-dispatch —
    until the round closes anyway."""
    survivor = fleet.endpoints[1]

    def setup():
        victim = WorkerDaemon({"backend": "thread", "workers": 2})
        return (victim,), {}

    def recover_round(victim):
        with ProvingEngine(nodes=[victim.endpoint, survivor],
                           cluster_opts=OPTS,
                           cache=ReceiptCache()) as engine:
            box = {}

            def prove():
                box["result"] = engine.prove_round(window_inputs,
                                                   NUM_PARTITIONS)

            thread = threading.Thread(target=prove)
            thread.start()
            # Kill the victim as soon as it holds work in flight (or
            # immediately once dispatch has started racing us).
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and thread.is_alive():
                snap = engine.pool.snapshot().get("cluster", {})
                nodes = {n["endpoint"]: n
                         for n in snap.get("nodes", [])}
                victim_node = nodes.get(victim.endpoint)
                if victim_node and (victim_node["leases"] >= 1
                                    or victim_node["jobs_ok"] >= 1):
                    break
                time.sleep(0.005)
            victim.kill()
            thread.join(timeout=120)
            assert not thread.is_alive()
            victim.stop()
            return box["result"]

    result = benchmark.pedantic(recover_round, setup=setup,
                                rounds=3, iterations=1)
    assert len(result.partition_infos) == NUM_PARTITIONS
    report.table(
        "cluster-recovery",
        "round completion with one of two workers SIGKILLed "
        "mid-flight",
        ["records", "partitions", "flows"])
    report.row("cluster-recovery", CLUSTER_RECORDS, NUM_PARTITIONS,
               result.size)
