"""Table 1 — proof, journal and receipt sizes for aggregation.

Paper: "Proof sizes remain constant (256 bytes), as expected from
zk-SNARKs, while the journal and receipt sizes grow with the number of
entries."  We regenerate every row and check the three shape
properties: constant 256-byte seal, linear journal growth, and receipt
≈ 2× journal.
"""

from __future__ import annotations

import pytest

from repro.core.prover_service import ProverService

from _workloads import PAPER_RECORD_COUNTS, PAPER_TABLE1, \
    committed_workload


@pytest.fixture(scope="module")
def table_rows():
    rows = {}
    for num_records in PAPER_RECORD_COUNTS:
        store, bulletin = committed_workload(num_records)
        service = ProverService(store, bulletin)
        result = service.aggregate_window(0)
        rows[num_records] = result.receipt
    return rows


@pytest.mark.parametrize("num_records", PAPER_RECORD_COUNTS)
def test_table1_row(benchmark, report, table_rows, num_records):
    receipt = table_rows[num_records]
    benchmark.pedantic(receipt.to_json_bytes, rounds=3, iterations=1,
                       warmup_rounds=0)
    paper_proof, paper_journal_kb, paper_receipt_kb = \
        PAPER_TABLE1[num_records]
    report.table(
        "table1",
        "Table 1: proof sizes of aggregation (ours vs paper)",
        ["records", "proof_B", "paper_B", "journal_KB", "paper_KB",
         "receipt_KB", "paper_KB "],
    )
    report.row("table1", num_records, receipt.seal_size, paper_proof,
               receipt.journal_size / 1024, paper_journal_kb,
               receipt.receipt_size / 1024, paper_receipt_kb)
    # Constant 256-byte proof at every scale.
    assert receipt.seal_size == paper_proof == 256
    # Journal within 20% of the paper's measurement.
    assert receipt.journal_size / 1024 == \
        pytest.approx(paper_journal_kb, rel=0.20)
    # Receipt ≈ 2x journal (the paper's consistent ratio).
    assert receipt.receipt_size / receipt.journal_size == \
        pytest.approx(2.0, rel=0.15)


def test_table1_journal_growth_is_linear(table_rows, report):
    """Marginal journal bytes per record ≈ constant (paper: ~59 B)."""
    small = table_rows[500]
    large = table_rows[3000]
    per_record = (large.journal_size - small.journal_size) / 2500
    report.table("table1-marginal",
                 "Table 1 shape: marginal journal bytes per record "
                 "(paper: ~59 B)",
                 ["bytes_per_record"])
    report.row("table1-marginal", per_record)
    assert 40 <= per_record <= 90
