#!/usr/bin/env python3
"""Gate CI on benchmark medians against a committed baseline.

Reads a ``pytest-benchmark --benchmark-json`` output file and compares
each benchmark's median against ``results/baseline.json``.  Raw
medians do not transfer between machines, so every median is first
divided by the run's *calibration* median (``test_engine_calibration``
in ``bench_engine.py`` — fixed pure-CPU work): the compared quantity
is "how many calibration units does this bench cost", which is stable
across host speeds.

Exit codes: 0 = within threshold, 1 = regression (or missing
calibration), 2 = usage error.

Update the committed baseline after an intentional perf change::

    python benchmarks/check_regression.py bench.json --update
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

BASELINE = pathlib.Path(__file__).parent / "results" / "baseline.json"
CALIBRATION = "test_engine_calibration"
DEFAULT_THRESHOLD = 0.25


def load_run(path: pathlib.Path) -> dict[str, float]:
    """name -> median seconds from a pytest-benchmark JSON file."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"cannot read benchmark json {path}: {exc}")
    medians: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        medians[bench["name"]] = bench["stats"]["median"]
    return medians


def normalize(medians: dict[str, float]) -> dict[str, float]:
    """Medians in calibration units; drops the calibration bench."""
    calibration = medians.get(CALIBRATION)
    if not calibration:
        sys.exit(f"run has no {CALIBRATION!r} median; "
                 "was bench_engine.py included?")
    return {name: median / calibration
            for name, median in medians.items()
            if name != CALIBRATION}


def update_baseline(path: pathlib.Path,
                    normalized: dict[str, float]) -> None:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(
        {"units": f"medians relative to {CALIBRATION}",
         "benchmarks": dict(sorted(normalized.items()))},
        indent=2, sort_keys=True) + "\n")
    print(f"baseline updated: {path} ({len(normalized)} benchmarks)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("runs", type=pathlib.Path, nargs="+",
                        help="pytest-benchmark --benchmark-json "
                             "output(s); several runs are folded into "
                             "their per-bench median, which makes an "
                             "--update baseline robust to one noisy "
                             "run")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=BASELINE)
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="max tolerated median slowdown "
                             "(0.25 = 25%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run "
                             "instead of checking")
    args = parser.parse_args(argv)

    per_run = [normalize(load_run(path)) for path in args.runs]
    current = {
        name: statistics.median(run[name] for run in per_run
                                if name in run)
        for name in {name for run in per_run for name in run}
    }
    if args.update:
        update_baseline(args.baseline, current)
        return 0

    if not args.baseline.exists():
        sys.exit(f"no baseline at {args.baseline}; create one with "
                 "--update")
    baseline = json.loads(args.baseline.read_text())["benchmarks"]

    failures: list[str] = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"WARN  {name}: in baseline but not in this run")
            continue
        ratio = current[name] / base
        status = "ok"
        if ratio - 1.0 > args.threshold:
            status = "REGRESSION"
            failures.append(name)
        print(f"{status:>10}  {name}: {ratio:.2f}x of baseline "
              f"(threshold {1.0 + args.threshold:.2f}x)")
    for name in sorted(set(current) - set(baseline)):
        print(f"WARN  {name}: not in baseline "
              "(run with --update to add it)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(failures)}")
        return 1
    print("\nall benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
