"""Streaming composition benchmark: O(Δ) rounds vs O(window) rounds.

The claim the stream subsystem makes (ROADMAP item 2): per-round prove
cost depends on the round's *delta*, not on how large the CLog window
has grown.  This bench preloads the CLog to W entries, then proves one
round of a fixed Δ = 64 fresh records both ways:

* **streamed** — Δ split into delta batches through
  :class:`repro.stream.StreamingAggregator` (deltas + fold tree);
* **rebuild** — the monolithic O(W) baseline, which re-hashes the
  whole window every round.

Across 4x window growth (W = 256 → 1024) the streamed round must stay
flat within 10% — metered guest cycles grow only by the Merkle-path
log-depth term — while the rebuild round grows ≥ 2.5x.  Both bounds
are hard assertions on *metered* cycles and modeled prover seconds
(deterministic, machine-independent); the wall-clock medians of the
streamed rounds feed the CI regression gate (``check_regression.py``
against ``results/baseline.json``).

The preload ends with a small Δ-sized round on purpose: the measured
round verifies its predecessor's receipt in-guest, so a predecessor
with an O(W) journal would smuggle an O(W) term into both strategies
and mask the comparison.
"""

from __future__ import annotations

import pytest

from repro.commitments import window_digest
from repro.core.aggregation import Aggregator, RouterWindowInput
from repro.core.clog import CLogState
from repro.core.policy import DEFAULT_POLICY
from repro.core.rebuild import RebuildAggregator
from repro.engine import ProvingEngine, ReceiptCache
from repro.netflow.records import FlowKey, NetFlowRecord
from repro.stream import StreamingAggregator
from repro.zkvm import ProverOpts
from repro.zkvm.costmodel import CostModel

MODEL = CostModel()
W_SIZES = (256, 512, 1024)
DELTA = 64
BATCHES = 2
FLATNESS = 1.10
LINEAR_GROWTH = 2.5


def record_for(index: int) -> NetFlowRecord:
    return NetFlowRecord(
        router_id="r1",
        key=FlowKey(f"10.{(index >> 8) & 255}.{index & 255}.1",
                    "172.16.0.1", 1_000 + index % 60_000, 2_000, 6),
        packets=10, octets=1_000,
        first_switched_ms=0, last_switched_ms=1_000,
        hop_count=2, lost_packets=1, rtt_us=5_000, jitter_us=100)


def inputs_for(start: int, count: int,
               window: int) -> list[RouterWindowInput]:
    blobs = tuple(record_for(start + i).to_bytes()
                  for i in range(count))
    return [RouterWindowInput(
        router_id="r1", window_index=window,
        commitment=window_digest(list(blobs)), blobs=blobs)]


_PRELOADED: dict[int, tuple] = {}


def preloaded(size: int):
    """(state, prev_receipt) with ``size`` entries in the CLog.

    Two rounds: a bulk round to ``size - DELTA`` entries, then a
    Δ-sized round — so the receipt the measured round binds to carries
    a fixed-size journal regardless of W.
    """
    if size not in _PRELOADED:
        bulk = Aggregator().aggregate(
            CLogState(), inputs_for(0, size - DELTA, 0), None)
        last = Aggregator().aggregate(
            bulk.new_state, inputs_for(size - DELTA, DELTA, 1),
            bulk.receipt)
        _PRELOADED[size] = (last.new_state, last.receipt)
    return _PRELOADED[size]


def streamed_round(size: int):
    """Prove one Δ-record round via delta batches + fold tree."""
    state, prev_receipt = preloaded(size)
    with ProvingEngine(backend="serial",
                       cache=ReceiptCache()) as engine:
        streamer = StreamingAggregator(DEFAULT_POLICY,
                                       ProverOpts.groth16(),
                                       engine=engine)
        per_batch = DELTA // BATCHES
        for batch in range(BATCHES):
            streamer.ingest(
                state,
                inputs_for(size + batch * per_batch, per_batch,
                           2 + batch),
                prev_receipt)
        return streamer.close()


def rebuild_round(size: int):
    """The same Δ-record round through the O(W) rebuild guest."""
    state, prev_receipt = preloaded(size)
    return RebuildAggregator().aggregate(
        state.clone(), inputs_for(size, DELTA, 2), prev_receipt)


_COSTS: dict[int, dict] = {}


def round_costs(size: int) -> dict:
    """Metered cycles and modeled seconds for both strategies."""
    if size not in _COSTS:
        streamed = streamed_round(size)
        jobs = (list(streamed.info.delta_results)
                + list(streamed.info.fold_results))
        rebuild = rebuild_round(size)
        _COSTS[size] = {
            "depth": streamed.new_state.depth,
            "streamed_cycles": sum(j.stats.total_cycles
                                   for j in jobs),
            "streamed_seconds": sum(MODEL.prove_seconds(j.stats)
                                    for j in jobs),
            "rebuild_cycles": rebuild.info.stats.total_cycles,
            "rebuild_seconds": MODEL.prove_seconds(
                rebuild.info.stats),
        }
    return _COSTS[size]


@pytest.mark.parametrize("size", W_SIZES)
def test_stream_round_fixed_delta(benchmark, report, size):
    """Wall-clock of one streamed Δ-round over a W-entry CLog (cold
    cache each iteration) — the gated regression number."""
    result = benchmark.pedantic(lambda: streamed_round(size),
                                rounds=5, iterations=1,
                                warmup_rounds=1)
    assert result.record_count == DELTA
    costs = round_costs(size)
    report.table(
        "stream-rounds",
        f"Fixed Δ={DELTA} round cost vs window size "
        "(streamed deltas+folds vs monolithic rebuild)",
        ["W", "depth", "streamed_cycles", "streamed_s",
         "rebuild_cycles", "rebuild_s"],
    )
    report.row("stream-rounds", size, costs["depth"],
               costs["streamed_cycles"], costs["streamed_seconds"],
               costs["rebuild_cycles"], costs["rebuild_seconds"])


def test_streamed_flat_rebuild_linear(report):
    """The O(Δ) contract, as hard assertions: across 4x window growth
    the streamed round stays flat within 10% (cycles *and* modeled
    seconds) while the rebuild round grows ≥ 2.5x."""
    costs = {size: round_costs(size) for size in W_SIZES}
    streamed_cycles = [costs[s]["streamed_cycles"] for s in W_SIZES]
    streamed_seconds = [costs[s]["streamed_seconds"] for s in W_SIZES]
    rebuild_cycles = [costs[s]["rebuild_cycles"] for s in W_SIZES]
    cycle_spread = max(streamed_cycles) / min(streamed_cycles)
    second_spread = max(streamed_seconds) / min(streamed_seconds)
    growth = rebuild_cycles[-1] / rebuild_cycles[0]
    report.table(
        "stream-rounds-verdict",
        f"O(Δ) verdict across {W_SIZES[0]} → {W_SIZES[-1]} entries",
        ["streamed_cycle_spread", "streamed_second_spread",
         "rebuild_growth"],
    )
    report.row("stream-rounds-verdict", cycle_spread, second_spread,
               growth)
    assert cycle_spread <= FLATNESS, (
        f"streamed round cost grew {cycle_spread:.3f}x across "
        f"{W_SIZES[-1] // W_SIZES[0]}x window growth")
    assert second_spread <= FLATNESS
    assert growth >= LINEAR_GROWTH, (
        f"rebuild baseline grew only {growth:.2f}x — the O(W) "
        "comparison lost its teeth")
