"""§1/§2 motivation — deployment & scalability vs the TEE baseline.

Paper: "TEE-based telemetry requires deploying TEEs on every vantage
point ... which may be infeasible in large or heterogeneous
environments."  This bench sweeps the vantage-point count and reports
the deployment/verification/disclosure profile of each approach.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    SignedLogBaseline,
    TEETelemetryModel,
    compare_approaches,
)

from _workloads import aggregated_service, committed_workload

VANTAGE_POINTS = (4, 40, 400)


@pytest.fixture(scope="module")
def workload():
    service = aggregated_service(1000)
    store = service.store
    raw_bytes = sum(
        len(blob)
        for router_id in store.router_ids()
        for blob in store.window_blobs(router_id, 0))
    journal_bytes = service.chain.latest.receipt.journal_size
    stats = service.last_prove_info.stats
    return raw_bytes, journal_bytes, stats


@pytest.mark.parametrize("vantage_points", VANTAGE_POINTS)
def test_deployment_sweep(report, workload, vantage_points):
    raw_bytes, journal_bytes, stats = workload
    rows = compare_approaches(vantage_points, raw_bytes, journal_bytes,
                              agg_prove_stats=stats)
    report.table(
        "baseline-tee",
        "Deployment & scalability: ZKP vs TEE vs signed logs",
        ["vantage_pts", "approach", "hw_units", "disclosed_B",
         "verify_s", "confidential"],
    )
    for row in rows:
        report.row("baseline-tee", vantage_points, row.name,
                   row.in_network_hardware_units,
                   row.verifier_bytes_disclosed, row.verify_seconds,
                   row.confidentiality)
    by_name = {row.name: row for row in rows}
    zkp = by_name["zkp (this work)"]
    tee = by_name["tee (TrustSketch-style)"]
    signed = by_name["signed logs"]
    # The paper's argument, quantified:
    assert zkp.in_network_hardware_units == 0
    assert tee.in_network_hardware_units == vantage_points
    assert zkp.confidentiality and not signed.confidentiality
    assert zkp.verifier_bytes_disclosed < signed.verifier_bytes_disclosed


def test_tee_epc_throughput_cliff(benchmark, report):
    """TEE scalability limit: throughput collapses once the telemetry
    working set exceeds the EPC."""
    model = TEETelemetryModel()
    limit = model.spec.working_set_limit_records()
    in_epc = model.spec.throughput_rps(limit // 2)
    paging = model.spec.throughput_rps(limit * 2)
    report.table("baseline-tee-epc",
                 "TEE EPC paging cliff (records/second)",
                 ["resident_records", "throughput_rps"])
    report.row("baseline-tee-epc", limit // 2, in_epc)
    report.row("baseline-tee-epc", limit * 2, paging)
    assert in_epc / paging == pytest.approx(model.spec.paging_slowdown)
    benchmark(lambda: model.spec.throughput_rps(limit * 2))


def test_signed_logs_disclosure_benchmark(benchmark, report):
    """The signed baseline's verification requires shipping and
    re-verifying raw logs — benchmark that path for contrast."""
    store, _bulletin = committed_workload(500)
    baseline = SignedLogBaseline()
    windows = []
    for router_id in store.router_ids():
        records = store.window_records(router_id, 0)
        windows.append(baseline.sign_window(router_id, 0, records))

    def verify_all():
        return sum(len(baseline.verify_window(w)) for w in windows)

    total = benchmark(verify_all)
    disclosed = sum(w.disclosed_bytes for w in windows)
    report.table("baseline-signed",
                 "Signed-log verification (verifier sees raw logs)",
                 ["records_verified", "bytes_disclosed"])
    report.row("baseline-signed", total, disclosed)
    assert total == 500
