"""Setuptools shim.

``pip install -e .`` on modern pip requires the ``wheel`` package to
build editable metadata; fully offline environments may lack it.  This
shim keeps the legacy ``python setup.py develop`` path working there
(see README "Install").
"""

from setuptools import setup

setup()
